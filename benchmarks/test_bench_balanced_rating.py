"""Bench: the Section 4 balanced-rating experiment.

The paper: an IDC-style equal-weight combination of HPL, STREAM and
all_reduce scores 35% average absolute error; regression-optimised weights
(5% / 50% / 45%) only reach 33% — "still quite sizable", motivating the
application-specific transfer function.
"""

import numpy as np

from repro.core.balanced import BalancedRating, optimise_weights
from repro.core.predictor import PerformancePredictor
from repro.machines.registry import BASE_SYSTEM, TARGET_SYSTEMS, get_machine
from repro.probes.suite import probe_machine


def _observations(study):
    predictor = PerformancePredictor()
    return [
        (system, BASE_SYSTEM, predictor.base_time(app, cpus), actual)
        for (app, system, cpus), actual in study.observed.items()
    ]


def _mean_abs(rating, observations):
    errs = [
        abs(rating.predict(target, base, bt) - actual) / actual * 100.0
        for target, base, bt, actual in observations
    ]
    return float(np.mean(errs)), float(np.std(errs))


def test_bench_balanced_rating(benchmark, study):
    """Time the regression fit of category weights over all 145 runs."""
    probes = {
        name: probe_machine(get_machine(name))
        for name in (*TARGET_SYSTEMS, BASE_SYSTEM)
    }
    observations = _observations(study)

    weights = benchmark.pedantic(
        lambda: optimise_weights(probes, observations), rounds=1, iterations=1
    )

    equal = BalancedRating(probes)
    fitted = BalancedRating(probes, weights)
    e_err, e_std = _mean_abs(equal, observations)
    f_err, f_std = _mean_abs(fitted, observations)

    print()
    print("Balanced rating (Section 4)")
    print("===========================")
    print(f"equal weights (1/3,1/3,1/3): {e_err:5.1f}% +/- {e_std:.1f}%   (paper: 35% +/- 25%)")
    print(
        f"optimised weights ({weights[0]:.2f},{weights[1]:.2f},{weights[2]:.2f}): "
        f"{f_err:5.1f}% +/- {f_std:.1f}%   (paper: 33% +/- 30%, weights 0.05/0.50/0.45)"
    )

    # shape claims: fitting helps only marginally, and neither beats the
    # trace-convolution metrics
    assert f_err <= e_err + 1e-6
    assert e_err - f_err < 15.0
    table4 = {m: s.mean_abs for m, s in study.overall_table().items()}
    assert f_err > table4[6]
    assert f_err > table4[9]
