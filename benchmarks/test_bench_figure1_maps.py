"""Bench: regenerate Figure 1 — unit-stride MAPS bandwidth vs size.

Paper claim reproduced: "the IBM Opteron scored best for executions from
main memory ... if the size of STREAM were reduced to fit into L2 cache and
subsequently L1 cache, the SGI Altix and IBM p655 would score best,
respectively."
"""

from repro.machines.registry import get_machine
from repro.probes.maps import run_maps
from repro.reporting.ascii_charts import line_chart
from repro.study.tables import figure1_series
from repro.util.units import KIB, MIB


def test_bench_figure1_maps_curves(benchmark):
    """Time the MAPS sweep for the figure's three systems."""

    def run():
        return {
            name: run_maps(get_machine(name))
            for name in ("ARL_Opteron", "ARL_Altix", "NAVO_655")
        }

    maps = benchmark(run)

    series = {name: (m.unit.sizes, m.unit.bandwidths / 1e9) for name, m in maps.items()}
    print()
    print(
        line_chart(
            series,
            title="Figure 1. Unit-stride memory bandwidth versus working-set size",
            x_label="working set (bytes, log scale)",
            y_label="bandwidth (GB/s, log scale)",
        )
    )

    # the paper's cache-level ordering claims
    opteron, altix, p655 = maps["ARL_Opteron"], maps["ARL_Altix"], maps["NAVO_655"]
    assert p655.unit.lookup(16 * KIB) > altix.unit.lookup(16 * KIB)
    assert p655.unit.lookup(16 * KIB) > opteron.unit.lookup(16 * KIB)
    assert altix.unit.lookup(128 * KIB) > p655.unit.lookup(128 * KIB)
    assert opteron.unit.lookup(256 * MIB) > p655.unit.lookup(256 * MIB)
    assert opteron.unit.lookup(256 * MIB) > altix.unit.lookup(256 * MIB)
