"""Bench: regenerate Table 4 and Figure 2 — overall error per metric.

This is the paper's headline result: simple metrics 33-63% average absolute
error, trace-convolution metrics 18-24%, Metric #9 best.
"""

from repro.study.analysis import shape_check
from repro.study.runner import run_study
from repro.study.tables import figure2_series, table4_overall
from repro.reporting.ascii_charts import bar_chart


def test_bench_table4(benchmark, study):
    """Time the full study (145 runs, 1305 predictions) end to end."""
    result = benchmark.pedantic(run_study, rounds=1, iterations=1)
    assert result.n_predictions == study.n_predictions

    print()
    print(table4_overall(result).render())
    series = figure2_series(result)
    print(
        bar_chart(
            {f"#{m}": err for m, (err, _s) in series.items()},
            title="Figure 2. Average absolute error by metric",
            errors={f"#{m}": std for m, (_e, std) in series.items()},
        )
    )
    check = shape_check(result)
    print(f"shape check: {'PASS' if check.passed else 'FAIL ' + str(check.failures())}")
    assert check.passed
