"""Bench: Section 6's best-predictor and pairwise-win statistics.

Paper claims reproduced as counts over the 15 (test case, cpu count) cases:
GUPS beats STREAM in most cases; STREAM beats HPL in almost all; Metric #9
is best (or tied) most often; HPL is never best.
"""

from repro.study.analysis import (
    best_predictor_counts,
    pairwise_win_counts,
    ranking_quality,
)


def test_bench_best_predictor(benchmark, study):
    """Time the case-level analysis sweep."""

    def run():
        return (
            best_predictor_counts(study),
            pairwise_win_counts(study, 3, 2),
            pairwise_win_counts(study, 2, 1),
            {m: ranking_quality(study, m) for m in (1, 3, 6, 9)},
        )

    counts, gups_vs_stream, stream_vs_hpl, rankings = benchmark(run)

    print()
    print("Best predictor per (test case, cpu count) — 15 cases")
    print("====================================================")
    for metric in sorted(counts):
        print(f"metric #{metric}: best or tied in {counts[metric]} cases")
    print(f"GUPS vs STREAM: {gups_vs_stream}   (paper: GUPS better in 11/15)")
    print(f"STREAM vs HPL:  {stream_vs_hpl}   (paper: STREAM better in 14/15)")
    print()
    print("Ranking quality (mean Kendall tau over 15 cases)")
    for m, q in rankings.items():
        print(f"metric #{m}: tau={q['kendall_tau']:.2f} rho={q['spearman_rho']:.2f}")

    assert counts.get(1, 0) == 0 and counts.get(4, 0) == 0
    assert gups_vs_stream["wins"] > gups_vs_stream["losses"]
    assert stream_vs_hpl["wins"] > stream_vs_hpl["losses"]
    assert rankings[9]["kendall_tau"] > rankings[1]["kendall_tau"]
