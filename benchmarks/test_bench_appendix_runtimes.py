"""Bench: regenerate Appendix Tables 6-10 — observed times-to-solution.

Prints our simulated wall-clock times next to the paper's, and checks the
magnitudes stay within the reproduction band (4x) wherever both exist.
"""

import pytest

from repro.apps.suite import list_applications
from repro.study.paper_data import PAPER_RUNTIMES
from repro.study.tables import appendix_runtimes

TABLE_NUMBERS = dict(
    zip(list_applications(), ["Table 6", "Table 7", "Table 8", "Table 9", "Table 10"])
)


@pytest.mark.parametrize("application", list_applications())
def test_bench_appendix(benchmark, study, application):
    """Time the appendix-table build; compare against the paper's values."""
    table = benchmark(lambda: appendix_runtimes(study, application))
    print()
    print(f"{TABLE_NUMBERS[application]} ({application})")
    print(table.render())

    data = PAPER_RUNTIMES[application]
    for system, times in data["times"].items():
        for cpus, t_paper in zip(data["cpu_counts"], times):
            t_model = study.observed.get((application, system, cpus))
            if t_paper is None or t_model is None:
                continue
            assert 0.25 < t_model / t_paper < 4.0, (system, cpus)
