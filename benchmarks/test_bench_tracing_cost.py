"""Bench: the Section 3 effort-vs-accuracy tradeoff.

"Dilated execution time must be a weighed consideration when evaluating
metric accuracy (one should ask 'was the increase in accuracy worth the
effort?')".  Prices each metric's data-acquisition cost (30x tracing
dilation, counter-level overhead, or nothing) against its measured error.
"""

from repro.study.cost import metric_costs


def test_bench_tracing_cost(benchmark, study):
    """Time the cost accounting over the full study."""
    rows = benchmark(lambda: metric_costs(study))

    print()
    print("Effort vs accuracy (Section 3 discussion)")
    print("=========================================")
    print(f"{'metric':>6s} {'needs':>9s} {'base-system hours':>18s} {'avg |err| %':>12s}")
    for row in rows:
        print(
            f"#{row.metric:5d} {row.requirement:>9s} "
            f"{row.acquisition_hours:18.0f} {row.mean_abs_error:12.1f}"
        )

    by_metric = {r.metric: r for r in rows}
    # simple metrics are free; tracing metrics pay ~30x the native runtime;
    # the paper's point: the expensive tier is also the accurate tier
    assert by_metric[3].acquisition_hours == 0.0
    assert by_metric[9].acquisition_hours > 20 * by_metric[4].acquisition_hours
    assert by_metric[9].mean_abs_error < by_metric[3].mean_abs_error
