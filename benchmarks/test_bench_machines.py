"""Bench: regenerate the paper's Tables 1 and 2 (system inventory).

Times the probe suite across all eleven systems — the "benchmarking
campaign" cost of the reproduction.
"""

from repro.machines.registry import MACHINES
from repro.probes.suite import clear_probe_cache, probe_machine
from repro.study.tables import table1_architectures, table2_systems


def test_bench_probe_all_systems(benchmark):
    """Time probing every system (HPL+STREAM+GUPS+MAPS+NETBENCH x 11)."""

    def run():
        clear_probe_cache()
        return [probe_machine(m) for m in MACHINES.values()]

    probes = benchmark(run)
    assert len(probes) == 11
    print()
    print(table1_architectures().render())
    print(table2_systems().render())
    print("Probe summaries")
    print("===============")
    for p in probes:
        row = "  ".join(f"{k}={v:.3g}" for k, v in p.summary().items())
        print(f"{p.machine:15s} {row}")
