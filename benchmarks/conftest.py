"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the whole evaluation
section on the terminal.  The full study run is shared session-wide; each
bench times its own aggregation/regeneration step.
"""

from __future__ import annotations

import pytest

from repro.study.runner import run_study


@pytest.fixture(scope="session")
def study():
    """One full 145-run study shared by all benches."""
    return run_study()


def emit(capsys_or_none, text: str) -> None:
    """Print bench output so it survives pytest's capture with -s."""
    print()
    print(text)
