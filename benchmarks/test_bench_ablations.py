"""Bench: ablations of the reproduction's own design choices (DESIGN.md §5).

Not a paper artifact — these quantify which modelled effect carries which
share of each metric's error:

* ``no_noise`` isolates the run-to-run noise floor;
* ``absolute_mode`` shows why Equation 1's base anchoring matters (it
  cancels the convolver's systematic absolute bias);
* ``coarse_tracing`` degrades the MetaSim sample size 16x.
"""

import pytest

from repro.study.ablation import run_ablation
from repro.study.runner import StudyConfig

#: Reduced matrix: ablations run the study once per variant.
SMALL = StudyConfig(
    applications=("AVUS-standard", "HYCOM-standard", "RFCTH-standard"),
    systems=("ERDC_O3800", "ASC_SC45", "ARL_Xeon", "ARL_Altix", "NAVO_655", "ARL_Opteron"),
)

VARIANTS = ["no_noise", "absolute_mode", "coarse_tracing"]


@pytest.fixture(scope="module")
def baseline():
    return run_ablation("baseline", SMALL)


@pytest.mark.parametrize("variant", VARIANTS)
def test_bench_ablation(benchmark, baseline, variant):
    """Time one ablation study and print its per-metric error deltas."""
    outcome = benchmark.pedantic(
        lambda: run_ablation(variant, SMALL), rounds=1, iterations=1
    )
    delta = outcome.delta_from(baseline)
    print()
    print(f"Ablation: {variant} (positive delta = worse than baseline)")
    print("=" * 50)
    for m in sorted(delta):
        print(
            f"metric #{m}: {outcome.errors[m]:6.1f}%   "
            f"(baseline {baseline.errors[m]:6.1f}%, delta {delta[m]:+6.1f})"
        )

    if variant == "no_noise":
        # removing noise cannot hurt the best metric
        assert delta[9] < 1.0
    if variant == "absolute_mode":
        # without the Equation 1 anchor, the convolver's systematic absolute
        # bias (no FP-ILP or dependency model in metrics 5-8) is exposed
        assert delta[6] > 20.0 and delta[7] > 20.0
