"""Bench: regenerate Figures 3-7 — per-application error assessments.

One bar table per TI-05 test case, errors per metric at each processor
count, as the paper's Figures 3 through 7 plot.
"""

import pytest

from repro.apps.suite import list_applications
from repro.study.tables import figures3_7_series

FIGURES = dict(zip(list_applications(), ["Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7"]))


@pytest.mark.parametrize("application", list_applications())
def test_bench_per_app_errors(benchmark, study, application):
    """Time the per-application aggregation; print the figure's table."""
    table = benchmark(lambda: figures3_7_series(study, application))
    print()
    print(f"{FIGURES[application]} ({application})")
    print(table.render())
    # every application's HPL row must be beaten by metric #9's row
    rows = {r[0]: r[1:] for r in table.rows}
    hpl = [v for v in rows["1-S HPL"] if v == v]
    best = [v for v in rows["9-P HPL+MAPS+NET+DEP"] if v == v]
    assert sum(best) / len(best) < sum(hpl) / len(hpl)
