"""Bench: regenerate Table 5 — system-specific average absolute error.

The paper's per-system stories to look for: SC45 and Altix have enormous
HPL errors (their Rmax badly misstates delivered application performance);
the p655 is well predicted by everything; errors broadly fall as metrics
gain terms, but not monotonically per system.
"""

from repro.study.tables import table5_systems


def test_bench_table5(benchmark, study):
    """Time the per-system aggregation."""
    table = benchmark(lambda: table5_systems(study, include_paper=True))
    print()
    print(table.render())

    rows = {r[0]: r[1:10] for r in table.rows}
    # HPL misranks the SC45 dramatically (paper: 167%; ours should be >100%)
    assert rows["ASC_SC45"][0] > 100
    # the p655 is the best-behaved system under every metric (paper row: <=19)
    assert max(rows["NAVO_655"]) < 40
    # metric 9 beats metric 1 for a large majority of systems
    better = sum(1 for r in rows.values() if r[8] < r[0])
    assert better >= 7
