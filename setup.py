"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs fail; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work offline.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
