#!/usr/bin/env python
"""Wall-clock benchmark of the full-study engine.

Runs the paper's 145-run / 1305-prediction matrix through
:func:`repro.study.runner.run_study` and reports throughput for each engine
configuration:

* ``serial_cold``   — fresh process state, ``workers=1`` (the headline number);
* ``serial_warm``   — in-memory trace/probe caches already populated;
* ``store_cold``    — serial with an empty on-disk :class:`TraceStore`;
* ``store_warm``    — serial against the now-populated store, with in-memory
  caches cleared (what a fresh CLI invocation with ``--cache-dir`` sees);
* ``parallel``      — ``workers=N`` fan-out (byte-identity is asserted).

Results land in ``BENCH_study.json`` next to the repo root (or ``--output``),
including the seed-implementation baseline for the speedup ratio.  The CI
smoke gate runs this script with ``--budget`` to fail the build if the
serial cold run regresses past a generous wall-clock ceiling.

Usage::

    PYTHONPATH=src python scripts/bench_study.py [--repeats 3] [--workers 4]
        [--budget SECONDS] [--output BENCH_study.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.probes.suite import clear_probe_cache
from repro.study.runner import run_study
from repro.tracing.metasim import clear_trace_cache

#: Serial cold wall-clock of the seed implementation (scalar kernels,
#: per-cell scalar convolution) measured on the reference container; the
#: issue's quoted figure on slower hardware was ~1.9 s.
SEED_BASELINE_SECONDS = 0.893


def _clear_caches() -> None:
    clear_trace_cache()
    clear_probe_cache()


def _time(fn, repeats: int) -> tuple[float, list[float]]:
    """Best-of-``repeats`` wall-clock of ``fn()`` (best filters scheduler noise)."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times), times


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument("--workers", type=int, default=4, help="pool size for the parallel run")
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail (exit 1) if the serial cold run exceeds this wall-clock",
    )
    parser.add_argument(
        "--output",
        default="BENCH_study.json",
        help="where to write the JSON report (default: BENCH_study.json)",
    )
    args = parser.parse_args(argv)

    results: dict[str, dict] = {}
    reference = run_study()  # also warms caches for the warm measurement

    def bench(name: str, fn, *, clear: bool) -> float:
        def run():
            if clear:
                _clear_caches()
            fn()

        best, times = _time(run, args.repeats)
        n = reference.n_predictions
        results[name] = {
            "best_seconds": round(best, 4),
            "all_seconds": [round(t, 4) for t in times],
            "predictions_per_second": round(n / best, 1),
        }
        print(f"{name:13s} {best:7.4f}s  ({n / best:,.0f} predictions/s)")
        return best

    serial_cold = bench("serial_cold", run_study, clear=True)
    bench("serial_warm", run_study, clear=False)

    def store_cold_run():
        with tempfile.TemporaryDirectory() as fresh_dir:
            run_study(store=fresh_dir)

    bench("store_cold", store_cold_run, clear=True)
    with tempfile.TemporaryDirectory() as store_dir:
        run_study(store=store_dir)  # populate once
        bench("store_warm", lambda: run_study(store=store_dir), clear=True)

    _clear_caches()
    parallel = run_study(workers=args.workers)
    if parallel.records != reference.records or parallel.observed != reference.observed:
        print("FATAL: parallel output differs from serial", file=sys.stderr)
        return 1
    bench(f"parallel_w{args.workers}", lambda: run_study(workers=args.workers), clear=True)

    report = {
        "matrix": {
            "runs": reference.n_runs,
            "predictions": reference.n_predictions,
        },
        "seed_baseline_seconds": SEED_BASELINE_SECONDS,
        "speedup_vs_seed": round(SEED_BASELINE_SECONDS / serial_cold, 2),
        "parallel_byte_identical": True,
        "results": results,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    out = Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nspeedup vs seed implementation: {report['speedup_vs_seed']}x")
    print(f"report written to {out}")

    if args.budget is not None and serial_cold > args.budget:
        print(
            f"FAIL: serial cold run {serial_cold:.3f}s exceeds budget {args.budget:.3f}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
