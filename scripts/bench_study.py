#!/usr/bin/env python
"""Wall-clock benchmark and regression gate of the full-study engine.

Runs the paper's 145-run / 1305-prediction matrix through
:func:`repro.study.runner.run_study` and reports throughput for each engine
configuration:

* ``serial_cold``   — fresh process state, ``workers=1`` (the headline number);
* ``serial_warm``   — in-memory trace/probe caches already populated;
* ``store_cold``    — serial with an empty on-disk :class:`TraceStore`;
* ``store_warm``    — serial against the now-populated store, with in-memory
  caches cleared (what a fresh CLI invocation with ``--cache-dir`` sees);
* ``parallel``      — ``workers=N`` fan-out (byte-identity is asserted).

Each configuration also records the engine's per-stage wall-clock breakdown
(probe / execute / trace / cache_model / convolve) for its best repeat.

``--scale N`` multiplies the application axis with ``label@k`` replicas
(N x the matrix) so parallel speedup is measurable above the engine's
serial/parallel crossover; the scale is recorded in the report.

Gates (any failure exits 1):

* ``--budget SECONDS`` — absolute ceiling on the serial cold wall-clock;
* ``--gate-reference BENCH_study.json`` — regression gate: fails when
  serial-cold predictions/sec drop below the reference report's figure by
  more than ``--gate-tolerance`` (fractional, default 0.75 — generous
  because shared hardware shows multi-x scheduling noise; the gate exists
  to catch order-of-magnitude regressions such as a return to scalar
  kernels, which is a ~20x drop);
* ``--gate-pps FLOOR`` — absolute throughput gate: fails when the
  ``--gate-pps-config`` configuration (default ``serial_warm``) delivers
  fewer than FLOOR predictions/sec;
* ``--gate-store-overhead FRACTION`` — fails when ``store_cold`` costs more
  than FRACTION extra wall-clock over a storeless cold run timed in the
  same paired loop (the serialization tax of persisting every trace/probe
  bundle to the binary store; pairing cancels runner drift);
* ``--require-parallel-win`` — fails when the parallel run is slower than
  serial cold at the same scale (25% noise margin — generous because
  on a capped single-core host both measurements are the same serial
  code path and differ only by scheduler noise).  The engine caps
  ``workers`` at the usable core count, so on a single-core host the
  parallel run degrades to serial and the gate asserts exactly the
  engine's "never slower than serial" guarantee.

Usage::

    PYTHONPATH=src python scripts/bench_study.py [--repeats 3] [--workers 4]
        [--scale N] [--budget SECONDS] [--gate-reference FILE]
        [--gate-tolerance FRACTION] [--gate-pps FLOOR]
        [--gate-pps-config NAME] [--gate-store-overhead FRACTION]
        [--require-parallel-win] [--output BENCH_study.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.apps.suite import APPLICATIONS
from repro.study.runner import StudyConfig, clear_study_caches, run_study
from repro.util.io import write_atomic

#: Serial cold wall-clock of the seed implementation (scalar kernels,
#: per-cell scalar convolution) measured on the reference container; the
#: issue's quoted figure on slower hardware was ~1.9 s.
SEED_BASELINE_SECONDS = 0.893

#: Stage keys always reported (missing stages print as 0).
STAGES = ("probe", "execute", "trace", "cache_model", "convolve")


def _clear_caches() -> None:
    # All four memo layers (trace, probe, execution, engine rows) must drop,
    # or a "cold" measurement silently reuses warm state and lies.
    clear_study_caches()


def scaled_config(scale: int) -> StudyConfig:
    """The paper matrix, replicated ``scale``x along the application axis."""
    if scale <= 1:
        return StudyConfig()
    base = tuple(APPLICATIONS)
    labels = list(base)
    for k in range(1, scale):
        labels.extend(f"{label}@{k}" for label in base)
    return StudyConfig(applications=tuple(labels))


def _time(fn, repeats: int):
    """Best-of-``repeats`` wall-clock of ``fn()`` (best filters scheduler noise).

    Returns ``(best_seconds, all_seconds, best_run_result)``.
    """
    best, times, best_result = float("inf"), [], None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        times.append(dt)
        if dt < best:
            best, best_result = dt, result
    return best, times, best_result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument("--workers", type=int, default=4, help="pool size for the parallel run")
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        metavar="N",
        help="replicate the application axis N times (label@k replicas) so "
        "parallel speedup is measurable (default: 1, the paper matrix)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail (exit 1) if the serial cold run exceeds this wall-clock",
    )
    parser.add_argument(
        "--gate-reference",
        default=None,
        metavar="FILE",
        help="committed BENCH_study.json to gate predictions/sec against",
    )
    parser.add_argument(
        "--gate-tolerance",
        type=float,
        default=0.75,
        metavar="FRACTION",
        help="allowed fractional drop in serial-cold predictions/sec vs the "
        "gate reference before failing (default: 0.75)",
    )
    parser.add_argument(
        "--gate-pps",
        type=float,
        default=None,
        metavar="FLOOR",
        help="fail if the --gate-pps-config predictions/sec falls below FLOOR "
        "(absolute throughput gate, e.g. the issue's 10x-over-seed floor)",
    )
    parser.add_argument(
        "--gate-pps-config",
        default="serial_warm",
        metavar="NAME",
        help="which benched configuration --gate-pps applies to "
        "(default: serial_warm, the precompiled warm path)",
    )
    parser.add_argument(
        "--gate-store-overhead",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail if store_cold costs more than FRACTION extra wall-clock "
        "over a paired storeless run (e.g. 0.10 caps the tax at 10%%)",
    )
    parser.add_argument(
        "--require-parallel-win",
        action="store_true",
        help="fail if the parallel run is slower than serial cold "
        "(25%% noise margin)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_study.json",
        help="where to write the JSON report (default: BENCH_study.json)",
    )
    args = parser.parse_args(argv)

    config = scaled_config(args.scale)
    results: dict[str, dict] = {}
    reference = run_study(config)  # also warms caches for the warm measurement

    def bench(name: str, fn, *, clear: bool) -> float:
        def run():
            if clear:
                _clear_caches()
            return fn()

        if not clear:
            run()  # warm-up: cold-start noise must not leak into a warm bench
        best, times, best_result = _time(run, args.repeats)
        n = reference.n_predictions
        stages = best_result.stage_seconds if best_result is not None else {}
        results[name] = {
            "best_seconds": round(best, 4),
            "all_seconds": [round(t, 4) for t in times],
            "predictions_per_second": round(n / best, 1),
            "stage_seconds": {
                k: round(stages.get(k, 0.0), 4) for k in STAGES
            },
        }
        print(f"{name:13s} {best:7.4f}s  ({n / best:,.0f} predictions/s)")
        return best

    serial_cold = bench("serial_cold", lambda: run_study(config), clear=True)

    # Bench the parallel path back-to-back with serial cold: the two are
    # compared by the --require-parallel-win gate, so measuring them under
    # the same process conditions keeps the comparison fair.
    _clear_caches()
    parallel = run_study(config, workers=args.workers)
    if parallel.records != reference.records or parallel.observed != reference.observed:
        print("FATAL: parallel output differs from serial", file=sys.stderr)
        return 1
    parallel_name = f"parallel_w{args.workers}"
    parallel_best = bench(
        parallel_name, lambda: run_study(config, workers=args.workers), clear=True
    )

    bench("serial_warm", lambda: run_study(config), clear=False)

    # Serialization tax: the extra wall-clock a cold run pays to persist every
    # trace and probe bundle, as a fraction of a storeless cold run.  Shared
    # runners drift by more than the effect over a bench's lifetime, so each
    # repeat times the two runs back-to-back (one machine-speed window per
    # pair) and the reported overhead is the *median* of the per-pair ratios
    # — never a comparison against the serial_cold measured minutes earlier,
    # and never a ratio of bests that may come from different windows.
    store_cold = float("inf")
    store_times: list[float] = []
    pair_ratios: list[float] = []
    for _ in range(args.repeats):
        _clear_caches()
        t0 = time.perf_counter()
        run_study(config)
        serial_seconds = time.perf_counter() - t0
        _clear_caches()
        with tempfile.TemporaryDirectory() as fresh_dir:
            t0 = time.perf_counter()
            run_study(config, store=fresh_dir)
            store_times.append(time.perf_counter() - t0)
        store_cold = min(store_cold, store_times[-1])
        pair_ratios.append(store_times[-1] / serial_seconds)
    pair_ratios.sort()
    median_ratio = pair_ratios[len(pair_ratios) // 2]
    n = reference.n_predictions
    results["store_cold"] = {
        "best_seconds": round(store_cold, 4),
        "all_seconds": [round(t, 4) for t in store_times],
        "predictions_per_second": round(n / store_cold, 1),
        "pair_ratios": [round(r, 4) for r in pair_ratios],
    }
    print(f"store_cold    {store_cold:7.4f}s  ({n / store_cold:,.0f} predictions/s)")

    with tempfile.TemporaryDirectory() as store_dir:
        run_study(config, store=store_dir)  # populate once
        bench("store_warm", lambda: run_study(config, store=store_dir), clear=True)

    store_overhead_ratio = median_ratio - 1.0
    print(f"store_cold overhead vs paired serial: {store_overhead_ratio:+.1%} (median of pairs)")

    report = {
        "matrix": {
            "scale": args.scale,
            "runs": reference.n_runs,
            "predictions": reference.n_predictions,
        },
        "seed_baseline_seconds": SEED_BASELINE_SECONDS,
        "speedup_vs_seed": round(SEED_BASELINE_SECONDS / serial_cold, 2),
        "store_overhead_ratio": round(store_overhead_ratio, 4),
        "parallel_byte_identical": True,
        "results": results,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    out = Path(args.output)
    # Atomic (tmp + os.replace): a crash mid-bench can never leave a torn
    # report where the committed CI gate baseline used to be.
    write_atomic(out, json.dumps(report, indent=2) + "\n")
    print(f"\nspeedup vs seed implementation: {report['speedup_vs_seed']}x")
    print(f"report written to {out}")

    failed = False
    if args.budget is not None and serial_cold > args.budget:
        print(
            f"FAIL: serial cold run {serial_cold:.3f}s exceeds budget {args.budget:.3f}s",
            file=sys.stderr,
        )
        failed = True
    if args.gate_reference is not None:
        ref = json.loads(Path(args.gate_reference).read_text())
        ref_pps = ref["results"]["serial_cold"]["predictions_per_second"]
        got_pps = results["serial_cold"]["predictions_per_second"]
        floor = ref_pps * (1.0 - args.gate_tolerance)
        if got_pps < floor:
            print(
                f"FAIL: serial cold {got_pps:,.0f} predictions/s regressed below "
                f"{floor:,.0f} (reference {ref_pps:,.0f} - {args.gate_tolerance:.0%})",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"gate ok: {got_pps:,.0f} predictions/s >= {floor:,.0f} "
                f"(reference {ref_pps:,.0f})"
            )
    if args.gate_pps is not None:
        cfg = args.gate_pps_config
        if cfg not in results:
            print(
                f"FAIL: --gate-pps-config {cfg!r} is not a benched "
                f"configuration (have: {', '.join(sorted(results))})",
                file=sys.stderr,
            )
            failed = True
        else:
            got_pps = results[cfg]["predictions_per_second"]
            if got_pps < args.gate_pps:
                print(
                    f"FAIL: {cfg} {got_pps:,.0f} predictions/s is below the "
                    f"{args.gate_pps:,.0f} floor",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"gate ok: {cfg} {got_pps:,.0f} predictions/s >= "
                    f"{args.gate_pps:,.0f} floor"
                )
    if args.gate_store_overhead is not None:
        if store_overhead_ratio > args.gate_store_overhead:
            print(
                f"FAIL: store_cold overhead {store_overhead_ratio:+.1%} exceeds "
                f"the {args.gate_store_overhead:.0%} ceiling",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"gate ok: store_cold overhead {store_overhead_ratio:+.1%} <= "
                f"{args.gate_store_overhead:.0%} ceiling"
            )
    if args.require_parallel_win and parallel_best > serial_cold * 1.25:
        print(
            f"FAIL: {parallel_name} ({parallel_best:.3f}s) is slower than "
            f"serial cold ({serial_cold:.3f}s) at --scale {args.scale}",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
