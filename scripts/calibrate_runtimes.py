"""Calibration helper: compare simulated times-to-solution to the paper's
appendix tables and report per-app scale factors and per-machine ratios.

Run:  python scripts/calibrate_runtimes.py
"""

import importlib.util
import math
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]


def _load_paper_data():
    path = ROOT / "src" / "repro" / "study" / "paper_data.py"
    spec = importlib.util.spec_from_file_location("paper_data_standalone", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def main():
    pd = _load_paper_data()
    from repro.apps import get_application, GroundTruthExecutor
    from repro.machines import get_machine

    grand = []
    for label, data in pd.PAPER_RUNTIMES.items():
        app = get_application(label)
        print(f"\n== {label}  counts={data['cpu_counts']}  (model/paper ratio)")
        ratios = []
        for system, times in data["times"].items():
            m = get_machine(system)
            row = []
            for cpus, t_paper in zip(data["cpu_counts"], times):
                if t_paper is None or cpus > m.cpus:
                    row.append("     -")
                    continue
                t_model = GroundTruthExecutor(m).run(app, cpus).total_seconds
                r = t_model / t_paper
                ratios.append(r)
                row.append(f"{r:6.2f}")
            print(f"  {system:15s}", *row)
        gm = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        spread = max(ratios) / min(ratios)
        print(f"  -> geomean ratio {gm:.3f}  spread {spread:.2f}  (divide app counts by {gm:.3f})")
        grand.extend(ratios)
    gm = math.exp(sum(math.log(r) for r in grand) / len(grand))
    print(f"\nGRAND geomean {gm:.3f} over {len(grand)} cells")


if __name__ == "__main__":
    sys.exit(main())
