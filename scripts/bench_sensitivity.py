#!/usr/bin/env python
"""Sensitivity-sweep smoke benchmark and fidelity regression gate.

Generates a ~1000-cell scenario universe from a seeded family, pushes it
through the full :func:`repro.study.runner.run_study` path via
:func:`repro.scenarios.sensitivity.run_sensitivity` (noise-amplitude and
calibration-error sweeps), and optionally replays the universe's matrix
through a live fleet's ``POST /predict/batch`` so the generated-universe
serving path is exercised end to end.

The report lands in the committed benchmark file (``--output``, default
``BENCH_study.json``) under a ``"sensitivity"`` key, merged so the study
and serve sections survive.

Gates (any failure exits 1):

* ``--budget SECONDS`` — absolute ceiling on the sweep's wall-clock
  (the CI smoke's time budget);
* ``--gate-reference BENCH_study.json`` — fidelity regression gate:
  fails when the zero-noise Kendall tau of any ``--gate-metrics`` metric
  drops more than ``--gate-tolerance`` (absolute tau) below the
  committed reference's figure.  The sweep is fully seeded, so on the
  same universe any drop beyond float noise means the predictor or a
  generator family changed behaviour;
* ``--gate-tau-floor TAU`` — absolute floor on the same zero-noise taus,
  independent of any reference (metrics #8/#9 are the paper's best
  simple metrics and must keep ranking a generated universe well);
* the serve leg (unless ``--skip-serve``) asserts the batch endpoint
  prices every cell of the generated matrix and that two back-to-back
  batch calls return byte-identical bodies (worker sharding must not
  leak nondeterminism into generated universes).

Usage::

    PYTHONPATH=src python scripts/bench_sensitivity.py [--family mixed]
        [--seed 0] [--cells 1000] [--amplitudes 0,0.05,0.15]
        [--calibration-errors 0,0.1] [--budget SECONDS]
        [--gate-reference FILE] [--gate-tolerance TAU]
        [--gate-tau-floor TAU] [--gate-metrics 8,9] [--serve-workers 2]
        [--skip-serve] [--output BENCH_study.json]
"""

from __future__ import annotations

import argparse
import http.client
import json
import platform
import sys
import time
from pathlib import Path

from repro.scenarios.sensitivity import SensitivityConfig, run_sensitivity
from repro.util.io import write_atomic


def _float_list(text: str) -> tuple[float, ...]:
    return tuple(float(part) for part in text.split(",") if part.strip())


def _int_list(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part.strip())


def serve_leg(config: SensitivityConfig, workers: int, metrics) -> dict:
    """Replay the generated matrix through a live fleet's batch endpoint.

    Boots ``workers`` engine processes with the universe mounted (the ref
    crosses the process boundary and each worker rebuilds the same
    catalog), POSTs the universe's own axes, and checks determinism by
    comparing two back-to-back responses byte for byte.
    """
    from repro.scenarios import mount_universe, unmount_universe
    from repro.serve.frontend import FleetServer

    # Mount in this process too (the CLI's --universe does the same):
    # the front end validates ids and serves /catalog from its own
    # catalog, while each worker re-mounts from the ref it is shipped.
    universe = mount_universe(f"{config.family}:{config.seed}:{config.cells}")
    body = json.dumps(
        {
            "applications": [a.label for a in universe.applications],
            "systems": [m.name for m in universe.machines],
            "metrics": list(metrics),
            "deadline_ms": 600000,
        }
    ).encode()
    service_config = {"universe": universe.ref, "noise": False}
    try:
        with FleetServer(workers, service_config=service_config) as fleet:
            conn = http.client.HTTPConnection(*fleet.address, timeout=600)
            try:
                status, catalog = _post(conn, "GET", "/catalog", None)
                if status != 200 or catalog.get("universe") is None:
                    raise RuntimeError(
                        f"fleet /catalog did not report the mounted universe: "
                        f"{status} {catalog}"
                    )
                t0 = time.perf_counter()
                status, first = _post(conn, "POST", "/predict/batch", body)
                wall = time.perf_counter() - t0
                if status != 200:
                    raise RuntimeError(f"batch status {status}: {first}")
                status, second = _post(conn, "POST", "/predict/batch", body)
                if status != 200:
                    raise RuntimeError(
                        f"repeat batch status {status}: {second}"
                    )
            finally:
                conn.close()
    finally:
        unmount_universe()
    identical = first["records"] == second["records"]
    return {
        "workers": workers,
        "universe_ref": universe.ref,
        "universe_digest": catalog["universe"]["digest"],
        "cells": first["count"],
        "seconds": round(wall, 4),
        "predictions_per_second": round(first["count"] / wall, 1),
        "repeat_identical": identical,
    }


def _post(conn: http.client.HTTPConnection, method: str, path: str, body):
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body=body, headers=headers)
    resp = conn.getresponse()
    return resp.status, json.loads(resp.read())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--family", default="mixed")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cells", type=int, default=1000, metavar="N")
    parser.add_argument(
        "--amplitudes", type=_float_list, default=(0.0, 0.05, 0.15),
        metavar="LIST", help="noise-amplitude sweep points (default: 0,0.05,0.15)",
    )
    parser.add_argument(
        "--calibration-errors", type=_float_list, default=(0.0, 0.1),
        metavar="LIST", help="calibration-error sweep points (default: 0,0.1)",
    )
    parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="fail (exit 1) if the sweep exceeds this wall-clock",
    )
    parser.add_argument(
        "--gate-reference", default=None, metavar="FILE",
        help="committed BENCH_study.json whose sensitivity section the "
        "zero-noise taus are gated against",
    )
    parser.add_argument(
        "--gate-tolerance", type=float, default=0.02, metavar="TAU",
        help="allowed absolute zero-noise tau drop vs the reference "
        "(default: 0.02 — the sweep is seeded, so this is float headroom)",
    )
    parser.add_argument(
        "--gate-tau-floor", type=float, default=None, metavar="TAU",
        help="absolute floor on the zero-noise tau of every gate metric",
    )
    parser.add_argument(
        "--gate-metrics", type=_int_list, default=(8, 9), metavar="LIST",
        help="metrics the tau gates apply to (default: 8,9 — the paper's "
        "best simple metrics)",
    )
    parser.add_argument("--serve-workers", type=int, default=2, metavar="N")
    parser.add_argument(
        "--skip-serve", action="store_true",
        help="skip the fleet POST /predict/batch replay of the universe",
    )
    parser.add_argument("--output", default="BENCH_study.json")
    args = parser.parse_args(argv)

    config = SensitivityConfig(
        family=args.family,
        seed=args.seed,
        cells=args.cells,
        noise_amplitudes=args.amplitudes,
        calibration_errors=args.calibration_errors,
    )
    t0 = time.perf_counter()
    result = run_sensitivity(config)
    sweep_seconds = time.perf_counter() - t0
    zero = result.zero_noise()
    print(
        f"universe {args.family}:{args.seed}:{args.cells} -> "
        f"{result.cell_count} cells ({result.machine_count} machines x "
        f"{result.application_count} applications), digest "
        f"{result.universe_digest}"
    )
    print(f"sweep         {sweep_seconds:7.3f}s  "
          f"({len(result.noise)} noise + {len(result.calibration)} "
          f"calibration points)")
    for number in sorted(zero.metrics):
        stats = zero.metrics[number]
        print(
            f"  zero-noise #{number}: tau={stats.kendall_tau:+.4f} "
            f"rho={stats.spearman_rho:+.4f} "
            f"mean|err|={stats.mean_abs_error:.1f}%"
        )

    doc = result.to_dict()
    doc["sweep_seconds"] = round(sweep_seconds, 4)
    doc["python"] = platform.python_version()
    doc["machine"] = platform.machine()

    failures: list[str] = []
    if not args.skip_serve:
        try:
            serve = serve_leg(config, args.serve_workers, args.gate_metrics)
        except Exception as exc:  # the leg is a gate: any failure must fail CI
            failures.append(f"serve leg: {exc}")
        else:
            doc["serve_batch"] = serve
            print(
                f"serve batch   {serve['seconds']:7.3f}s  "
                f"({serve['cells']} cells, "
                f"{serve['predictions_per_second']:,.0f} predictions/s, "
                f"{serve['workers']} workers)"
            )
            if not serve["repeat_identical"]:
                failures.append(
                    "serve leg: repeated POST /predict/batch over the "
                    "generated universe returned different records"
                )
            expected = result.cell_count * len(args.gate_metrics)
            if serve["cells"] != expected:
                failures.append(
                    f"serve leg: batch priced {serve['cells']} cells, "
                    f"expected {expected} "
                    f"({result.cell_count} matrix cells x "
                    f"{len(args.gate_metrics)} metrics)"
                )

    out = Path(args.output)
    report = json.loads(out.read_text()) if out.exists() else {}
    report["sensitivity"] = doc
    write_atomic(out, json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"report written to {out} (sensitivity section)")

    if args.budget is not None and sweep_seconds > args.budget:
        failures.append(
            f"sweep {sweep_seconds:.3f}s exceeds budget {args.budget:.3f}s"
        )
    if args.gate_reference is not None:
        ref = json.loads(Path(args.gate_reference).read_text())
        ref_zero = next(
            (
                point
                for point in ref["sensitivity"]["noise"]
                if point["amplitude"] == 0.0
            ),
            None,
        )
        if ref_zero is None:
            failures.append(
                f"{args.gate_reference} has no zero-amplitude sensitivity "
                f"point to gate against"
            )
        else:
            for number in args.gate_metrics:
                ref_tau = ref_zero["metrics"][str(number)]["kendall_tau"]
                got_tau = zero.metrics[number].kendall_tau
                floor = ref_tau - args.gate_tolerance
                if got_tau < floor:
                    failures.append(
                        f"zero-noise tau of metric #{number} regressed: "
                        f"{got_tau:.4f} < {floor:.4f} "
                        f"(reference {ref_tau:.4f} - {args.gate_tolerance})"
                    )
                else:
                    print(
                        f"gate ok: zero-noise #{number} tau {got_tau:.4f} "
                        f">= {floor:.4f} (reference {ref_tau:.4f})"
                    )
    if args.gate_tau_floor is not None:
        for number in args.gate_metrics:
            got_tau = zero.metrics[number].kendall_tau
            if got_tau < args.gate_tau_floor:
                failures.append(
                    f"zero-noise tau of metric #{number} {got_tau:.4f} is "
                    f"below the {args.gate_tau_floor} floor"
                )
            else:
                print(
                    f"gate ok: zero-noise #{number} tau {got_tau:.4f} >= "
                    f"{args.gate_tau_floor} floor"
                )

    if failures:
        for failure in failures:
            print(f"bench-sensitivity: FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench-sensitivity: all gates held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
