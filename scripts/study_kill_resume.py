#!/usr/bin/env python
"""Kill-at-random-event-boundary chaos gate for the checkpointed study.

The durability contract (DESIGN.md section 5i) is that a checkpointed
study survives the hardest possible interruption: SIGKILL, no atexit, no
flush, delivered at an arbitrary event boundary of the journal.  This
script proves it end to end through the real CLI:

1. **Golden** — run ``table4`` uninterrupted and capture stdout.
2. **Victim** — run ``table4 --checkpoint`` in a child whose
   ``EventLog.append`` is wrapped to ``os.kill(getpid(), SIGKILL)`` right
   after the N-th append, N drawn from a seeded RNG over the journal's
   interior boundaries (after study-started, before the last chunk).
   The child must die to the signal, never exit cleanly.
3. **Resume** — re-run ``table4 --checkpoint`` over the survivor journal
   and require stdout byte-identical to the golden run.
4. **Fsck** — ``repro-study events verify`` over the journal directory
   must report every stream clean (a checkpoint directory is just a
   one-stream event log).

Everything is seeded, so a failure here is a real durability regression,
never flakiness.  Run from the repository root (CI does)::

    PYTHONPATH=src python scripts/study_kill_resume.py --seed 3

Exits 0 when the contract holds, 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Injected into the victim child: count EventLog appends in the study
# process and SIGKILL ourselves at the chosen boundary.  argv is
# [kill_after, checkpoint_dir, cache_dir].
VICTIM = """\
import os, signal, sys
import repro.events.log as evlog
from repro.cli import main

kill_after = int(sys.argv[1])
state = {"count": 0}
original = evlog.EventLog.append

def append(self, event):
    seq = original(self, event)
    state["count"] += 1
    if state["count"] >= kill_after:
        os.kill(os.getpid(), signal.SIGKILL)
    return seq

evlog.EventLog.append = append
sys.exit(main([
    "table4", "--workers", "1",
    "--checkpoint", sys.argv[2], "--cache-dir", sys.argv[3],
]))
"""


def run_cli(args: list[str], env: dict[str, str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, capture_output=True, text=True, timeout=120,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=3, help="RNG seed for the kill boundary")
    parser.add_argument(
        "--kill-after", type=int, default=None,
        help="override: SIGKILL after exactly N journal appends",
    )
    opts = parser.parse_args(argv)

    env = {**os.environ, "PYTHONPATH": str(ROOT / "src")}
    with tempfile.TemporaryDirectory(prefix="study-kill-") as tmp:
        cache = str(Path(tmp) / "cache")
        journal = str(Path(tmp) / "study.ckpt")

        golden = run_cli(["table4", "--cache-dir", cache], env)
        if golden.returncode != 0:
            print(f"golden run failed rc={golden.returncode}:\n{golden.stderr}", file=sys.stderr)
            return 1

        # Journal shape for table4: 1 study-started + 5 chunk-completed.
        # Interior boundaries [1, 5] guarantee death strictly mid-study.
        kill_after = opts.kill_after or random.Random(opts.seed).randint(1, 5)
        victim = subprocess.run(
            [sys.executable, "-c", VICTIM, str(kill_after), journal, cache],
            env=env, capture_output=True, text=True, timeout=120,
        )
        if victim.returncode != -signal.SIGKILL:
            print(
                f"victim survived the boundary kill (kill_after={kill_after}, "
                f"rc={victim.returncode}):\n{victim.stderr}",
                file=sys.stderr,
            )
            return 1

        resumed = run_cli(["table4", "--checkpoint", journal, "--cache-dir", cache], env)
        if resumed.returncode != 0:
            print(f"resume failed rc={resumed.returncode}:\n{resumed.stderr}", file=sys.stderr)
            return 1
        if resumed.stdout != golden.stdout:
            print(
                f"resumed output diverged from golden after SIGKILL at "
                f"event boundary {kill_after}",
                file=sys.stderr,
            )
            return 1

        fsck = run_cli(["events", "verify", "--events-dir", journal], env)
        if fsck.returncode != 0:
            print(
                f"events verify failed rc={fsck.returncode}:\n{fsck.stdout}{fsck.stderr}",
                file=sys.stderr,
            )
            return 1

        print(
            f"study_kill_resume: SIGKILL at event boundary {kill_after} -> "
            f"resume byte-identical, journal fsck clean ({fsck.stdout.strip().splitlines()[-1]})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
