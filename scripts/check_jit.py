#!/usr/bin/env python
"""Cross-process equivalence check for the optional numba JIT kernels.

Runs the paper's default study matrix in two child processes — one with
``REPRO_JIT=""`` (pure-numpy kernels) and one with ``REPRO_JIT=numba`` —
and asserts:

* **byte identity**: both legs produce bit-for-bit identical prediction
  records and observed times (SHA-256 over the canonical row dump).  The
  numba twins perform the same IEEE operations in the same order as the
  numpy kernels, so any divergence is a kernel bug;
* **not slower** (only when numba is importable): the JIT leg's warm
  study wall-clock must not exceed the numpy leg's by more than
  ``--margin`` (default 0.25 — generous, because on shared hardware the
  two measurements differ mostly by scheduler noise).

When numba is absent (the default container), the ``REPRO_JIT=numba``
leg exercises the warn-and-fall-back path and the timing assertion is
skipped; byte identity is still enforced.

Usage::

    PYTHONPATH=src python scripts/check_jit.py [--repeats 3] [--margin 0.25]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time

#: Emitted by the child on its last stdout line so the parent can parse
#: past any fallback warnings the kernels print on import.
_SENTINEL = "CHECK_JIT_RESULT "


def _child(repeats: int) -> int:
    from repro.study.runner import StudyConfig, run_study

    config = StudyConfig()
    result = run_study(config)  # cold run: traces, probes, JIT compile
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_study(config)
        best = min(best, time.perf_counter() - t0)
    rows = [
        [r.application, r.cpus, r.system, r.metric,
         r.actual_seconds, r.predicted_seconds, r.error_percent]
        for r in result.records
    ]
    observed = [
        [app, system, cpus, seconds]
        for (app, system, cpus), seconds in sorted(result.observed.items())
    ]
    digest = hashlib.sha256(
        json.dumps({"records": rows, "observed": observed}).encode()
    ).hexdigest()
    try:
        import numba  # noqa: F401

        have_numba = True
    except ImportError:
        have_numba = False
    print(_SENTINEL + json.dumps(
        {
            "jit": os.environ.get("REPRO_JIT", ""),
            "digest": digest,
            "n_records": len(result.records),
            "warm_seconds": round(best, 4),
            "numba_available": have_numba,
        }
    ))
    return 0


def _run_leg(jit: str, repeats: int) -> dict:
    env = dict(os.environ, REPRO_JIT=jit)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.run(
        [sys.executable, __file__, "--as-child", "--repeats", str(repeats)],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        print(proc.stdout, file=sys.stderr)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"check_jit: REPRO_JIT={jit!r} leg failed")
    for line in proc.stdout.splitlines():
        if line.startswith(_SENTINEL):
            leg = json.loads(line[len(_SENTINEL):])
            leg["stderr"] = proc.stderr
            return leg
    raise SystemExit(f"check_jit: REPRO_JIT={jit!r} leg printed no result")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="warm timing repeats per leg (best-of)")
    parser.add_argument("--margin", type=float, default=0.25,
                        help="allowed fractional slowdown of the JIT leg")
    parser.add_argument("--as-child", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.as_child:
        return _child(args.repeats)

    numpy_leg = _run_leg("", args.repeats)
    jit_leg = _run_leg("numba", args.repeats)
    print(f"numpy leg: {numpy_leg['n_records']} records, "
          f"digest {numpy_leg['digest'][:16]}…, "
          f"warm {numpy_leg['warm_seconds']}s")
    print(f"jit leg:   {jit_leg['n_records']} records, "
          f"digest {jit_leg['digest'][:16]}…, "
          f"warm {jit_leg['warm_seconds']}s")

    if numpy_leg["digest"] != jit_leg["digest"]:
        print("FAIL: REPRO_JIT=numba records diverge from the numpy kernels",
              file=sys.stderr)
        return 1
    print("byte identity ok: both legs produce identical records")

    if not jit_leg["numba_available"]:
        if "using the NumPy kernels" not in jit_leg["stderr"]:
            # the fallback warning is part of the contract: a silent
            # no-op would hide a misconfigured REPRO_JIT in CI logs
            print("FAIL: numba unavailable but no fallback warning was "
                  "emitted by the REPRO_JIT=numba leg", file=sys.stderr)
            return 1
        print("numba not importable: fallback warning seen, timing gate skipped")
        return 0

    ceiling = numpy_leg["warm_seconds"] * (1.0 + args.margin)
    if jit_leg["warm_seconds"] > ceiling:
        print(
            f"FAIL: JIT leg {jit_leg['warm_seconds']}s exceeds "
            f"{ceiling:.4f}s (numpy {numpy_leg['warm_seconds']}s "
            f"+ {args.margin:.0%} margin)",
            file=sys.stderr,
        )
        return 1
    print(f"timing ok: JIT leg {jit_leg['warm_seconds']}s <= {ceiling:.4f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
