#!/usr/bin/env python
"""Chaos gate for the resilient prediction service (CI ``serve-chaos`` job).

Boots the real HTTP server with a seeded :class:`~repro.util.faults.FaultPlan`
stalling the convolve stage, fires concurrent ``/predict`` requests at it,
and asserts the service's resilience contract end to end:

* **zero unhandled 500s** — every response is a well-formed JSON success,
  a structured 4xx, or a 503 with ``Retry-After``; nothing escapes as a
  traceback page;
* **p100 latency under the deadline** — the slowest request, measured
  client-side, finishes inside its deadline budget plus a fixed HTTP
  overhead allowance (the degradation ladder, not luck, is what makes
  this hold while convolve is stalled);
* **degradation is marked** — while faults are active, convolve-bearing
  answers arrive as ``degraded: true`` with ``served_metric`` below the
  request.

Everything is seeded and the stall durations are real but small, so the
gate is deterministic in behaviour and fast in wall-clock.  Any violated
assertion exits 1.

This script is deliberately a *thin* live-HTTP smoke: it proves the real
server wiring (sockets, threads, JSON mapping) under faults.  The full
recovery contract — cooldown expiry, half-open probes, return to full
fidelity — lives in the deterministic simulation harness
(``repro-study sim run --scenario serve-recovery``), where virtual time
makes it exact instead of a wall-clock polling race.

With ``--fleet N`` the gate instead targets the multi-process worker
fleet: it boots N workers behind the asyncio front end, SIGKILLs one
worker mid-load, and asserts the fleet's supervision contract:

* while the worker is down, its shard's requests **re-route** to the
  survivors (200s from a different worker) or shed as **429** — never a
  500 and never a hang;
* the death is visible on ``/healthz`` (``deaths_total``, ring
  membership) and ``/readyz`` goes 503 while degraded;
* the supervisor **respawns** the worker, the ring re-adds it, its old
  shard routes back to it, and ``/readyz`` returns 200.

Usage::

    PYTHONPATH=src python scripts/serve_chaos.py [--requests 32]
        [--deadline-ms 2000] [--inject-faults stall=1.0,...] [--verbose]
    PYTHONPATH=src python scripts/serve_chaos.py --fleet 2 [--verbose]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import BreakerBoard
from repro.serve.httpd import make_server
from repro.serve.service import PredictionService
from repro.util.faults import FaultPlan

#: Client-side allowance on top of the request deadline: loopback HTTP,
#: JSON (de)serialisation and thread scheduling on a busy CI runner.
HTTP_OVERHEAD_SECONDS = 1.0

#: Breaker cooldown — short, so the recovery phase is fast.
COOLDOWN_SECONDS = 0.5

QUERY = "application=AVUS-standard&cpus=64&machine=ARL_Xeon&metric=9"


def fetch(port: int, path: str) -> tuple[int, dict, float]:
    """GET ``path``; returns (status, body, seconds). Raises on non-JSON."""
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as resp:
            return resp.status, json.load(resp), time.perf_counter() - start
    except urllib.error.HTTPError as err:
        return err.code, json.load(err), time.perf_counter() - start


def fleet_main(args) -> int:
    """The ``--fleet`` leg: kill a worker mid-load, assert the contract."""
    from repro.serve.frontend import FleetServer

    server = FleetServer(args.fleet, respawn_delay=0.3)
    host, port = server.start()
    failures: list[str] = []
    # Victim and probe cell are chosen while the ring is stable, before
    # any load: one (application, cpus) the victim's caches own.
    victim = server.fleet.workers["w0"]
    victim_pid = victim.proc.pid
    probe_path = None
    for cpus in (32, 64, 128):
        if server.fleet.ring.node_for(server.fleet.shard_key("AVUS-standard", cpus)) == "w0":
            probe_path = (
                f"/predict?application=AVUS-standard&cpus={cpus}"
                f"&machine=ARL_Xeon&metric=9&deadline_ms=30000"
            )
            break
    if probe_path is None:  # all three cells hash elsewhere; use any cell
        probe_path = (
            "/predict?application=AVUS-standard&cpus=64"
            "&machine=ARL_Xeon&metric=9&deadline_ms=30000"
        )

    stop = threading.Event()
    load_results: list[tuple[int, dict, float]] = []
    load_lock = threading.Lock()

    def load_worker() -> None:
        while not stop.is_set():
            try:
                result = fetch(port, probe_path)
            except Exception as exc:  # connection-level failure = violation
                result = (599, {"error": type(exc).__name__}, 0.0)
            with load_lock:
                load_results.append(result)

    threads = [threading.Thread(target=load_worker) for _ in range(4)]
    try:
        fetch(port, probe_path)  # warm once so load starts from 200s
        for t in threads:
            t.start()
        time.sleep(0.2)  # load in flight

        # ------------------------------------------------------------------
        # Phase 1: SIGKILL one worker mid-load.
        # ------------------------------------------------------------------
        os.kill(victim_pid, signal.SIGKILL)
        deadline = time.time() + 5.0
        death_seen = False
        while time.time() < deadline:
            status, body, _ = fetch(port, "/healthz")
            if body["fleet"]["deaths_total"] >= 1:
                death_seen = True
                break
            time.sleep(0.02)
        if not death_seen:
            failures.append("worker death never surfaced on /healthz")

        # ------------------------------------------------------------------
        # Phase 2: while (possibly still) degraded, the dead worker's shard
        # re-routes — 200 from a survivor or a retryable 429, never a 500.
        # ------------------------------------------------------------------
        rerouted = False
        for _ in range(20):
            status, body, _ = fetch(port, probe_path)
            if status == 200:
                rerouted = True
                break
            if status not in (200, 429):
                failures.append(
                    f"dead worker's shard answered {status}: {body}"
                )
                break
            time.sleep(0.05)
        if not rerouted:
            failures.append("dead worker's shard never re-routed to a survivor")

        # ------------------------------------------------------------------
        # Phase 3: recovery — respawn, ring re-add, ready again.
        # ------------------------------------------------------------------
        deadline = time.time() + 15.0
        recovered = False
        while time.time() < deadline:
            status, body, _ = fetch(port, "/readyz")
            if status == 200:
                recovered = True
                break
            time.sleep(0.1)
        if not recovered:
            failures.append("/readyz never recovered after the respawn")
        status, health, _ = fetch(port, "/healthz")
        if health["fleet"]["respawns_total"] < 1:
            failures.append(f"no respawn recorded: {health['fleet']}")
        if health["fleet"]["alive"] != args.fleet:
            failures.append(
                f"fleet not back to {args.fleet} live workers: {health['fleet']}"
            )
        if "w0" not in health["ring"]["nodes"]:
            failures.append(f"ring never re-added w0: {health['ring']}")
        status, body, _ = fetch(port, probe_path)
        if status != 200:
            failures.append(f"post-recovery request failed: {status} {body}")
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=5)
        server.stop()

    statuses = [r[0] for r in load_results]
    unhandled = sorted({s for s in statuses if s not in (200, 429)})
    print(
        f"serve-chaos --fleet {args.fleet}: {len(statuses)} requests under "
        f"kill -> {statuses.count(200)}x200, {statuses.count(429)}x429, "
        f"unhandled {unhandled or 'none'}; rerouted={rerouted}, "
        f"respawns={health['fleet']['respawns_total']}"
    )
    if args.verbose:
        for status, body, seconds in load_results[:50]:
            print(f"  {status} {seconds:.3f}s {json.dumps(body)[:100]}")
    if unhandled:
        failures.append(
            f"unhandled statuses under worker kill: {unhandled} "
            "(contract: 200s and 429s only, never a 500)"
        )
    if failures:
        for failure in failures:
            print(f"serve-chaos: FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve-chaos: all fleet resilience assertions held")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=32, metavar="N")
    parser.add_argument("--deadline-ms", type=float, default=2000.0)
    parser.add_argument(
        "--fleet",
        type=int,
        default=None,
        metavar="N",
        help="target the N-worker fleet instead: kill a worker mid-load "
        "and assert re-route, 429-not-500, and respawn recovery",
    )
    parser.add_argument(
        "--inject-faults",
        default="stall=1.0,stall_seconds=0.3,seed=7",
        metavar="SPEC",
        help="FaultPlan spec applied to the convolve stage "
        "(default: always-stall 0.3s, seed 7)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.fleet is not None:
        if args.fleet < 2:
            parser.error("--fleet needs at least 2 workers to kill one")
        return fleet_main(args)

    deadline_seconds = args.deadline_ms / 1000.0
    service = PredictionService(
        noise=False,
        faults=FaultPlan.parse(args.inject_faults),
        fault_stages=("convolve",),
        default_deadline=deadline_seconds,
        stage_timeouts={"convolve": 0.05},
        breakers=BreakerBoard(
            failure_threshold=1, cooldown_seconds=COOLDOWN_SECONDS
        ),
        admission=AdmissionQueue(max_concurrent=8, max_queue=max(64, args.requests)),
    )
    server = make_server("127.0.0.1", 0, service)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    failures: list[str] = []
    try:
        # ------------------------------------------------------------------
        # Phase 1: concurrent fire under active faults.
        # ------------------------------------------------------------------
        results: list[tuple[int, dict, float]] = [None] * args.requests
        path = f"/predict?{QUERY}&deadline_ms={args.deadline_ms:g}"

        def worker(i: int) -> None:
            results[i] = fetch(port, path)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(args.requests)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        statuses = [r[0] for r in results]
        latencies = [r[2] for r in results]
        p100 = max(latencies)
        served = [r[1] for r in results if r[0] == 200]
        degraded = [b for b in served if b.get("degraded")]
        unhandled = [s for s in statuses if s not in (200, 429, 503)]
        print(
            f"serve-chaos: {args.requests} concurrent requests -> "
            f"{statuses.count(200)}x200 ({len(degraded)} degraded), "
            f"{statuses.count(429)}x429, {statuses.count(503)}x503; "
            f"p100 latency {p100:.3f}s (budget {deadline_seconds:g}s "
            f"+ {HTTP_OVERHEAD_SECONDS:g}s overhead)"
        )
        if args.verbose:
            for status, body, seconds in results:
                print(f"  {status} {seconds:.3f}s {json.dumps(body)[:120]}")

        if unhandled:
            failures.append(f"unhandled statuses: {sorted(set(unhandled))}")
        if not served:
            failures.append("no request succeeded at all")
        if not degraded:
            failures.append(
                "faults were active but no response was marked degraded"
            )
        for body in degraded:
            if body["served_metric"] >= body["requested_metric"]:
                failures.append(
                    f"degraded response did not ladder down: {body}"
                )
        if p100 > deadline_seconds + HTTP_OVERHEAD_SECONDS:
            failures.append(
                f"p100 latency {p100:.3f}s exceeds deadline budget "
                f"{deadline_seconds:g}s + overhead {HTTP_OVERHEAD_SECONDS:g}s"
            )
        status, body, _ = fetch(port, "/healthz")
        if status != 200:
            failures.append(f"/healthz returned {status}")
        if body["requests"]["total"] < statuses.count(200):
            failures.append(f"healthz counters inconsistent: {body['requests']}")
        # Recovery (cooldown expiry -> half-open probe -> full fidelity) is
        # asserted by the deterministic simulation harness under virtual
        # time (`repro-study sim run --scenario serve-recovery`), not by
        # wall-clock polling here — the polling loop this replaces was the
        # suite's one flaky gate.
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    if failures:
        for failure in failures:
            print(f"serve-chaos: FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve-chaos: all resilience assertions held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
