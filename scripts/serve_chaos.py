#!/usr/bin/env python
"""Chaos gate for the resilient prediction service (CI ``serve-chaos`` job).

Boots the real HTTP server with a seeded :class:`~repro.util.faults.FaultPlan`
stalling the convolve stage, fires concurrent ``/predict`` requests at it,
and asserts the service's resilience contract end to end:

* **zero unhandled 500s** — every response is a well-formed JSON success,
  a structured 4xx, or a 503 with ``Retry-After``; nothing escapes as a
  traceback page;
* **p100 latency under the deadline** — the slowest request, measured
  client-side, finishes inside its deadline budget plus a fixed HTTP
  overhead allowance (the degradation ladder, not luck, is what makes
  this hold while convolve is stalled);
* **degradation is marked** — while faults are active, convolve-bearing
  answers arrive as ``degraded: true`` with ``served_metric`` below the
  request;
* **recovery** — once the faults clear and one breaker cooldown elapses,
  a request is served at full fidelity (``degraded: false``) and
  ``/readyz`` reports ready again.

Everything is seeded and the stall durations are real but small, so the
gate is deterministic in behaviour and fast in wall-clock.  Any violated
assertion exits 1.

Usage::

    PYTHONPATH=src python scripts/serve_chaos.py [--requests 32]
        [--deadline-ms 2000] [--inject-faults stall=1.0,...] [--verbose]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import BreakerBoard
from repro.serve.httpd import make_server
from repro.serve.service import PredictionService
from repro.util.faults import FaultPlan

#: Client-side allowance on top of the request deadline: loopback HTTP,
#: JSON (de)serialisation and thread scheduling on a busy CI runner.
HTTP_OVERHEAD_SECONDS = 1.0

#: Breaker cooldown — short, so the recovery phase is fast.
COOLDOWN_SECONDS = 0.5

QUERY = "application=AVUS-standard&cpus=64&machine=ARL_Xeon&metric=9"


def fetch(port: int, path: str) -> tuple[int, dict, float]:
    """GET ``path``; returns (status, body, seconds). Raises on non-JSON."""
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as resp:
            return resp.status, json.load(resp), time.perf_counter() - start
    except urllib.error.HTTPError as err:
        return err.code, json.load(err), time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=32, metavar="N")
    parser.add_argument("--deadline-ms", type=float, default=2000.0)
    parser.add_argument(
        "--inject-faults",
        default="stall=1.0,stall_seconds=0.3,seed=7",
        metavar="SPEC",
        help="FaultPlan spec applied to the convolve stage "
        "(default: always-stall 0.3s, seed 7)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    deadline_seconds = args.deadline_ms / 1000.0
    service = PredictionService(
        noise=False,
        faults=FaultPlan.parse(args.inject_faults),
        fault_stages=("convolve",),
        default_deadline=deadline_seconds,
        stage_timeouts={"convolve": 0.05},
        breakers=BreakerBoard(
            failure_threshold=1, cooldown_seconds=COOLDOWN_SECONDS
        ),
        admission=AdmissionQueue(max_concurrent=8, max_queue=max(64, args.requests)),
    )
    server = make_server("127.0.0.1", 0, service)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    failures: list[str] = []
    try:
        # ------------------------------------------------------------------
        # Phase 1: concurrent fire under active faults.
        # ------------------------------------------------------------------
        results: list[tuple[int, dict, float]] = [None] * args.requests
        path = f"/predict?{QUERY}&deadline_ms={args.deadline_ms:g}"

        def worker(i: int) -> None:
            results[i] = fetch(port, path)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(args.requests)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        statuses = [r[0] for r in results]
        latencies = [r[2] for r in results]
        p100 = max(latencies)
        served = [r[1] for r in results if r[0] == 200]
        degraded = [b for b in served if b.get("degraded")]
        unhandled = [s for s in statuses if s not in (200, 429, 503)]
        print(
            f"serve-chaos: {args.requests} concurrent requests -> "
            f"{statuses.count(200)}x200 ({len(degraded)} degraded), "
            f"{statuses.count(429)}x429, {statuses.count(503)}x503; "
            f"p100 latency {p100:.3f}s (budget {deadline_seconds:g}s "
            f"+ {HTTP_OVERHEAD_SECONDS:g}s overhead)"
        )
        if args.verbose:
            for status, body, seconds in results:
                print(f"  {status} {seconds:.3f}s {json.dumps(body)[:120]}")

        if unhandled:
            failures.append(f"unhandled statuses: {sorted(set(unhandled))}")
        if not served:
            failures.append("no request succeeded at all")
        if not degraded:
            failures.append(
                "faults were active but no response was marked degraded"
            )
        for body in degraded:
            if body["served_metric"] >= body["requested_metric"]:
                failures.append(
                    f"degraded response did not ladder down: {body}"
                )
        if p100 > deadline_seconds + HTTP_OVERHEAD_SECONDS:
            failures.append(
                f"p100 latency {p100:.3f}s exceeds deadline budget "
                f"{deadline_seconds:g}s + overhead {HTTP_OVERHEAD_SECONDS:g}s"
            )
        status, body, _ = fetch(port, "/healthz")
        if status != 200:
            failures.append(f"/healthz returned {status}")
        if body["requests"]["total"] < statuses.count(200):
            failures.append(f"healthz counters inconsistent: {body['requests']}")

        # ------------------------------------------------------------------
        # Phase 2: the outage ends; one cooldown later, full fidelity.
        # ------------------------------------------------------------------
        service.faults = None
        time.sleep(COOLDOWN_SECONDS * 1.1)
        status, body, seconds = fetch(port, path)
        print(
            f"serve-chaos: post-recovery request -> {status}, "
            f"served_metric {body.get('served_metric')}, "
            f"degraded {body.get('degraded')} in {seconds:.3f}s"
        )
        if status != 200 or body.get("degraded") or body.get("served_metric") != 9:
            failures.append(f"service did not recover full fidelity: {body}")
        status, body, _ = fetch(port, "/readyz")
        if status != 200:
            failures.append(f"/readyz still not ready after recovery: {body}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    if failures:
        for failure in failures:
            print(f"serve-chaos: FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve-chaos: all resilience assertions held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
