#!/usr/bin/env python
"""AST import-boundary lint for the repro package layering.

The package is layered (see DESIGN.md section 5f):

    util  <  machines/apps/probes/memory/network  <  events/tracing  <  core
          <  engine  <  study / serve  <  cli

Two boundaries carry the architecture and are enforced here:

* ``repro.core`` must import from **neither** ``repro.study`` **nor**
  ``repro.serve`` — the numeric core (metrics, convolver, registry,
  predictor facade) cannot depend on any orchestration or serving
  concern, or the study/serve layers stop being optional clients.
* ``repro.engine`` must import **neither** ``repro.serve.httpd`` **nor**
  ``repro.cli`` — the staged engine is a library both the study runner
  and the service embed; the moment it reaches into a front end, the
  dependency arrow inverts.  (Engine middleware talks to serve-layer
  objects like BreakerBoard strictly by duck type, so no import is ever
  needed.)

A third boundary guards the scenario catalog (DESIGN.md section 5k):
``repro.scenarios`` is the id-resolution layer every consumer goes
through, so it must not import the layers above it (study / serve /
engine / sim / cli) — except the sensitivity module, which *orchestrates*
studies and is whitelisted for exactly one edge.  Conversely the scenario
*builder* modules (``repro.machines.registry``, ``repro.apps.suite``) are
frozen data: only the catalog's builtin snapshot and the two package
deprecation shims may import them; everyone else resolves ids through
``repro.scenarios`` and therefore sees mounted universes too.

Every ``import``/``from`` statement is checked, *including* ones nested
inside functions — a lazy import is still a dependency edge; laziness
only changes when the cost is paid.  Allowed exceptions are explicit in
:data:`ALLOWED`, with the reason inline.

A second pass lints **time usage**: outside ``repro/util/clock.py`` no
module may call ``time.time``/``time.monotonic``/``time.sleep`` (or
import those names from :mod:`time`) — every time consumer must go
through the injectable :class:`repro.util.clock.Clock` seam, or the
deterministic simulation harness cannot put it on virtual time.
``time.perf_counter`` stays allowed: it only *measures* wall cost for
diagnostics and never steers control flow.

Run from the repository root (CI does)::

    python scripts/check_layering.py

Exits 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: layer prefix -> module prefixes it must never import.
FORBIDDEN: dict[str, tuple[str, ...]] = {
    "repro.core": ("repro.study", "repro.serve"),
    "repro.engine": ("repro.serve.httpd", "repro.cli"),
    # The shared bottom layers must not reach up either; cheap to pin.
    "repro.util": ("repro.study", "repro.serve", "repro.engine", "repro.cli"),
    "repro.tracing": ("repro.study", "repro.serve", "repro.engine", "repro.cli"),
    # The event-sourced durability core (DESIGN.md section 5i) sits beside
    # tracing: every higher layer may append to it, but the log itself
    # depends only on stdlib + repro.util — it must never know who writes.
    "repro.events": (
        "repro.core",
        "repro.tracing",
        "repro.study",
        "repro.serve",
        "repro.engine",
        "repro.cli",
    ),
    # The simulation harness drives study/serve objects, so it sits above
    # them — but it is a library the CLI fronts, never the reverse.
    "repro.sim": ("repro.cli",),
    # The scenario catalog is the id-resolution layer every consumer
    # shares; it must stay importable without dragging in orchestration
    # or serving (the one sensitivity edge is whitelisted below).
    "repro.scenarios": (
        "repro.study",
        "repro.serve",
        "repro.engine",
        "repro.sim",
        "repro.cli",
    ),
}

#: (module, imported) pairs exempted from FORBIDDEN, with cause.
ALLOWED: frozenset[tuple[str, str]] = frozenset(
    {
        # The sensitivity sweep deliberately *drives* the study runner —
        # it exists to push generated universes through the exact code
        # path the paper tables use.  One lazy edge, one direction.
        ("repro.scenarios.sensitivity", "repro.study.runner"),
    }
)

#: Scenario *builder* modules: frozen data behind the catalog.  Direct
#: imports are banned so every consumer resolves ids through
#: ``repro.scenarios`` (and thereby sees mounted universes).
BUILDER_MODULES: tuple[str, ...] = ("repro.machines.registry", "repro.apps.suite")

#: The only modules allowed to import the builders: the catalog's
#: builtin snapshot, and the two package shims that deprecate the old
#: module-level dicts.
BUILDER_IMPORTERS: frozenset[str] = frozenset(
    {
        "repro.scenarios.builtin",
        "repro.machines",
        "repro.apps",
    }
)

#: ``time`` attributes that steer control flow and are therefore banned
#: outside the Clock seam.  ``perf_counter`` (pure measurement) is not
#: listed on purpose.
BANNED_TIME_CALLS: frozenset[str] = frozenset({"time", "monotonic", "sleep"})

#: The one module allowed to touch :mod:`time` directly.
CLOCK_MODULE = "repro.util.clock"


def module_name(path: Path) -> str:
    """Dotted module name of a file under ``src/``."""
    rel = path.relative_to(SRC).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def imports_of(path: Path) -> list[tuple[int, str]]:
    """Every imported module in ``path`` as (line, dotted-name)."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: resolve against this package
                base = module_name(path).split(".")
                if path.name != "__init__.py":
                    base.pop()
                base = base[: len(base) - (node.level - 1)]
                prefix = ".".join(base)
                target = f"{prefix}.{node.module}" if node.module else prefix
            else:
                target = node.module or ""
            found.append((node.lineno, target))
    return found


def time_calls_of(path: Path) -> list[tuple[int, str]]:
    """Banned direct time usages in ``path`` as (line, description).

    Flags ``time.time``/``time.monotonic``/``time.sleep`` attribute
    access (call or reference — storing ``time.monotonic`` as a default
    is still a direct dependency) and ``from time import ...`` of those
    names.  ``time.perf_counter`` and everything else pass.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
            and node.attr in BANNED_TIME_CALLS
        ):
            found.append((node.lineno, f"time.{node.attr}"))
        elif isinstance(node, ast.ImportFrom) and node.module == "time" and not node.level:
            for alias in node.names:
                if alias.name in BANNED_TIME_CALLS or alias.name == "*":
                    found.append((node.lineno, f"from time import {alias.name}"))
    return found


def check_time_usage() -> list[str]:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        mod = module_name(path)
        if mod == CLOCK_MODULE:
            continue
        for line, usage in time_calls_of(path):
            violations.append(
                f"{path.relative_to(SRC.parent)}:{line}: "
                f"{mod} uses {usage} directly "
                f"(go through repro.util.clock.Clock)"
            )
    return violations


def check() -> list[str]:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        mod = module_name(path)
        rules = [
            banned
            for layer, banned in FORBIDDEN.items()
            if mod == layer or mod.startswith(layer + ".")
        ]
        if not rules:
            continue
        for line, imported in imports_of(path):
            for banned in rules:
                for ban in banned:
                    if imported == ban or imported.startswith(ban + "."):
                        if (mod, imported) in ALLOWED:
                            continue
                        violations.append(
                            f"{path.relative_to(SRC.parent)}:{line}: "
                            f"{mod} imports {imported} "
                            f"(forbidden: {ban})"
                        )
    return violations


def check_builder_imports() -> list[str]:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        mod = module_name(path)
        if mod in BUILDER_IMPORTERS:
            continue
        if any(mod == b or mod.startswith(b + ".") for b in BUILDER_MODULES):
            continue
        for line, imported in imports_of(path):
            if imported in BUILDER_MODULES:
                violations.append(
                    f"{path.relative_to(SRC.parent)}:{line}: "
                    f"{mod} imports {imported} directly "
                    f"(resolve ids through repro.scenarios)"
                )
    return violations


def main() -> int:
    violations = check() + check_builder_imports() + check_time_usage()
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(
            f"check_layering: {len(violations)} layering violation(s)",
            file=sys.stderr,
        )
        return 1
    print("check_layering: import boundaries and time usage clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
