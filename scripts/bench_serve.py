#!/usr/bin/env python
"""Closed-loop HTTP benchmark and throughput gate for the serving fleet.

Boots real fleets (worker processes + asyncio front end) on loopback and
measures three legs end to end — HTTP parse, shard routing, worker
round-trip, JSON back:

* ``point_single``  — closed-loop ``GET /predict`` against a 1-worker
  fleet: the baseline a single engine process can serve;
* ``point_fleet``   — the same load against ``--workers`` processes
  (shard routing keeps each worker's caches hot for its slice);
* ``coalesced``     — bursts of *identical* concurrent requests: the
  single-flight map collapses each burst to one engine call, so
  client-observed throughput decouples from engine throughput
  (the coalesce ratio is reported from ``/healthz``);
* ``batch``         — ``POST /predict/batch`` over the paper's full
  145-run / 1305-prediction matrix: cells ride the tensorized
  ``run_matrix`` path instead of N point lookups.

The report lands in the committed benchmark file (``--output``,
default ``BENCH_study.json``) under a ``"serve"`` key, merged so the
study-bench sections survive.

Gates (any failure exits 1):

* ``--gate-serve-pps FLOOR`` — absolute floor on batch-leg
  predictions/sec;
* ``--gate-batch-speedup X`` — the batch leg must out-serve the
  1-worker point baseline by at least ``X``x, measured in the same
  invocation so shared-runner drift cancels (this is the CI gate's
  ">= 5x" contract).

Usage::

    PYTHONPATH=src python scripts/bench_serve.py [--workers 2]
        [--requests 200] [--clients 8] [--bursts 8] [--burst-size 32]
        [--batch-repeats 3] [--gate-serve-pps FLOOR]
        [--gate-batch-speedup X] [--output BENCH_study.json]
"""

from __future__ import annotations

import argparse
import http.client
import json
import platform
import sys
import threading
import time
from pathlib import Path

from repro.apps.suite import APPLICATIONS, get_application
from repro.machines.registry import get_machine
from repro.serve.frontend import FleetServer
from repro.util.io import write_atomic

#: Request deadline for bench traffic — generous; the bench measures
#: throughput, not deadline pressure.
DEADLINE_MS = 30000.0

#: Target machine for the point legs (any mid-size system works; all
#: cells stay eligible).
POINT_MACHINE = "ARL_Xeon"


def _point_paths() -> list[str]:
    """The point-leg working set: every eligible (application, cpus) row."""
    paths = []
    machine_cpus = get_machine(POINT_MACHINE).cpus
    for label in APPLICATIONS:
        app = get_application(label)
        for cpus in app.cpu_counts:
            if cpus > machine_cpus:
                continue  # the paper leaves such cells blank
            paths.append(
                f"/predict?application={label}&cpus={cpus}"
                f"&machine={POINT_MACHINE}&metric=9&deadline_ms={DEADLINE_MS:g}"
            )
    return paths


def _get(conn: http.client.HTTPConnection, path: str) -> tuple[int, dict]:
    conn.request("GET", path)
    resp = conn.getresponse()
    return resp.status, json.loads(resp.read())


def closed_loop(
    address: tuple[str, int], paths: list[str], total: int, clients: int
) -> tuple[float, list[int]]:
    """``total`` requests over ``clients`` keep-alive connections.

    Closed loop: each client fires its next request the moment the
    previous answer lands.  Returns (wall_seconds, statuses).
    """
    statuses: list[list[int]] = [[] for _ in range(clients)]
    per_client = total // clients

    def run(client: int) -> None:
        conn = http.client.HTTPConnection(*address, timeout=60)
        try:
            for i in range(per_client):
                path = paths[(client * per_client + i) % len(paths)]
                status, _ = _get(conn, path)
                statuses[client].append(status)
        finally:
            conn.close()

    threads = [threading.Thread(target=run, args=(c,)) for c in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    return wall, [s for client in statuses for s in client]


def coalesce_leg(
    address: tuple[str, int], bursts: int, burst_size: int, paths: list[str]
) -> tuple[float, list[int]]:
    """``bursts`` rounds of ``burst_size`` *identical* concurrent GETs."""
    statuses: list[int] = []
    lock = threading.Lock()
    start = time.perf_counter()
    for burst in range(bursts):
        path = paths[burst % len(paths)]

        def run() -> None:
            conn = http.client.HTTPConnection(*address, timeout=60)
            try:
                status, _ = _get(conn, path)
                with lock:
                    statuses.append(status)
            finally:
                conn.close()

        threads = [threading.Thread(target=run) for _ in range(burst_size)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    return time.perf_counter() - start, statuses


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2, metavar="N")
    parser.add_argument("--requests", type=int, default=200, metavar="N")
    parser.add_argument("--clients", type=int, default=8, metavar="N")
    parser.add_argument("--bursts", type=int, default=8, metavar="N")
    parser.add_argument("--burst-size", type=int, default=32, metavar="N")
    parser.add_argument("--batch-repeats", type=int, default=3, metavar="N")
    parser.add_argument(
        "--gate-serve-pps",
        type=float,
        default=None,
        metavar="FLOOR",
        help="fail if batch-leg predictions/sec falls below FLOOR",
    )
    parser.add_argument(
        "--gate-batch-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail if the batch leg does not out-serve the 1-worker point "
        "baseline by at least X times (same-run comparison)",
    )
    parser.add_argument("--output", default="BENCH_study.json")
    args = parser.parse_args(argv)

    paths = _point_paths()
    results: dict[str, dict] = {}
    failures: list[str] = []

    def check_statuses(leg: str, statuses: list[int]) -> None:
        bad = sorted({s for s in statuses if s != 200})
        if bad:
            failures.append(f"{leg}: non-200 statuses {bad}")

    # ------------------------------------------------------------------
    # Leg 1: single-worker point baseline.
    # ------------------------------------------------------------------
    with FleetServer(1, default_deadline=DEADLINE_MS / 1000.0) as single:
        closed_loop(single.address, paths, len(paths), 1)  # warm every cell
        wall, statuses = closed_loop(
            single.address, paths, args.requests, args.clients
        )
        check_statuses("point_single", statuses)
        point_single_pps = len(statuses) / wall
        results["point_single"] = {
            "workers": 1,
            "requests": len(statuses),
            "seconds": round(wall, 4),
            "predictions_per_second": round(point_single_pps, 1),
        }
        print(
            f"point_single  {wall:7.3f}s  ({point_single_pps:,.0f} predictions/s)"
        )

    # ------------------------------------------------------------------
    # Legs 2-4 share one fleet.
    # ------------------------------------------------------------------
    with FleetServer(args.workers, default_deadline=DEADLINE_MS / 1000.0) as fleet:
        address = fleet.address
        closed_loop(address, paths, len(paths), 1)  # warm every shard
        wall, statuses = closed_loop(address, paths, args.requests, args.clients)
        check_statuses("point_fleet", statuses)
        point_fleet_pps = len(statuses) / wall
        results["point_fleet"] = {
            "workers": args.workers,
            "requests": len(statuses),
            "seconds": round(wall, 4),
            "predictions_per_second": round(point_fleet_pps, 1),
        }
        print(
            f"point_fleet   {wall:7.3f}s  ({point_fleet_pps:,.0f} predictions/s)"
        )

        wall, statuses = coalesce_leg(address, args.bursts, args.burst_size, paths)
        check_statuses("coalesced", statuses)
        conn = http.client.HTTPConnection(*address, timeout=60)
        _, health = _get(conn, "/healthz")
        conn.close()
        co = health["coalescing"]
        answered = co["leaders_total"] + co["followers_total"]
        ratio = co["followers_total"] / answered if answered else 0.0
        results["coalesced"] = {
            "bursts": args.bursts,
            "burst_size": args.burst_size,
            "seconds": round(wall, 4),
            "requests_per_second": round(len(statuses) / wall, 1),
            "followers_total": co["followers_total"],
            "leaders_total": co["leaders_total"],
            "coalesce_ratio": round(ratio, 4),
        }
        print(
            f"coalesced     {wall:7.3f}s  "
            f"({len(statuses) / wall:,.0f} responses/s, "
            f"{ratio:.0%} served by coalescing)"
        )

        best, count = float("inf"), None
        batch_times = []
        for _ in range(args.batch_repeats):
            conn = http.client.HTTPConnection(*address, timeout=600)
            t0 = time.perf_counter()
            conn.request(
                "POST",
                "/predict/batch",
                body=b"{}",
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            body = json.loads(resp.read())
            dt = time.perf_counter() - t0
            conn.close()
            if resp.status != 200:
                failures.append(f"batch: status {resp.status}: {body}")
                break
            count = body["count"]
            batch_times.append(dt)
            best = min(best, dt)
        batch_pps = (count or 0) / best if best < float("inf") else 0.0
        results["batch"] = {
            "workers": args.workers,
            "cells": count,
            "best_seconds": round(best, 4) if best < float("inf") else None,
            "all_seconds": [round(t, 4) for t in batch_times],
            "predictions_per_second": round(batch_pps, 1),
        }
        print(f"batch         {best:7.3f}s  ({batch_pps:,.0f} predictions/s)")

    speedup = batch_pps / point_single_pps if point_single_pps else 0.0
    print(f"\nbatch vs 1-worker point baseline: {speedup:.1f}x")

    # ------------------------------------------------------------------
    # Merge the serve section into the committed benchmark report.
    # ------------------------------------------------------------------
    out = Path(args.output)
    report = json.loads(out.read_text()) if out.exists() else {}
    report["serve"] = {
        "results": results,
        "batch_speedup_vs_point_single": round(speedup, 1),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    write_atomic(out, json.dumps(report, indent=2) + "\n")
    print(f"report written to {out} (serve section)")

    if args.gate_serve_pps is not None:
        if batch_pps < args.gate_serve_pps:
            failures.append(
                f"batch {batch_pps:,.0f} predictions/s is below the "
                f"{args.gate_serve_pps:,.0f} floor"
            )
        else:
            print(
                f"gate ok: batch {batch_pps:,.0f} predictions/s >= "
                f"{args.gate_serve_pps:,.0f} floor"
            )
    if args.gate_batch_speedup is not None:
        if speedup < args.gate_batch_speedup:
            failures.append(
                f"batch leg is only {speedup:.1f}x the 1-worker point "
                f"baseline (need >= {args.gate_batch_speedup:g}x)"
            )
        else:
            print(
                f"gate ok: batch leg {speedup:.1f}x >= "
                f"{args.gate_batch_speedup:g}x point baseline"
            )

    if failures:
        for failure in failures:
            print(f"bench-serve: FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench-serve: all gates held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
