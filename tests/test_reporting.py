"""Tests for ASCII charts and exports."""

import pytest

from repro.reporting.ascii_charts import bar_chart, line_chart
from repro.reporting.export import result_to_csv, tables_to_text
from repro.util.tables import Table


def test_line_chart_renders_series():
    text = line_chart(
        {"sys_a": ([1e3, 1e6, 1e9], [10.0, 5.0, 1.0])},
        title="BW",
        x_label="size",
        y_label="GB/s",
    )
    assert "BW" in text
    assert "o sys_a" in text
    assert "+" + "-" * 72 in text


def test_line_chart_multiple_markers():
    text = line_chart(
        {
            "a": ([1, 10], [1.0, 2.0]),
            "b": ([1, 10], [2.0, 4.0]),
        }
    )
    assert "o a" in text and "x b" in text


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart({})
    with pytest.raises(ValueError):
        line_chart({"a": ([1], [1])}, width=5)


def test_bar_chart_scales_to_max():
    text = bar_chart({"m1": 50.0, "m2": 25.0}, width=40)
    lines = text.splitlines()
    bar1 = lines[0].count("#")
    bar2 = lines[1].count("#")
    assert bar1 == 40
    assert bar2 == 20


def test_bar_chart_errors_annotated():
    text = bar_chart({"m": 10.0}, errors={"m": 3.0})
    assert "+/-3" in text


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart({})
    with pytest.raises(ValueError):
        bar_chart({"a": 0.0})


def test_result_to_csv(full_study):
    csv = result_to_csv(full_study)
    lines = csv.strip().splitlines()
    assert lines[0].startswith("application,cpus,system,metric")
    assert len(lines) == full_study.n_predictions + 1
    assert "AVUS-standard" in lines[1]


def test_tables_to_text():
    t1 = Table(title="A", columns=["x"])
    t1.add_row(1)
    t2 = Table(title="B", columns=["y"])
    t2.add_row(2)
    text = tables_to_text([t1, t2])
    assert "A" in text and "B" in text
