"""Tests for the interconnect model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machines.spec import NetworkSpec
from repro.network.model import CollectiveKind, NetworkModel
from repro.util.units import GB, MIB


@pytest.fixture()
def net():
    return NetworkModel(NetworkSpec("Test", 5e-6, 1 * GB, collective_efficiency=0.8))


def test_point_to_point_hockney(net):
    assert net.point_to_point(0) == pytest.approx(5e-6)
    assert net.point_to_point(1 * GB) == pytest.approx(5e-6 + 1.0)


def test_ping_pong_is_twice_one_way(net):
    assert net.ping_pong(1024) == pytest.approx(2 * net.point_to_point(1024))


def test_effective_bandwidth_approaches_peak(net):
    assert net.effective_bandwidth(64 * MIB) == pytest.approx(1 * GB, rel=0.01)
    assert net.effective_bandwidth(8) < 0.01 * GB  # latency dominated


def test_negative_size_rejected(net):
    with pytest.raises(ValueError):
        net.point_to_point(-1)


def test_single_rank_collectives_free(net):
    for kind in CollectiveKind:
        assert net.collective(kind, 1) == 0.0


def test_allreduce_grows_logarithmically(net):
    t4 = net.allreduce(4)
    t16 = net.allreduce(16)
    t256 = net.allreduce(256)
    assert t4 < t16 < t256
    # log2(256)/log2(16) = 2, so roughly double
    assert t256 / t16 == pytest.approx(2.0, rel=0.1)


def test_allreduce_costs_two_sweeps_vs_broadcast(net):
    bcast = net.collective(CollectiveKind.BROADCAST, 64, 1024)
    allred = net.collective(CollectiveKind.ALLREDUCE, 64, 1024)
    assert allred == pytest.approx(2 * bcast)


def test_barrier_has_no_payload_cost(net):
    b_small = net.collective(CollectiveKind.BARRIER, 64, 8)
    b_big = net.collective(CollectiveKind.BARRIER, 64, 1 * MIB)
    assert b_small == b_big


def test_alltoall_scales_with_ranks(net):
    t8 = net.collective(CollectiveKind.ALLTOALL, 8, 1024)
    t64 = net.collective(CollectiveKind.ALLTOALL, 64, 1024)
    assert t64 / t8 == pytest.approx(63 / 7, rel=0.01)


def test_collective_efficiency_slows_trees():
    fast = NetworkModel(NetworkSpec("F", 5e-6, 1 * GB, collective_efficiency=1.0))
    slow = NetworkModel(NetworkSpec("S", 5e-6, 1 * GB, collective_efficiency=0.5))
    assert slow.allreduce(64) == pytest.approx(2 * fast.allreduce(64))


def test_rejects_nonpositive_ranks(net):
    with pytest.raises(ValueError):
        net.collective(CollectiveKind.ALLREDUCE, 0)


@settings(max_examples=40)
@given(
    size=st.floats(min_value=0, max_value=1e9),
    ranks=st.integers(min_value=2, max_value=4096),
)
def test_collectives_always_positive(size, ranks):
    net = NetworkModel(NetworkSpec("T", 5e-6, 1 * GB))
    for kind in CollectiveKind:
        assert net.collective(kind, ranks, size) > 0


@settings(max_examples=40)
@given(s1=st.floats(min_value=0, max_value=1e8), s2=st.floats(min_value=0, max_value=1e8))
def test_p2p_monotone_in_size(s1, s2):
    net = NetworkModel(NetworkSpec("T", 5e-6, 1 * GB))
    lo, hi = sorted((s1, s2))
    assert net.point_to_point(lo) <= net.point_to_point(hi)
