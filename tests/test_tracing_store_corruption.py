"""Self-healing TraceStore: corrupt entries invalidate and re-trace, never raise.

Every damage shape a shared cache directory can exhibit — truncated JSON,
flipped bytes (checksum mismatch), stale payload schema versions, stale
envelope versions, pre-envelope files, outright garbage — must be detected
on load, logged, deleted, and reported as a miss so the caller recomputes.
"""

import json

import pytest

from repro.probes.suite import probe_machine
from repro.tracing.metasim import trace_application
from repro.tracing.serialize import trace_to_json
from repro.tracing.store import STORE_SCHEMA_VERSION, TraceStore
from repro.util.faults import FaultPlan


@pytest.fixture()
def stored(tmp_path, base_machine, avus):
    """A store holding one trace + the base machine's probes."""
    store = TraceStore(tmp_path)
    trace = trace_application(avus, 64, base_machine, use_cache=False, store=store)
    probe_machine(base_machine, use_cache=False, store=store)
    return store, trace


def _trace_file(store):
    (path,) = list(store.traces_dir.iterdir())
    return path


def _load(store, trace):
    return store.load_trace(
        trace.application, trace.cpus, trace.base_machine, trace.sample_size, False
    )


# ---------------------------------------------------------------------------
# damage shapes
# ---------------------------------------------------------------------------


def test_truncated_entry_invalidates_and_deletes(stored):
    store, trace = stored
    path = _trace_file(store)
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert _load(store, trace) is None
    assert not path.exists()
    assert store.invalidated == 1


def test_flipped_byte_fails_checksum_and_invalidates(stored):
    store, trace = stored
    path = _trace_file(store)
    doc = json.loads(path.read_text())
    payload = doc["payload"]
    i = len(payload) // 2
    doc["payload"] = payload[:i] + chr(ord(payload[i]) ^ 0x01) + payload[i + 1 :]
    path.write_text(json.dumps(doc))  # envelope still valid JSON, checksum stale
    assert _load(store, trace) is None
    assert not path.exists()
    assert store.invalidated == 1


def test_stale_payload_schema_version_invalidates(stored, base_machine, avus):
    store, trace = stored
    path = _trace_file(store)
    payload = json.loads(json.loads(path.read_text())["payload"])
    payload["schema_version"] = 1  # an old build's artifact
    store._save_entry(path, json.dumps(payload))  # checksum is fresh: only schema stale
    assert _load(store, trace) is None
    assert not path.exists()
    assert store.invalidated == 1


def test_stale_envelope_schema_invalidates(stored):
    store, trace = stored
    path = _trace_file(store)
    doc = json.loads(path.read_text())
    doc["store_schema"] = STORE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(doc))
    assert _load(store, trace) is None
    assert store.invalidated == 1


def test_pre_envelope_entry_invalidates(stored, base_machine, avus):
    # An entry from before the checksummed envelope existed: bare payload.
    store, trace = stored
    path = _trace_file(store)
    path.write_text(trace_to_json(trace))
    assert _load(store, trace) is None
    assert store.invalidated == 1


def test_garbage_entry_invalidates(stored):
    store, trace = stored
    path = _trace_file(store)
    path.write_text("{not json")
    assert _load(store, trace) is None
    assert store.invalidated == 1


def test_corrupt_probe_entry_invalidates(stored, base_machine):
    store, _ = stored
    (path,) = list(store.probes_dir.iterdir())
    path.write_text(path.read_text()[:40])
    assert store.load_probes(base_machine) is None
    assert not path.exists()


# ---------------------------------------------------------------------------
# heal-by-retrace: the study-level guarantee
# ---------------------------------------------------------------------------


def test_invalidation_falls_through_to_retrace(stored, base_machine, avus):
    store, trace = stored
    _trace_file(store).write_text("garbage")
    retraced = trace_application(avus, 64, base_machine, use_cache=False, store=store)
    assert retraced == trace  # recomputed, not loaded — and byte-equal
    assert store.invalidated == 1
    # the healed entry is valid again
    assert _load(store, trace) == trace


def test_fault_injected_store_corruption_heals(tmp_path, base_machine, avus):
    """A FaultPlan-corrupted save is caught by the next load and re-traced."""
    plan = FaultPlan(seed=11, corrupt_rate=1.0)
    dirty = TraceStore(tmp_path, faults=plan)
    trace = trace_application(avus, 64, base_machine, use_cache=False, store=dirty)

    clean = TraceStore(tmp_path)
    assert _load(clean, trace) is None  # corrupted on disk -> invalidated
    assert clean.invalidated == 1
    healed = trace_application(avus, 64, base_machine, use_cache=False, store=clean)
    assert healed == trace
    assert _load(clean, trace) == trace


def test_healing_logs_a_warning(stored, caplog):
    store, trace = stored
    _trace_file(store).write_text("garbage")
    with caplog.at_level("WARNING", logger="repro.tracing.store"):
        assert _load(store, trace) is None
    assert any("invalidating corrupt trace entry" in m for m in caplog.messages)
