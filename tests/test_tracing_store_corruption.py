"""Self-healing TraceStore: corrupt entries invalidate and re-trace, never raise.

Every damage shape a shared cache directory can exhibit — truncated
binary entries (length mismatch), flipped payload bytes (checksum
mismatch), foreign format versions, bare-JSON files at the binary path,
outright garbage, and every legacy-JSON failure mode (stale payload
schema, stale envelope, pre-envelope payloads) — must be detected on
load, logged, deleted, and reported as a miss so the caller recomputes.
"""

import json
import struct
import time

import pytest

from repro.probes.suite import probe_machine
from repro.tracing import binfmt
from repro.tracing.metasim import trace_application
from repro.tracing.serialize import trace_to_json
from repro.tracing.store import (
    STORE_SCHEMA_VERSION,
    TraceStore,
    _checksum,
)
from repro.util.faults import FaultPlan


@pytest.fixture()
def stored(tmp_path, base_machine, avus):
    """A store holding one trace + the base machine's probes."""
    store = TraceStore(tmp_path)
    trace = trace_application(avus, 64, base_machine, use_cache=False, store=store)
    probe_machine(base_machine, use_cache=False, store=store)
    store.flush()  # the tests damage files directly, so writes must land
    return store, trace


def _trace_file(store):
    (path,) = list(store.traces_dir.iterdir())
    return path


def _load(store, trace):
    return store.load_trace(
        trace.application, trace.cpus, trace.base_machine, trace.sample_size, False
    )


def _legacy_envelope(payload: str) -> str:
    return json.dumps(
        {
            "kind": "store-entry",
            "store_schema": STORE_SCHEMA_VERSION,
            "checksum": _checksum(payload),
            "payload": payload,
        }
    )


# ---------------------------------------------------------------------------
# binary damage shapes
# ---------------------------------------------------------------------------


def test_entries_are_binary(stored):
    store, _ = stored
    path = _trace_file(store)
    assert path.suffix == ".rpb"
    assert path.read_bytes()[:4] == binfmt.MAGIC


def test_truncated_entry_invalidates_and_deletes(stored):
    store, trace = stored
    path = _trace_file(store)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    assert _load(store, trace) is None
    assert not path.exists()
    assert store.invalidated == 1


def test_flipped_payload_byte_fails_checksum_and_invalidates(stored):
    store, trace = stored
    path = _trace_file(store)
    data = path.read_bytes()
    i = (len(data) + 36) // 2  # inside the checksummed body, past the prelude
    path.write_bytes(data[:i] + bytes((data[i] ^ 0x01,)) + data[i + 1 :])
    assert _load(store, trace) is None
    assert not path.exists()
    assert store.invalidated == 1


def test_foreign_format_version_invalidates(stored):
    store, trace = stored
    path = _trace_file(store)
    data = bytearray(path.read_bytes())
    # The format version lives in the prelude, outside the checksummed
    # region: a future build's entry is rejected structurally, not as rot.
    struct.pack_into("<H", data, 4, binfmt.FORMAT_VERSION + 1)
    path.write_bytes(bytes(data))
    assert _load(store, trace) is None
    assert store.invalidated == 1


def test_bare_json_at_binary_path_invalidates(stored, base_machine, avus):
    # A pre-binary payload dropped at the binary path: bad magic.
    store, trace = stored
    path = _trace_file(store)
    path.write_bytes(trace_to_json(trace).encode())
    assert _load(store, trace) is None
    assert store.invalidated == 1


def test_garbage_entry_invalidates(stored):
    store, trace = stored
    path = _trace_file(store)
    path.write_bytes(b"\x00" * 512)
    assert _load(store, trace) is None
    assert store.invalidated == 1


def test_corrupt_probe_entry_invalidates(stored, base_machine):
    store, _ = stored
    (path,) = list(store.probes_dir.iterdir())
    path.write_bytes(path.read_bytes()[:40])
    assert store.load_probes(base_machine) is None
    assert not path.exists()


# ---------------------------------------------------------------------------
# legacy-JSON damage shapes (mixed-format directories keep healing)
# ---------------------------------------------------------------------------


def _as_legacy(store, trace, payload: str):
    """Replace the binary entry with a legacy JSON entry holding payload."""
    path = _trace_file(store)
    legacy = path.with_suffix(".json")
    legacy.write_text(_legacy_envelope(payload))
    path.unlink()
    return legacy


def test_stale_payload_schema_version_invalidates(stored, base_machine, avus):
    store, trace = stored
    doc = json.loads(trace_to_json(trace))
    doc["schema_version"] = 1  # an old build's artifact
    legacy = _as_legacy(store, trace, json.dumps(doc))  # checksum fresh: only schema stale
    assert _load(store, trace) is None
    assert not legacy.exists()
    assert store.invalidated == 1


def test_stale_envelope_schema_invalidates(stored):
    store, trace = stored
    legacy = _as_legacy(store, trace, trace_to_json(trace))
    doc = json.loads(legacy.read_text())
    doc["store_schema"] = STORE_SCHEMA_VERSION + 1
    legacy.write_text(json.dumps(doc))
    assert _load(store, trace) is None
    assert store.invalidated == 1


def test_pre_envelope_entry_invalidates(stored, base_machine, avus):
    # An entry from before the checksummed envelope existed: bare payload.
    store, trace = stored
    path = _trace_file(store)
    path.with_suffix(".json").write_text(trace_to_json(trace))
    path.unlink()
    assert _load(store, trace) is None
    assert store.invalidated == 1


def test_valid_legacy_entry_loads_and_migrates(stored):
    store, trace = stored
    legacy = _as_legacy(store, trace, trace_to_json(trace))
    loaded = _load(store, trace)
    assert loaded == trace
    assert store.invalidated == 0
    # migrate-on-first-touch: the legacy file is gone, a binary twin exists
    assert not legacy.exists()
    binary = legacy.with_suffix(".rpb")
    assert binary.exists()
    assert store.load_trace(
        trace.application, trace.cpus, trace.base_machine, trace.sample_size
    ) == trace


# ---------------------------------------------------------------------------
# heal-by-retrace: the study-level guarantee
# ---------------------------------------------------------------------------


def test_invalidation_falls_through_to_retrace(stored, base_machine, avus):
    store, trace = stored
    _trace_file(store).write_bytes(b"garbage" * 64)
    retraced = trace_application(avus, 64, base_machine, use_cache=False, store=store)
    assert retraced == trace  # recomputed, not loaded — and byte-equal
    assert store.invalidated == 1
    # the healed entry is valid again
    assert _load(store, trace) == trace


def test_fault_injected_store_corruption_heals(tmp_path, base_machine, avus):
    """A FaultPlan-corrupted save is caught by the next load and re-traced."""
    plan = FaultPlan(seed=11, corrupt_rate=1.0)
    dirty = TraceStore(tmp_path, faults=plan)
    trace = trace_application(avus, 64, base_machine, use_cache=False, store=dirty)
    dirty.flush()  # a second instance has no view of this one's write queue

    clean = TraceStore(tmp_path)
    assert _load(clean, trace) is None  # corrupted on disk -> invalidated
    assert clean.invalidated == 1
    healed = trace_application(avus, 64, base_machine, use_cache=False, store=clean)
    assert healed == trace
    assert _load(clean, trace) == trace


def test_healing_logs_a_warning(stored, caplog):
    store, trace = stored
    _trace_file(store).write_bytes(b"garbage" * 64)
    with caplog.at_level("WARNING", logger="repro.tracing.store"):
        assert _load(store, trace) is None
    assert any("invalidating corrupt trace entry" in m for m in caplog.messages)


# ---------------------------------------------------------------------------
# write-behind: deferred writes are invisible to readers
# ---------------------------------------------------------------------------


def test_read_after_write_synchronises(tmp_path, base_machine, avus):
    """A load issued right after a save sees the entry, queue or not."""
    store = TraceStore(tmp_path)
    trace = trace_application(avus, 64, base_machine, use_cache=False)
    store.save_trace(trace)
    # no explicit flush: load_trace must complete the in-flight write itself
    assert _load(store, trace) == trace
    assert store.has_trace(
        trace.application, trace.cpus, trace.base_machine, trace.sample_size
    )
    assert _trace_file(store).suffix == ".rpb"


def test_flush_drains_the_writer_queue(tmp_path, base_machine, avus):
    store = TraceStore(tmp_path)
    trace = trace_application(avus, 64, base_machine, use_cache=False)
    store.save_trace(trace)
    probe_machine(base_machine, use_cache=False, store=store)
    store.flush()
    assert not store._pending
    assert len(list(store.traces_dir.iterdir())) == 1
    assert len(list(store.probes_dir.iterdir())) == 1


def test_rapid_resaves_of_one_path_never_wedge_flush(tmp_path, base_machine, avus):
    """Many saves of one identity racing the writer must drain cleanly.

    Regression: a drain round whose pending bytes a *previous* round
    already wrote (and cleared) used to KeyError the writer thread
    mid-drain, deadlocking every later flush().
    """
    import threading

    store = TraceStore(tmp_path)
    trace = trace_application(avus, 64, base_machine, use_cache=False)
    for _ in range(500):
        store.save_trace(trace)
    flusher = threading.Thread(target=store.flush, daemon=True)
    flusher.start()
    flusher.join(timeout=30.0)
    assert not flusher.is_alive(), "flush() wedged: writer thread died mid-drain"
    assert not store._pending
    assert _load(store, trace) == trace


def test_writer_thread_exits_when_idle(tmp_path, base_machine, avus):
    """Short-lived stores (one per worker chunk) must not leak threads."""
    store = TraceStore(tmp_path)
    store.WRITER_IDLE_SECONDS = 0.05
    trace = trace_application(avus, 64, base_machine, use_cache=False)
    store.save_trace(trace)
    store.flush()
    deadline = time.monotonic() + 5.0
    while store._writer is not None and time.monotonic() < deadline:
        time.sleep(0.01)
    assert store._writer is None
    # and a later save restarts it transparently
    store.save_trace(trace)
    store.flush()
    assert _load(store, trace) == trace
