"""The simulation harness end to end: fuzz, determinism, canary, corpus.

This is the tier-1 face of the ``sim`` CI job: random seeded episodes
must hold every invariant, the same seed must produce byte-identical
transcripts in fresh processes, a deliberately re-introduced known-fixed
bug must be detected and shrink to a tiny reproducer, and the committed
corpus must replay exactly as recorded.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    CANARIES,
    SCENARIO_NAMES,
    Schedule,
    run_episode,
    shrink_episode,
)
from repro.sim.shrink import shrink

CORPUS_DIR = Path(__file__).parent / "corpus"
SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


# ---------------------------------------------------------------------------
# episode fuzz: any seed, any scenario -> every invariant holds
# ---------------------------------------------------------------------------


class TestEpisodeFuzz:
    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_serve_recovery_invariants_hold(self, seed):
        result = run_episode("serve-recovery", seed)
        assert result.ok, result.violations

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=6, deadline=None)
    def test_study_resume_invariants_hold(self, seed):
        result = run_episode("study-resume", seed)
        assert result.ok, result.violations

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_coalesce_invariants_hold(self, seed):
        result = run_episode("coalesce", seed)
        assert result.ok, result.violations

    def test_virtual_time_outruns_wall_time(self):
        """The whole point: simulated chaos is ~free in wall-clock."""
        result = run_episode("serve-recovery", 0)
        assert result.ok
        assert result.virtual_seconds > 60.0  # covers the recovery advance
        assert result.wall_seconds < 10.0


# ---------------------------------------------------------------------------
# determinism: same seed -> byte-identical transcript, across processes
# ---------------------------------------------------------------------------

_DIGEST_SNIPPET = """
import json
from repro.sim import run_episode
digests = {
    scenario: run_episode(scenario, 3).digest
    for scenario in ("serve-recovery", "study-resume", "coalesce")
}
print(json.dumps(digests, sort_keys=True))
"""


class TestDeterminism:
    def test_same_seed_same_digest_in_process(self):
        for scenario in SCENARIO_NAMES:
            a = run_episode(scenario, 11)
            b = run_episode(scenario, 11)
            assert a.digest == b.digest
            assert a.transcript == b.transcript

    def test_different_seeds_differ(self):
        digests = {run_episode("serve-recovery", seed).digest for seed in range(6)}
        assert len(digests) == 6

    def test_cross_process_digest_pin(self):
        """Two fresh interpreters agree bit-for-bit on every scenario."""
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        outputs = [
            subprocess.run(
                [sys.executable, "-c", _DIGEST_SNIPPET],
                capture_output=True,
                text=True,
                env=env,
                check=True,
                timeout=300,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        assert set(json.loads(outputs[0])) == set(SCENARIO_NAMES)


# ---------------------------------------------------------------------------
# mutation canary: a re-introduced known-fixed bug is caught and shrunk
# ---------------------------------------------------------------------------


class TestCanary:
    def test_silent_degrade_canary_is_detected(self):
        # Seed 5's schedule degrades at least one response; the canary
        # strips the degraded flag at the driver boundary, which must
        # trip the degradation-marked invariant.
        result = run_episode("serve-recovery", 5, canary="silent-degrade")
        assert not result.ok
        assert any(
            v["invariant"] == "degradation-marked" for v in result.violations
        )

    def test_canary_off_same_seed_is_clean(self):
        assert run_episode("serve-recovery", 5).ok

    def test_unknown_canary_rejected(self):
        with pytest.raises(ValueError, match="unknown canary"):
            run_episode("serve-recovery", 0, canary="nope")
        assert CANARIES == ("silent-degrade",)

    def test_canary_shrinks_to_tiny_reproducer(self):
        minimal, signature = shrink_episode(
            "serve-recovery", 5, canary="silent-degrade"
        )
        assert signature == "degradation-marked"
        assert len(minimal.events) <= 5
        # The minimal schedule still reproduces with the canary on ...
        replay = run_episode(
            "serve-recovery", 5, schedule=minimal, canary="silent-degrade"
        )
        assert any(v["invariant"] == signature for v in replay.violations)
        # ... and is clean with the bug fixed (canary off).
        assert run_episode("serve-recovery", 5, schedule=minimal).ok

    def test_shrink_refuses_a_passing_episode(self):
        with pytest.raises(ValueError, match="nothing to shrink"):
            shrink_episode("coalesce", 0)

    def test_shrink_probe_budget_bounds_executions(self):
        probes = 0

        def failing(candidate):
            nonlocal probes
            probes += 1
            return True  # everything "fails": worst case for the search

        schedule = Schedule.generate(5, "serve-recovery")
        minimal = shrink(schedule, failing, max_probes=10)
        assert probes <= 11  # initial sanity check + at most max_probes
        assert len(minimal.events) <= len(schedule.events)


# ---------------------------------------------------------------------------
# regression corpus: committed reproducers behave exactly as recorded
# ---------------------------------------------------------------------------


def _corpus_files():
    return sorted(CORPUS_DIR.glob("*.json"))


class TestCorpus:
    def test_corpus_is_not_empty(self):
        assert _corpus_files(), "tests/corpus must hold committed reproducers"

    @pytest.mark.parametrize(
        "path", _corpus_files(), ids=lambda p: p.name
    )
    def test_corpus_entry_replays_as_committed(self, path):
        doc = json.loads(path.read_text())
        if "schedule" in doc:
            schedule = Schedule.from_doc(doc["schedule"])
            canary = doc.get("canary")
            expected = doc.get("expect_violation")
        else:
            schedule, canary, expected = Schedule.from_doc(doc), None, None
        result = run_episode(
            schedule.scenario, schedule.seed, schedule=schedule, canary=canary
        )
        if expected is not None:
            assert any(
                v["invariant"] == expected for v in result.violations
            ), f"{path.name} no longer trips [{expected}]: {result.violations}"
        else:
            assert result.ok, f"{path.name} regressed: {result.violations}"


# ---------------------------------------------------------------------------
# harness surface: argument validation and the CLI face
# ---------------------------------------------------------------------------


class TestSurface:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_episode("nope", 0)

    def test_schedule_scenario_mismatch_rejected(self):
        schedule = Schedule.generate(0, "coalesce")
        with pytest.raises(ValueError, match="scenario"):
            run_episode("serve-recovery", 0, schedule=schedule)

    def test_result_doc_shape(self):
        doc = run_episode("coalesce", 1).to_doc()
        assert doc["ok"] is True
        assert doc["scenario"] == "coalesce"
        assert set(doc) >= {
            "seed",
            "digest",
            "violations",
            "virtual_seconds",
            "wall_seconds",
        }

    def test_cli_sim_run_and_replay(self, capsys, monkeypatch, tmp_path):
        from repro.cli import main

        monkeypatch.chdir(Path(__file__).resolve().parents[1])
        report = tmp_path / "bench.json"
        assert (
            main(
                [
                    "sim",
                    "run",
                    "--scenario",
                    "coalesce",
                    "--episodes",
                    "2",
                    "--report",
                    str(report),
                ]
            )
            == 0
        )
        section = json.loads(report.read_text())["sim"]
        assert section["episodes"] == 2
        assert section["violations"] == 0
        assert main(["sim", "replay", "--corpus", str(CORPUS_DIR)]) == 0
        out = capsys.readouterr().out
        assert "behaved as committed" in out

    def test_cli_sim_shrink_writes_corpus_ready_doc(self, tmp_path):
        from repro.cli import main

        out_file = tmp_path / "repro.json"
        assert (
            main(
                [
                    "sim",
                    "shrink",
                    "--scenario",
                    "serve-recovery",
                    "--seed",
                    "5",
                    "--canary",
                    "silent-degrade",
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        doc = json.loads(out_file.read_text())
        assert doc["canary"] == "silent-degrade"
        assert doc["expect_violation"] == "degradation-marked"
        assert len(doc["schedule"]["events"]) <= 5
