"""Tests for access-pattern descriptors and stride histograms."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.patterns import (
    SHORT_STRIDE_MAX,
    AccessPattern,
    StrideClass,
    StrideHistogram,
)


def test_access_pattern_stride_bytes():
    unit = AccessPattern(working_set=1 << 20)
    assert unit.stride_bytes == 8
    short = AccessPattern(working_set=1 << 20, stride=StrideClass.SHORT, stride_elems=4)
    assert short.stride_bytes == 32


def test_random_pattern_has_no_stride_bytes():
    p = AccessPattern(working_set=1 << 20, stride=StrideClass.RANDOM)
    with pytest.raises(ValueError):
        _ = p.stride_bytes


def test_short_stride_bounds():
    with pytest.raises(ValueError):
        AccessPattern(working_set=1024, stride=StrideClass.SHORT, stride_elems=1)
    with pytest.raises(ValueError):
        AccessPattern(
            working_set=1024, stride=StrideClass.SHORT, stride_elems=SHORT_STRIDE_MAX + 1
        )


def test_pattern_rejects_nonpositive_working_set():
    with pytest.raises(ValueError):
        AccessPattern(working_set=0)


def test_chase_fraction_validated():
    with pytest.raises(ValueError):
        AccessPattern(working_set=1024, chase_fraction=1.5)


def test_histogram_must_sum_to_one():
    with pytest.raises(ValueError, match="sum to 1"):
        StrideHistogram(unit=0.5, short=0.2, random=0.2)


def test_histogram_normalised():
    h = StrideHistogram.normalised(2, 1, 1)
    assert h.unit == pytest.approx(0.5)
    assert h.short == pytest.approx(0.25)
    assert h.random == pytest.approx(0.25)


def test_histogram_strided_combines_unit_and_short():
    h = StrideHistogram(unit=0.6, short=0.3, random=0.1)
    assert h.strided == pytest.approx(0.9)


def test_histogram_fraction_lookup():
    h = StrideHistogram(unit=0.6, short=0.3, random=0.1)
    assert h.fraction(StrideClass.UNIT) == pytest.approx(0.6)
    assert h.fraction(StrideClass.SHORT) == pytest.approx(0.3)
    assert h.fraction(StrideClass.RANDOM) == pytest.approx(0.1)


def test_normalised_rejects_all_zero():
    with pytest.raises(ValueError):
        StrideHistogram.normalised(0, 0, 0)


@given(
    st.floats(min_value=0, max_value=100),
    st.floats(min_value=0, max_value=100),
    st.floats(min_value=0, max_value=100),
)
def test_normalised_always_sums_to_one(u, s, r):
    if u + s + r <= 0:
        return
    h = StrideHistogram.normalised(u, s, r)
    assert h.unit + h.short + h.random == pytest.approx(1.0)
    assert h.strided + h.random == pytest.approx(1.0)
