"""The Clock seam: VirtualClock semantics and as_clock normalisation.

The simulation harness's determinism rests entirely on these properties
— sleep advances instead of blocking, waits consume zero virtual time,
and the horizon guard turns would-be hangs into a typed error.
"""

import threading
import time

import pytest

from repro.util.clock import (
    SYSTEM_CLOCK,
    Clock,
    SystemClock,
    VirtualClock,
    VirtualTimeLimitError,
    as_clock,
)


class TestVirtualClock:
    def test_starts_at_start(self):
        assert VirtualClock().monotonic() == 0.0
        assert VirtualClock(start=5.5).monotonic() == 5.5

    def test_sleep_advances_without_blocking(self):
        clock = VirtualClock()
        wall = time.perf_counter()
        clock.sleep(3600.0)  # an hour of virtual time...
        wall = time.perf_counter() - wall
        assert clock.monotonic() == 3600.0
        assert wall < 1.0  # ...in well under a wall second

    def test_sleep_accumulates_slept_total(self):
        clock = VirtualClock()
        clock.sleep(1.5)
        clock.sleep(2.5)
        clock.advance(10.0)  # advance is a jump, not a sleep
        assert clock.slept_total == 4.0

    def test_nonpositive_sleep_is_a_noop(self):
        clock = VirtualClock()
        clock.sleep(0.0)
        clock.sleep(-1.0)
        assert clock.monotonic() == 0.0
        assert clock.slept_total == 0.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_limit_guard_raises_and_pins_at_limit(self):
        clock = VirtualClock(limit=10.0)
        clock.sleep(9.0)
        with pytest.raises(VirtualTimeLimitError):
            clock.sleep(2.0)
        # Pinned at the horizon: a retry loop that keeps sleeping keeps
        # raising instead of running virtual time away.
        assert clock.monotonic() == 10.0
        with pytest.raises(VirtualTimeLimitError):
            clock.advance(0.5)

    def test_limit_must_exceed_start(self):
        with pytest.raises(ValueError):
            VirtualClock(start=5.0, limit=5.0)

    def test_wait_consumes_no_virtual_time(self):
        clock = VirtualClock()
        event = threading.Event()
        assert clock.wait(event, timeout=60.0) is False
        assert clock.monotonic() == 0.0  # a background poll cannot skew time

    def test_wait_returns_true_when_set(self):
        clock = VirtualClock()
        event = threading.Event()
        event.set()
        assert clock.wait(event, timeout=60.0) is True

    def test_wait_blocks_a_real_micro_slice_only(self):
        clock = VirtualClock()
        wall = time.perf_counter()
        clock.wait(threading.Event(), timeout=3600.0)
        wall = time.perf_counter() - wall
        assert wall < 0.5  # clamped to WAIT_SLICE_SECONDS, not the timeout


class TestAsClock:
    def test_none_is_the_system_singleton(self):
        assert as_clock(None) is SYSTEM_CLOCK

    def test_clock_passes_through(self):
        clock = VirtualClock()
        assert as_clock(clock) is clock
        system = SystemClock()
        assert as_clock(system) is system

    def test_bare_callable_is_wrapped(self):
        ticks = iter((1.0, 2.0, 3.0))
        wrapped = as_clock(lambda: next(ticks))
        assert isinstance(wrapped, Clock)
        assert wrapped.monotonic() == 1.0
        assert wrapped.monotonic() == 2.0
        # sleep/wait fall back to real implementations without touching
        # the fake monotonic stream.
        wrapped.sleep(0.0)
        assert wrapped.monotonic() == 3.0

    def test_rejects_non_callables(self):
        with pytest.raises(TypeError):
            as_clock(42)


class TestSystemClock:
    def test_monotonic_moves_forward(self):
        clock = SystemClock()
        a = clock.monotonic()
        b = clock.monotonic()
        assert b >= a

    def test_zero_sleep_returns_immediately(self):
        wall = time.perf_counter()
        SystemClock().sleep(0.0)
        assert time.perf_counter() - wall < 0.5
