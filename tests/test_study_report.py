"""Tests for the EXPERIMENTS.md generator."""

import pytest

from repro.study.report import generate_experiments_md


@pytest.fixture(scope="module")
def report(full_study):
    return generate_experiments_md(full_study)


def test_report_has_all_sections(report):
    for heading in (
        "# EXPERIMENTS",
        "## Table 4 / Figure 2",
        "## Section 4 — IDC balanced rating",
        "## Table 5",
        "## Figure 1",
        "## Figures 3-7",
        "## Appendix Tables 6-10",
        "## Ranking quality",
    ):
        assert heading in report, heading


def test_report_claims_all_reproduced(report):
    assert "NOT reproduced" not in report
    assert report.count("reproduced") >= 10


def test_report_covers_every_application(report):
    for app in (
        "AVUS-standard",
        "AVUS-large",
        "HYCOM-standard",
        "OVERFLOW2-standard",
        "RFCTH-standard",
    ):
        assert app in report


def test_report_covers_every_system(report):
    for system in ("ERDC_O3800", "ARL_Opteron", "NAVO_655", "ASC_SC45"):
        assert system in report


def test_report_main_writes_file(tmp_path, full_study, monkeypatch):
    import repro.study.report as R

    # avoid re-running the study: patch run_study to return the fixture
    monkeypatch.setattr(R, "run_study", lambda: full_study)
    out = tmp_path / "EXP.md"
    assert R.main([str(out)]) == 0
    assert out.read_text().startswith("# EXPERIMENTS")
