"""Tests for the set-associative LRU cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import CacheStats, MultiLevelCache, SetAssociativeCache
from repro.memory.streams import strided_addresses

from tests.conftest import make_machine


def test_geometry_validation():
    with pytest.raises(ValueError, match="power of two"):
        SetAssociativeCache(size_bytes=3 * 64 * 4, line_bytes=48)
    with pytest.raises(ValueError):
        SetAssociativeCache(size_bytes=100, line_bytes=64, ways=4)


def test_cold_miss_then_hit():
    c = SetAssociativeCache(4096, line_bytes=64, ways=4)
    assert c.access(0) is False
    assert c.access(8) is True  # same line
    assert c.access(64) is False  # next line
    assert c.hits == 1 and c.misses == 2


def test_working_set_fitting_cache_all_hits_after_warmup():
    c = SetAssociativeCache(4096, line_bytes=64, ways=4)
    addrs = strided_addresses(512, 1, working_set=2048)
    c.simulate(addrs[:256])  # warm
    c.hits = c.misses = 0
    mask = c.simulate(addrs[256:])
    assert mask.all()


def test_lru_eviction_order():
    # direct-mapped-ish: 1 set, 2 ways, 64B lines
    c = SetAssociativeCache(128, line_bytes=64, ways=2)
    c.access(0)      # A
    c.access(64)     # B  (set full)
    c.access(0)      # touch A -> B is LRU
    c.access(128)    # C evicts B
    assert c.access(0) is True     # A still resident
    assert c.access(64) is False   # B was evicted


def test_cyclic_sweep_larger_than_cache_thrashes():
    c = SetAssociativeCache(4096, line_bytes=64, ways=4)
    addrs = strided_addresses(2000, 8, working_set=1 << 20)  # 64B steps, 1 MiB
    mask = c.simulate(addrs)
    assert mask.mean() < 0.05  # LRU + cyclic sweep = almost no reuse


def test_reset_clears_state():
    c = SetAssociativeCache(4096)
    c.access(0)
    c.reset()
    assert c.hits == 0 and c.misses == 0
    assert c.access(0) is False


def test_hit_rate_zero_when_empty():
    c = SetAssociativeCache(4096)
    assert c.hit_rate() == 0.0


def test_multilevel_service_fractions_sum_to_one():
    ml = MultiLevelCache.of(make_machine())
    rng = np.random.default_rng(0)
    addrs = rng.integers(0, 1 << 24, size=3000) * 8
    stats = ml.simulate(addrs)
    fracs = stats.service_fractions()
    assert sum(fracs.values()) == pytest.approx(1.0)
    assert stats.total == 3000


def test_multilevel_small_ws_hits_l1():
    ml = MultiLevelCache.of(make_machine())
    addrs = strided_addresses(4096, 1, working_set=8 * 1024)
    stats = ml.simulate(addrs)
    fracs = stats.service_fractions()
    assert fracs["L1"] > 0.9


def test_multilevel_huge_random_ws_hits_memory():
    ml = MultiLevelCache.of(make_machine())
    rng = np.random.default_rng(1)
    addrs = rng.integers(0, 1 << 32, size=4000) * 8
    stats = ml.simulate(addrs)
    assert stats.service_fractions()["MEM"] > 0.8


def test_multilevel_of_names_match_machine():
    ml = MultiLevelCache.of(make_machine())
    assert ml.names == ["L1", "L2"]


def test_empty_stats_fractions():
    stats = CacheStats(level_names=["L1"], hits=[0], memory_accesses=0, total=0)
    assert stats.service_fractions() == {"L1": 0.0, "MEM": 0.0}


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
def test_hits_plus_misses_equals_accesses(addresses):
    c = SetAssociativeCache(8192, line_bytes=64, ways=2)
    c.simulate(np.asarray(addresses))
    assert c.hits + c.misses == len(addresses)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=2, max_size=200))
def test_immediate_repeat_always_hits(addresses):
    c = SetAssociativeCache(8192, line_bytes=64, ways=2)
    for a in addresses:
        c.access(a)
        assert c.access(a) is True
