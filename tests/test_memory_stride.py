"""Tests for the EMPS-style stride detector."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.streams import random_addresses, strided_addresses
from repro.memory.stride import StrideDetector
from repro.util.rng import stable_rng


@pytest.fixture()
def detector():
    return StrideDetector()


def test_unit_stream_detected(detector):
    report = detector.classify(strided_addresses(4096, 1, working_set=1 << 20))
    assert report.histogram.unit > 0.95


def test_short_stride_detected(detector):
    report = detector.classify(strided_addresses(4096, 4, working_set=1 << 20))
    assert report.histogram.short > 0.95
    assert report.histogram.short_stride_elems == 4


def test_negative_stride_counts_as_unit(detector):
    addrs = strided_addresses(1000, 1, working_set=1 << 16)[::-1].copy()
    report = detector.classify(addrs)
    assert report.histogram.unit > 0.95


def test_random_stream_detected(detector):
    report = detector.classify(random_addresses(4096, 1 << 24, stable_rng("s")))
    assert report.histogram.random > 0.9


def test_stride_beyond_short_max_is_random(detector):
    # stride 16 elements > SHORT_STRIDE_MAX=8 -> random bin
    report = detector.classify(strided_addresses(1024, 16, working_set=1 << 22))
    assert report.histogram.random > 0.95


def test_working_set_estimate_for_strided(detector):
    ws = 1 << 18
    report = detector.classify(strided_addresses(2 * (ws // 8), 1, working_set=ws))
    assert report.working_set_bytes == pytest.approx(ws, rel=0.05)


def test_single_reference_stream(detector):
    report = detector.classify(np.array([4096]))
    assert report.references == 1
    assert report.histogram.unit == 1.0


def test_empty_stream_rejected(detector):
    with pytest.raises(ValueError):
        detector.classify(np.array([], dtype=np.int64))


def test_detector_parameter_validation():
    with pytest.raises(ValueError):
        StrideDetector(element_bytes=0)
    with pytest.raises(ValueError):
        StrideDetector(short_max=1)
    with pytest.raises(ValueError):
        StrideDetector(line_bytes=0)


def test_mixed_stream_fractions(detector):
    unit = strided_addresses(3000, 1, working_set=1 << 20)
    # contiguous concatenation: one transition reference only
    rand = random_addresses(1000, 1 << 24, stable_rng("m"), base=1 << 30)
    report = detector.classify(np.concatenate([unit, rand]))
    assert 0.6 < report.histogram.unit < 0.85
    assert report.histogram.random > 0.15


@settings(max_examples=30, deadline=None)
@given(stride=st.integers(min_value=2, max_value=8))
def test_every_short_stride_recovered(stride):
    detector = StrideDetector()
    report = detector.classify(strided_addresses(512, stride, working_set=1 << 20))
    assert report.histogram.short > 0.9
    assert report.histogram.short_stride_elems == stride


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=2000))
def test_fractions_always_normalised(n):
    detector = StrideDetector()
    report = detector.classify(random_addresses(n, 1 << 22, stable_rng("h", n)))
    h = report.histogram
    assert h.unit + h.short + h.random == pytest.approx(1.0)
