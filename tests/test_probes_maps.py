"""Tests for MAPS / ENHANCED MAPS and NETBENCH probes."""

import numpy as np
import pytest

from repro.machines.registry import get_machine
from repro.network.model import NetworkModel
from repro.probes.maps import default_size_grid, run_maps
from repro.probes.netbench import default_rank_counts, run_netbench
from repro.probes.results import MapsCurve
from repro.util.units import KIB, MIB

from tests.conftest import make_machine


def test_default_grid_geometric():
    grid = default_size_grid(points=10)
    ratios = grid[1:] / grid[:-1]
    np.testing.assert_allclose(ratios, ratios[0])


def test_default_grid_validation():
    with pytest.raises(ValueError):
        default_size_grid(smallest=0)
    with pytest.raises(ValueError):
        default_size_grid(smallest=1024, largest=512)
    with pytest.raises(ValueError):
        default_size_grid(points=1)


def test_maps_curves_monotone_decreasing(test_machine):
    maps = run_maps(test_machine)
    for kind in ("unit", "random", "unit_dep", "random_dep"):
        bws = maps.curve(kind).bandwidths
        assert (np.diff(bws) <= 1e-6).all(), kind


def test_maps_right_edge_matches_stream_and_gups(test_machine):
    """Paper: the lower right of the MAPS curves ~ STREAM and GUPS scores."""
    from repro.probes.gups import run_gups
    from repro.probes.stream import run_stream

    maps = run_maps(test_machine)
    stream = run_stream(test_machine).triad
    gups_bw = run_gups(test_machine).random_bandwidth
    assert maps.unit.main_memory_bandwidth == pytest.approx(stream, rel=0.3)
    assert maps.random.main_memory_bandwidth == pytest.approx(gups_bw, rel=0.3)


def test_maps_dep_below_independent(test_machine):
    maps = run_maps(test_machine)
    assert (maps.unit_dep.bandwidths < maps.unit.bandwidths).all()
    assert (maps.random_dep.bandwidths <= maps.random.bandwidths).all()


def test_curve_lookup_interpolates_and_clamps():
    curve = MapsCurve(
        sizes=np.array([1e4, 1e6, 1e8]), bandwidths=np.array([10e9, 5e9, 1e9])
    )
    assert curve.lookup(1e4) == pytest.approx(10e9)
    assert curve.lookup(1e8) == pytest.approx(1e9)
    assert 5e9 < curve.lookup(1e5) < 10e9
    # clamping outside the measured range
    assert curve.lookup(1e3) == pytest.approx(10e9)
    assert curve.lookup(1e10) == pytest.approx(1e9)
    with pytest.raises(ValueError):
        curve.lookup(0)


def test_curve_validation():
    with pytest.raises(ValueError):
        MapsCurve(sizes=np.array([1e4]), bandwidths=np.array([1e9]))
    with pytest.raises(ValueError, match="increasing"):
        MapsCurve(sizes=np.array([1e6, 1e4]), bandwidths=np.array([1e9, 2e9]))
    with pytest.raises(ValueError):
        MapsCurve(sizes=np.array([1e4, 1e6]), bandwidths=np.array([1e9, -1.0]))


def test_unknown_curve_name(test_machine):
    with pytest.raises(KeyError):
        run_maps(test_machine).curve("diagonal")


def test_maps_cache_plateau_visible():
    """A machine with a big L2 shows a bandwidth step at the L2 boundary."""
    m = make_machine(l2_mib=8, l2_bw=10.0, mem_bw=1.0)
    maps = run_maps(m)
    in_l2 = maps.unit.lookup(1 * MIB)
    in_mem = maps.unit.lookup(512 * MIB)
    assert in_l2 > 4 * in_mem


def test_netbench_fit_recovers_model(test_machine):
    nb = run_netbench(test_machine)
    spec = test_machine.network
    assert nb.latency == pytest.approx(spec.latency, rel=0.3)
    assert nb.bandwidth == pytest.approx(spec.bandwidth, rel=0.1)


def test_netbench_pingpong_consistent(test_machine):
    nb = run_netbench(test_machine)
    model = NetworkModel.of(test_machine)
    np.testing.assert_allclose(
        nb.pingpong_seconds,
        [model.ping_pong(s) for s in nb.pingpong_sizes],
    )


def test_netbench_allreduce_interpolation(test_machine):
    nb = run_netbench(test_machine)
    t64 = nb.allreduce_time(64)
    t90 = nb.allreduce_time(90)
    t128 = nb.allreduce_time(128)
    assert t64 <= t90 <= t128
    assert nb.allreduce_time(1) == 0.0


def test_netbench_payload_beyond_8_bytes_costs_more(test_machine):
    nb = run_netbench(test_machine)
    assert nb.allreduce_time(64, 1 * MIB) > nb.allreduce_time(64, 8.0)


def test_netbench_respects_system_size():
    tiny = make_machine(cpus=8)
    nb = run_netbench(tiny)
    assert nb.allreduce_ranks.max() <= 8


def test_default_rank_counts():
    ranks = default_rank_counts(512)
    assert list(ranks) == [2, 4, 8, 16, 32, 64, 128, 256, 512]
    with pytest.raises(ValueError):
        default_rank_counts(1)
