"""Tests for Equation 2 error statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ErrorSummary, absolute_error, signed_error, summarise


def test_signed_error_signs():
    # prediction faster than actual -> negative (paper convention)
    assert signed_error(50.0, 100.0) == pytest.approx(-50.0)
    # prediction slower -> positive
    assert signed_error(150.0, 100.0) == pytest.approx(50.0)
    assert signed_error(100.0, 100.0) == 0.0


def test_signed_error_validation():
    with pytest.raises(ValueError):
        signed_error(1.0, 0.0)
    with pytest.raises(ValueError):
        signed_error(-1.0, 10.0)


def test_absolute_error():
    assert absolute_error(50.0, 100.0) == pytest.approx(50.0)
    assert absolute_error(150.0, 100.0) == pytest.approx(50.0)


def test_summarise_prevents_cancellation():
    """+50% and -50% must average to 50% absolute, not zero."""
    s = summarise([50.0, -50.0])
    assert s.mean_abs == pytest.approx(50.0)
    assert s.mean_signed == pytest.approx(0.0)
    assert s.count == 2


def test_summarise_std_population():
    s = summarise([10.0, 30.0])
    assert s.std_abs == pytest.approx(10.0)  # ddof=0


def test_summarise_empty_rejected():
    with pytest.raises(ValueError):
        summarise([])


def test_summary_str():
    text = str(summarise([10.0, -20.0]))
    assert "%" in text and "n=2" in text


@given(st.lists(st.floats(min_value=-500, max_value=500), min_size=1, max_size=50))
def test_mean_abs_at_least_abs_mean(errors):
    s = summarise(errors)
    assert s.mean_abs >= abs(s.mean_signed) - 1e-9
    assert s.mean_abs >= 0


@given(
    st.floats(min_value=0.01, max_value=1e6),
    st.floats(min_value=0.01, max_value=1e6),
)
def test_error_zero_iff_exact(predicted, actual):
    err = signed_error(predicted, actual)
    if predicted == actual:
        assert err == 0.0
    else:
        assert (err > 0) == (predicted > actual)
