"""Tests for cooperative deadlines and the shared backoff schedule."""

import math

import pytest

from repro.core.errors import DeadlineExceededError
from repro.util.deadline import Deadline
from repro.util.retry import (
    BACKOFF_BASE_SECONDS,
    BACKOFF_CAP_SECONDS,
    backoff_seconds,
)


class FakeClock:
    """Deterministic monotonic clock for deadline tests (no sleeps)."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
def test_deadline_unbounded_by_default():
    d = Deadline()
    assert d.remaining() == math.inf
    assert not d.expired()
    d.checkpoint("anything")  # never raises


def test_deadline_counts_down_on_injected_clock():
    clock = FakeClock()
    d = Deadline(2.0, clock=clock)
    assert d.remaining() == pytest.approx(2.0)
    clock.advance(1.5)
    assert d.elapsed() == pytest.approx(1.5)
    assert d.remaining() == pytest.approx(0.5)
    assert not d.expired()
    clock.advance(0.5)
    assert d.expired()
    assert d.remaining() == 0.0  # clamped, never negative


def test_deadline_checkpoint_raises_with_stage_label():
    clock = FakeClock()
    d = Deadline(1.0, clock=clock, stage="request")
    clock.advance(2.0)
    with pytest.raises(DeadlineExceededError) as exc_info:
        d.checkpoint("trace")
    assert exc_info.value.stage == "trace"
    # Without an explicit label, the deadline's own stage names the error.
    with pytest.raises(DeadlineExceededError) as exc_info:
        d.checkpoint()
    assert exc_info.value.stage == "request"


def test_deadline_rejects_negative_budget():
    with pytest.raises(ValueError, match="budget_seconds"):
        Deadline(-0.1)


def test_sub_deadline_capped_by_parent_remainder():
    clock = FakeClock()
    parent = Deadline(1.0, clock=clock)
    clock.advance(0.8)
    child = parent.sub(10.0, stage="probe")
    assert child.budget == pytest.approx(0.2)


def test_sub_deadline_can_expire_before_parent():
    clock = FakeClock()
    parent = Deadline(10.0, clock=clock)
    child = parent.sub(0.5, stage="convolve")
    clock.advance(1.0)
    assert child.expired()
    assert not parent.expired()
    with pytest.raises(DeadlineExceededError) as exc_info:
        child.checkpoint()
    assert exc_info.value.stage == "convolve"


def test_sub_deadline_never_outlives_parent():
    clock = FakeClock()
    parent = Deadline(1.0, clock=clock)
    child = parent.sub(1.0)
    grandchild = child.sub(1.0)
    clock.advance(1.0)  # parent spent; children had full nominal budgets
    assert parent.expired()
    assert child.expired()
    assert grandchild.expired()
    assert grandchild.remaining() == 0.0


# ----------------------------------------------------------------------
# backoff (shared by study retries and breaker cooldowns)
# ----------------------------------------------------------------------
def test_backoff_deterministic_per_key():
    assert backoff_seconds(1, "chunk-a") == backoff_seconds(1, "chunk-a")
    assert backoff_seconds(1, "chunk-a") != backoff_seconds(1, "chunk-b")


def test_backoff_grows_then_caps():
    delays = [backoff_seconds(i, "k") for i in range(12)]
    assert all(d > 0 for d in delays)
    # Jittered, so compare against the envelope: 0.5x-1.5x of min(cap, base*2^i).
    for i, d in enumerate(delays):
        nominal = min(BACKOFF_CAP_SECONDS, BACKOFF_BASE_SECONDS * 2**i)
        assert 0.5 * nominal <= d <= 1.5 * nominal
    assert delays[-1] <= 1.5 * BACKOFF_CAP_SECONDS


def test_backoff_custom_base_and_cap():
    d = backoff_seconds(0, "breaker", "trace", base=5.0, cap=160.0)
    assert 2.5 <= d <= 7.5


def test_backoff_rejects_negative_round():
    with pytest.raises(ValueError):
        backoff_seconds(-1, "k")
