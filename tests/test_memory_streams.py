"""Tests for synthetic address-stream generators."""

import numpy as np
import pytest

from repro.memory.streams import (
    pointer_chase_addresses,
    random_addresses,
    strided_addresses,
)
from repro.util.rng import stable_rng


def test_strided_unit_addresses():
    a = strided_addresses(10, 1, element_bytes=8, working_set=1 << 20)
    np.testing.assert_array_equal(np.diff(a), 8)


def test_strided_wraps_at_working_set():
    a = strided_addresses(20, 1, element_bytes=8, working_set=80)  # 10 elements
    assert a.max() < 80
    np.testing.assert_array_equal(a[:10], a[10:])


def test_strided_stride_spacing():
    a = strided_addresses(5, 4, element_bytes=8, working_set=1 << 20)
    np.testing.assert_array_equal(np.diff(a), 32)


def test_strided_base_offset():
    a = strided_addresses(4, 1, working_set=1 << 12, base=4096)
    assert a.min() >= 4096


def test_random_addresses_within_bounds_and_aligned():
    rng = stable_rng("t", 1)
    a = random_addresses(1000, 1 << 16, rng)
    assert a.min() >= 0 and a.max() < (1 << 16)
    assert (a % 8 == 0).all()


def test_random_addresses_deterministic_with_rng():
    a = random_addresses(100, 1 << 16, stable_rng("k"))
    b = random_addresses(100, 1 << 16, stable_rng("k"))
    np.testing.assert_array_equal(a, b)


def test_pointer_chase_visits_all_before_repeat():
    ws_elems = 64
    rng = stable_rng("chase")
    a = pointer_chase_addresses(ws_elems, ws_elems * 8, rng)
    # one full cycle touches every element exactly once
    assert len(np.unique(a)) == ws_elems


def test_pointer_chase_is_cyclic():
    ws_elems = 32
    rng = stable_rng("chase2")
    a = pointer_chase_addresses(2 * ws_elems, ws_elems * 8, rng)
    np.testing.assert_array_equal(a[:ws_elems], a[ws_elems:])


def test_generators_reject_bad_args():
    rng = stable_rng("x")
    with pytest.raises(ValueError):
        strided_addresses(0, 1)
    with pytest.raises(ValueError):
        random_addresses(10, 4, rng)  # working set smaller than one element
    with pytest.raises(ValueError):
        pointer_chase_addresses(0, 1024, rng)
