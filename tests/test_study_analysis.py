"""Tests for study analyses — including the paper's qualitative claims."""

import pytest

from repro.study.analysis import (
    best_predictor_counts,
    case_errors,
    pairwise_win_counts,
    ranking_quality,
    shape_check,
)


def test_fifteen_cases(full_study):
    assert len(case_errors(full_study)) == 15


def test_shape_check_passes(full_study):
    """The paper's qualitative Table 4 claims must reproduce.

    This is the headline assertion of the whole reproduction.
    """
    check = shape_check(full_study)
    assert check.passed, f"shape claims failed: {check.failures()}"


def test_metric9_best_in_most_cases(full_study):
    """Paper: Metric #9 best (or tied) in 10 of 15 cases; require a majority
    of best-or-tied cases for the top predictive metrics."""
    counts = best_predictor_counts(full_study)
    best_metric = max(counts, key=counts.get)
    assert best_metric in (6, 9)
    assert counts.get(9, 0) >= 5


def test_hpl_never_best(full_study):
    counts = best_predictor_counts(full_study)
    assert counts.get(1, 0) == 0
    assert counts.get(4, 0) == 0


def test_gups_beats_stream_in_majority(full_study):
    """Paper: GUPS beat STREAM in 11 of 15 cases; require a majority."""
    outcome = pairwise_win_counts(full_study, 3, 2)
    assert outcome["wins"] > outcome["losses"]


def test_stream_beats_hpl_in_majority(full_study):
    outcome = pairwise_win_counts(full_study, 2, 1)
    assert outcome["wins"] > outcome["losses"]


def test_ranking_quality_improves_with_metric(full_study):
    """Metric #9 must rank systems better than HPL does."""
    hpl = ranking_quality(full_study, 1)
    best = ranking_quality(full_study, 9)
    assert best["kendall_tau"] > hpl["kendall_tau"]
    assert best["kendall_tau"] > 0.5
    assert hpl["cases"] == 15


def test_case_errors_positive(full_study):
    for _case, row in case_errors(full_study).items():
        assert all(v >= 0 for v in row.values())
