"""Additional cross-module property tests (hypothesis).

These pin down the algebra the whole study rests on: Equation 1's ratio
structure, the convolver's monotonicity in rates, and the hierarchy's
consistency between the probe view and the executor view.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import signed_error, summarise
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.patterns import AccessPattern, StrideClass

from tests.conftest import make_machine


@given(
    t_base=st.floats(min_value=1.0, max_value=1e6),
    r_base=st.floats(min_value=1e6, max_value=1e12),
    k=st.floats(min_value=0.1, max_value=10.0),
)
def test_equation1_ratio_algebra(t_base, r_base, k):
    """A target k-times faster than base is predicted k-times quicker."""
    predicted = (r_base / (k * r_base)) * t_base
    assert predicted == pytest.approx(t_base / k)


@given(
    errors=st.lists(
        st.floats(min_value=-400.0, max_value=400.0), min_size=2, max_size=40
    ),
    shift=st.floats(min_value=-50.0, max_value=50.0),
)
def test_error_summary_bias_shifts_linearly(errors, shift):
    """Adding a constant bias to every signed error moves the mean signed
    error by exactly that constant."""
    a = summarise(errors)
    b = summarise([e + shift for e in errors])
    assert b.mean_signed == pytest.approx(a.mean_signed + shift, abs=1e-9)


@given(
    actual=st.floats(min_value=0.01, max_value=1e6),
    scale=st.floats(min_value=0.01, max_value=100.0),
)
def test_signed_error_scale_invariant(actual, scale):
    """Equation 2 is dimensionless: rescaling both times changes nothing."""
    predicted = actual * 1.37
    assert signed_error(predicted * scale, actual * scale) == pytest.approx(
        signed_error(predicted, actual), rel=1e-9
    )


@settings(max_examples=30)
@given(
    ws=st.floats(min_value=8192, max_value=2**33),
    factor=st.floats(min_value=1.1, max_value=8.0),
)
def test_hierarchy_bandwidth_scales_with_uniform_speedup(ws, factor):
    """Scaling every level's bandwidth and latency by k scales every
    pattern's achieved bandwidth by k (the invariance the Equation 1
    anchoring exploits)."""
    machine = make_machine()
    fast_levels = tuple(
        dataclasses.replace(
            lvl, bandwidth=lvl.bandwidth * factor, latency=lvl.latency / factor
        )
        for lvl in machine.memory_levels
    )
    base = MemoryHierarchy(machine.memory_levels)
    fast = MemoryHierarchy(fast_levels)
    for stride in (StrideClass.UNIT, StrideClass.RANDOM):
        for dependent in (False, True):
            p = AccessPattern(working_set=ws, stride=stride, dependent=dependent)
            assert fast.effective_bandwidth(p) == pytest.approx(
                base.effective_bandwidth(p) * factor, rel=1e-9
            )


@settings(max_examples=30)
@given(ws=st.floats(min_value=8192, max_value=2**33))
def test_maps_probe_agrees_with_hierarchy(ws):
    """The MAPS curve is an honest sampling of the hierarchy surface: a
    lookup between grid points lies between the neighbouring true values."""
    from repro.probes.maps import run_maps

    machine = make_machine()
    maps = run_maps(machine)
    hierarchy = MemoryHierarchy.of(machine)
    truth = hierarchy.effective_bandwidth(AccessPattern(working_set=ws))
    measured = maps.unit.lookup(ws)
    # interpolation error is bounded by the step between adjacent samples
    assert measured == pytest.approx(truth, rel=0.35)


@settings(max_examples=20)
@given(
    counts=st.tuples(
        st.floats(min_value=10, max_value=1e4),
        st.floats(min_value=10, max_value=1e4),
    )
)
def test_convolver_additive_over_blocks(counts, base_machine, opteron_probes):
    """Convolved compute of a two-block trace equals the sum of its
    single-block halves (block independence, as the paper's convolver)."""
    from repro.core.convolver import Convolver, MemoryModel
    from repro.memory.patterns import StrideHistogram
    from repro.tracing.trace import ApplicationTrace, BlockTrace

    def block(name, n):
        return BlockTrace(
            name=name,
            fp_ops=n * 100,
            loads=n * 10,
            stores=n,
            stride=StrideHistogram(unit=0.8, short=0.1, random=0.1),
            working_set=1 << 22,
            dependency_weight=0.5,
        )

    def trace(blocks):
        return ApplicationTrace(
            application="T",
            cpus=4,
            base_machine=base_machine.name,
            timesteps=3,
            blocks=blocks,
            comm=(),
            sample_size=64,
        )

    conv = Convolver(MemoryModel.MAPS_DEP)
    a, b = (block(f"b{i}", n) for i, n in enumerate(counts))
    combined = conv.predict(trace((a, b)), opteron_probes).compute_seconds
    separate = (
        conv.predict(trace((a,)), opteron_probes).compute_seconds
        + conv.predict(trace((b,)), opteron_probes).compute_seconds
    )
    assert combined == pytest.approx(separate, rel=1e-9)
