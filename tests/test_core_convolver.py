"""Tests for the MetaSim Convolver."""

import pytest

from repro.apps.suite import get_application
from repro.core.convolver import Convolver, MemoryModel
from repro.machines.registry import BASE_SYSTEM, get_machine
from repro.probes.suite import probe_machine
from repro.tracing.metasim import trace_application


@pytest.fixture(scope="module")
def trace():
    return trace_application(
        get_application("AVUS-standard"), 64, get_machine(BASE_SYSTEM)
    )


@pytest.fixture(scope="module")
def probes():
    return probe_machine(get_machine("NAVO_655"))


def test_memory_model_none_is_fp_only(trace, probes):
    conv = Convolver(MemoryModel.NONE)
    result = conv.predict(trace, probes)
    expected = trace.total_fp / probes.hpl.rmax_flops
    assert result.compute_seconds == pytest.approx(expected)
    assert result.comm_seconds == 0.0


def test_memory_models_monotone_cost(trace, probes):
    """Richer memory models price random/dependent traffic as slower."""
    t = {
        model: Convolver(model).predict(trace, probes).compute_seconds
        for model in MemoryModel
    }
    assert t[MemoryModel.NONE] < t[MemoryModel.STREAM]
    # pricing random refs at GUPS must cost more than pricing them at STREAM
    assert t[MemoryModel.STREAM] < t[MemoryModel.STREAM_GUPS]
    # dependency curves can only slow the estimate further
    assert t[MemoryModel.MAPS] <= t[MemoryModel.MAPS_DEP]


def test_network_term_adds_comm(trace, probes):
    without = Convolver(MemoryModel.MAPS, network=False).predict(trace, probes)
    with_net = Convolver(MemoryModel.MAPS, network=True).predict(trace, probes)
    assert without.comm_seconds == 0.0
    assert with_net.comm_seconds > 0.0
    assert with_net.compute_seconds == pytest.approx(without.compute_seconds)
    assert with_net.total_seconds > without.total_seconds


def test_block_predictions_cover_trace(trace, probes):
    result = Convolver(MemoryModel.MAPS).predict(trace, probes)
    assert [b.name for b in result.blocks] == [b.name for b in trace.blocks]
    for b in result.blocks:
        assert b.seconds >= max(b.fp_seconds, b.mem_seconds) - 1e-12
        assert b.seconds <= b.fp_seconds + b.mem_seconds + 1e-12


def test_overlap_bounds_effect(trace, probes):
    full = Convolver(MemoryModel.MAPS, overlap=1.0).predict(trace, probes)
    none = Convolver(MemoryModel.MAPS, overlap=0.0).predict(trace, probes)
    assert full.compute_seconds < none.compute_seconds


def test_overlap_validation():
    with pytest.raises(ValueError):
        Convolver(MemoryModel.MAPS, overlap=1.5)


def test_faster_machine_predicts_faster(trace):
    slow = probe_machine(get_machine("NAVO_P3"))
    fast = probe_machine(get_machine("NAVO_655"))
    conv = Convolver(MemoryModel.STREAM_GUPS)
    assert (
        conv.predict(trace, fast).compute_seconds
        < conv.predict(trace, slow).compute_seconds
    )


def test_convolver_identity_fields(trace, probes):
    result = Convolver(MemoryModel.MAPS).predict(trace, probes)
    assert result.machine == "NAVO_655"
    assert result.application == "AVUS-standard"
    assert result.cpus == 64


def test_dep_model_uses_dependency_weight(trace, probes):
    """Blocks flagged BOUND must be priced strictly slower under MAPS_DEP."""
    conv_plain = Convolver(MemoryModel.MAPS)
    conv_dep = Convolver(MemoryModel.MAPS_DEP)
    bound = [b for b in trace.blocks if b.dependency_weight == 1.0]
    assert bound, "expected a dependency-bound block in AVUS"
    for block in bound:
        plain = conv_plain.predict_block(block, probes)
        dep = conv_dep.predict_block(block, probes)
        assert dep.mem_seconds > plain.mem_seconds


def test_memory_model_accepts_string():
    conv = Convolver("stream+gups")
    assert conv.memory_model is MemoryModel.STREAM_GUPS
