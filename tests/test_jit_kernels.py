"""The REPRO_JIT knob and the numpy/loops kernel twins.

The hot kernels exist in two forms — a NumPy ufunc chain and an
explicit-loop twin suitable for numba's ``njit`` — that must perform the
same IEEE-754 operations in the same order.  These tests pin the twins
bit-for-bit, and pin the knob's degradation contract: ``REPRO_JIT=numba``
without a numba install warns once and runs the NumPy chains, never
erroring and never moving a bit.  ``scripts/check_jit.py`` repeats the
identity check cross-process in CI.
"""

import logging

import numpy as np
import pytest

from repro.core import kernels
from repro.util import jit
from repro.util.rng import stable_rng


@pytest.fixture(autouse=True)
def _pristine_backend():
    """Every test leaves the process-wide backend decision as it found it."""
    yield
    jit.refresh()
    kernels.refresh()


def _operands(combos=6, runs=3, blocks=5, levels=4):
    rng = stable_rng("jit-twins", combos, runs, blocks, levels)
    residency = rng.random((runs, blocks, levels))
    level_bw = rng.random((combos, blocks, levels)) + 0.25
    return residency, level_bw


def test_accumulate_twins_are_bitwise_identical():
    residency, level_bw = _operands()
    a = kernels._accumulate_time_per_byte_numpy(residency, level_bw)
    b = kernels._accumulate_time_per_byte_loops(residency, level_bw)
    assert a.shape == b.shape == (6, 3, 5)
    np.testing.assert_array_equal(a, b)


def test_combine_twins_are_bitwise_identical():
    rng = stable_rng("combine-twins")
    t_fp = rng.random((4, 7))
    t_mem = rng.random((4, 7))
    for overlap in (0.0, 0.5, 1.0):
        a = kernels._combine_overlap_numpy(t_fp, t_mem, overlap)
        b = kernels._combine_overlap_loops(t_fp, t_mem, overlap)
        np.testing.assert_array_equal(a, b)


def test_jit_off_values_select_numpy(monkeypatch):
    for value in ("", "0", "off", "none", "numpy"):
        monkeypatch.setenv(jit.ENV_VAR, value)
        jit.refresh()
        assert jit.active_backend() == ""


def test_numba_request_without_numba_warns_and_falls_back(monkeypatch, caplog):
    try:
        import numba  # noqa: F401

        pytest.skip("numba installed: the fallback path is unreachable")
    except ImportError:
        pass
    monkeypatch.setenv(jit.ENV_VAR, "numba")
    jit.refresh()
    kernels.refresh()
    with caplog.at_level(logging.WARNING, logger="repro.util.jit"):
        assert jit.active_backend() == ""
    assert "numba is unavailable" in caplog.text
    # the warning fires once per process, not per kernel call
    caplog.clear()
    residency, level_bw = _operands()
    got = kernels.accumulate_time_per_byte(residency, level_bw)
    expected = kernels._accumulate_time_per_byte_numpy(residency, level_bw)
    np.testing.assert_array_equal(got, expected)
    assert caplog.text == ""


def test_unknown_backend_warns_and_falls_back(monkeypatch, caplog):
    monkeypatch.setenv(jit.ENV_VAR, "cuda")
    jit.refresh()
    with caplog.at_level(logging.WARNING, logger="repro.util.jit"):
        assert jit.active_backend() == ""
    assert "unknown REPRO_JIT backend" in caplog.text


def test_public_kernels_match_numpy_twins_under_default_backend():
    residency, level_bw = _operands()
    np.testing.assert_array_equal(
        kernels.accumulate_time_per_byte(residency, level_bw),
        kernels._accumulate_time_per_byte_numpy(residency, level_bw),
    )
    t_fp = residency.sum(axis=2)[None].repeat(2, axis=0).reshape(2 * 3, 5)
    t_mem = t_fp[::-1].copy()
    np.testing.assert_array_equal(
        kernels.combine_overlap(t_fp, t_mem, 0.75),
        kernels._combine_overlap_numpy(t_fp, t_mem, 0.75),
    )


def test_refresh_drops_compiled_kernels(monkeypatch):
    residency, level_bw = _operands()
    kernels.accumulate_time_per_byte(residency, level_bw)  # populate memo
    assert kernels._compiled
    kernels.refresh()
    assert not kernels._compiled
    # and the backend decision is re-evaluated after a refresh
    monkeypatch.setenv(jit.ENV_VAR, "numpy")
    jit.refresh()
    assert jit.active_backend() == ""
