"""Tests for the deterministic key-derived RNG."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import stable_rng, stable_seed


def test_same_keys_same_seed():
    assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)


def test_different_keys_different_seed():
    assert stable_seed("a") != stable_seed("b")


def test_key_boundaries_matter():
    # ("ab", "c") must not collide with ("a", "bc")
    assert stable_seed("ab", "c") != stable_seed("a", "bc")


def test_order_matters():
    assert stable_seed("x", "y") != stable_seed("y", "x")


def test_seed_in_64bit_range():
    s = stable_seed("anything", 42)
    assert 0 <= s < 2**64


def test_rng_reproducible_streams():
    a = stable_rng("noise", "sys", 1).normal(size=10)
    b = stable_rng("noise", "sys", 1).normal(size=10)
    np.testing.assert_array_equal(a, b)


def test_rng_independent_streams():
    a = stable_rng("noise", "sys", 1).normal(size=10)
    b = stable_rng("noise", "sys", 2).normal(size=10)
    assert not np.array_equal(a, b)


@given(st.lists(st.one_of(st.text(), st.integers(), st.floats(allow_nan=False)), max_size=5))
def test_seed_is_pure_function_of_keys(keys):
    assert stable_seed(*keys) == stable_seed(*keys)


@given(st.text(min_size=1), st.text(min_size=1))
def test_distinct_single_string_keys_rarely_collide(a, b):
    if a != b:
        assert stable_seed(a) != stable_seed(b)
