"""Tests for ablation variants."""

import pytest

from repro.study.ablation import ABLATIONS, run_ablation
from repro.study.runner import StudyConfig

#: A reduced configuration so ablations stay fast in CI.
SMALL = StudyConfig(
    applications=("AVUS-standard", "RFCTH-standard"),
    systems=("ARL_Opteron", "NAVO_655", "NAVO_P3"),
)


def test_unknown_ablation():
    with pytest.raises(KeyError, match="known"):
        run_ablation("no_gravity")


def test_baseline_matches_named_config():
    out = run_ablation("baseline", SMALL)
    assert out.name == "baseline"
    assert sorted(out.errors) == list(range(1, 10))


def test_no_noise_reduces_best_metric_error():
    """Noise contributes a floor that metric #9 pays; removing it helps."""
    base = run_ablation("baseline", SMALL)
    clean = run_ablation("no_noise", SMALL)
    assert clean.errors[9] < base.errors[9]


def test_delta_from():
    base = run_ablation("baseline", SMALL)
    clean = run_ablation("no_noise", SMALL)
    delta = clean.delta_from(base)
    assert delta[9] == pytest.approx(clean.errors[9] - base.errors[9])


def test_absolute_mode_worse_for_predictive_metrics():
    """Dropping the Equation 1 anchor exposes the convolver's absolute bias."""
    base = run_ablation("baseline", SMALL)
    absolute = run_ablation("absolute_mode", SMALL)
    # metric 4 (FP-only) collapses without the base anchor
    assert absolute.errors[4] > base.errors[4]


def test_ablation_registry_contents():
    assert {
        "baseline",
        "no_noise",
        "absolute_mode",
        "coarse_tracing",
        "fine_tracing",
        "alternate_base",
    } <= set(ABLATIONS)


def test_alternate_base_predicts_itself_exactly():
    """Anchoring on the p655 makes its own predictions exact (error ~ 0)."""
    out = run_ablation("alternate_base", SMALL)
    errs = out.result.errors(metric=9, system="NAVO_655")
    assert errs and max(abs(e) for e in errs) < 1e-6
