"""Tests for the resilient prediction service: validation, degradation,
deadlines, chaos, and recovery — all on an injectable clock, no sleeps."""

import math

import pytest

from repro.core.errors import (
    OverloadedError,
    ServiceUnavailableError,
    UnknownIdError,
)
from repro.core.metrics import ALL_METRICS
from repro.core.predictor import PerformancePredictor
from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import BreakerBoard
from repro.serve.degrade import LADDER, ladder_for, stages_for
from repro.serve.service import PredictionService
from repro.util.faults import FaultPlan


class FakeClock:
    """Monotonic clock + sleeper pair for deterministic chaos tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_service(clock=None, **kw):
    """A noise-free service; pass a FakeClock for chaos scenarios."""
    defaults = dict(noise=False)
    if clock is not None:
        defaults.update(clock=clock, sleep=clock.sleep)
        defaults.setdefault(
            "breakers",
            BreakerBoard(clock=clock, failure_threshold=1, cooldown_seconds=5.0),
        )
        defaults.setdefault("admission", AdmissionQueue(clock=clock))
    defaults.update(kw)
    return PredictionService(**defaults)


# ----------------------------------------------------------------------
# degradation ladder shape
# ----------------------------------------------------------------------
def test_ladder_descends_from_requested():
    assert ladder_for(9) == (9, 7, 5, 3, 1)
    assert ladder_for(8) == (8, 7, 5, 3, 1)
    assert ladder_for(3) == (3, 1)
    assert ladder_for(1) == (1,)
    with pytest.raises(KeyError):
        ladder_for(10)


def test_stages_split_simple_vs_predictive():
    for metric in ALL_METRICS:
        stages = stages_for(metric)
        if metric <= 3:
            assert stages == ("probe",)
        else:
            assert stages == ("probe", "trace", "convolve")
    assert set(LADDER) <= set(ALL_METRICS)


# ----------------------------------------------------------------------
# validation (the 400 surface)
# ----------------------------------------------------------------------
def test_unknown_application_names_nearest():
    svc = make_service()
    with pytest.raises(UnknownIdError) as exc_info:
        svc.predict("AVUS-standrad", 64, "ARL_Xeon")
    err = exc_info.value
    assert err.kind == "application"
    assert "AVUS-standard" in err.nearest
    assert "AVUS-standard" in str(err)


def test_unknown_machine_and_metric():
    svc = make_service()
    with pytest.raises(UnknownIdError) as exc_info:
        svc.predict("AVUS-standard", 64, "ARL_Xeno")
    assert exc_info.value.kind == "machine"
    assert "ARL_Xeon" in exc_info.value.nearest
    with pytest.raises(UnknownIdError) as exc_info:
        svc.predict("AVUS-standard", 64, "ARL_Xeon", 12)
    assert exc_info.value.kind == "metric"
    with pytest.raises(UnknownIdError):
        svc.predict("AVUS-standard", 64, "ARL_Xeon", "lots")


def test_structural_errors_are_value_errors():
    svc = make_service()
    with pytest.raises(ValueError, match="cpus must be > 0"):
        svc.predict("AVUS-standard", 0, "ARL_Xeon")
    with pytest.raises(ValueError, match="exceeds"):
        svc.predict("AVUS-standard", 100000, "ARL_Xeon")
    with pytest.raises(ValueError, match="replica"):
        svc.predict("AVUS-standard@x", 64, "ARL_Xeon")
    with pytest.raises(ValueError, match="deadline"):
        svc.predict("AVUS-standard", 64, "ARL_Xeon", deadline_seconds=0.0)


# ----------------------------------------------------------------------
# healthy serving
# ----------------------------------------------------------------------
def test_serves_requested_metric_when_healthy():
    svc = make_service()
    for metric in (1, 3, 5, 9):
        served = svc.predict("AVUS-standard", 64, "ARL_Xeon", metric)
        assert served.served_metric == metric
        assert not served.degraded
        assert served.predicted_seconds > 0
        assert served.attempts == ()
    assert svc.health()["requests"]["degraded"] == 0


def test_predictions_match_offline_pipeline():
    """The service answers with the same numbers the study computes."""
    svc = make_service()
    served = svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)
    offline = PerformancePredictor(noise=False).predict_row(
        "AVUS-standard", "ARL_Xeon", 64
    )
    assert served.predicted_seconds == pytest.approx(offline[9], rel=1e-12)


def test_replica_labels_serve():
    svc = make_service()
    served = svc.predict("AVUS-standard@2", 64, "ARL_Xeon", 5)
    assert served.application == "AVUS-standard@2"
    assert served.served_metric == 5


# ----------------------------------------------------------------------
# chaos: the acceptance scenario
# ----------------------------------------------------------------------
def chaos_service(clock, **kw):
    """Service whose convolve stage always stalls past its 0.1s slice."""
    plan = FaultPlan(seed=7, stall_rate=1.0, stall_seconds=0.5)
    return make_service(
        clock,
        faults=plan,
        fault_stages=("convolve",),
        default_deadline=2.0,
        stage_timeouts={"convolve": 0.1},
        **kw,
    )


def test_stalled_convolve_degrades_within_deadline():
    clock = FakeClock()
    svc = chaos_service(clock)
    served = svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)
    # Answered inside the deadline with a laddered, marked metric.
    assert served.latency_seconds < 2.0
    assert served.degraded
    assert served.served_metric < served.requested_metric
    assert served.served_metric in (3, 1)  # simple rungs skip convolve
    # The first rung lost its stage slice to the stall; with threshold 1
    # the breaker opened, so later convolve rungs were skipped unentered.
    assert served.attempts[0].error == "DeadlineExceededError"
    assert served.attempts[0].stage == "convolve"
    assert [a.error for a in served.attempts[1:]] == ["CircuitOpenError"] * (
        len(served.attempts) - 1
    )
    assert svc.breakers["convolve"].state == "open"


def test_open_breaker_fails_fast_without_stall():
    clock = FakeClock()
    svc = chaos_service(clock)
    svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)  # trips the breaker
    before = clock.now
    served = svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)
    # No stage was entered: the fake clock did not move at all.
    assert clock.now == before
    assert served.degraded and served.latency_seconds == 0.0


def test_recovers_within_one_half_open_window():
    clock = FakeClock()
    svc = chaos_service(clock)
    svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)
    assert svc.breakers["convolve"].state == "open"
    svc.faults = None  # the outage ends
    clock.advance(5.0)  # exactly one cooldown: open -> half-open
    served = svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)
    # The half-open probe succeeded: full fidelity restored immediately.
    assert not served.degraded
    assert served.served_metric == 9
    assert svc.breakers["convolve"].state == "closed"
    assert svc.health()["status"] == "ok"


def test_chaos_run_is_deterministic():
    results = []
    for _ in range(2):
        clock = FakeClock()
        svc = chaos_service(clock)
        served = [
            svc.predict("AVUS-standard", 64, "ARL_Xeon", 9).to_dict()
            for _ in range(4)
        ]
        results.append(served)
    assert results[0] == results[1]


def test_crashing_probe_exhausts_ladder():
    clock = FakeClock()
    plan = FaultPlan(seed=3, crash_rate=1.0)
    svc = make_service(
        clock,
        faults=plan,
        fault_stages=("probe",),
        breakers=BreakerBoard(
            clock=clock, failure_threshold=100, cooldown_seconds=5.0
        ),
    )
    with pytest.raises(ServiceUnavailableError) as exc_info:
        svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)
    assert "WorkerCrashError" in str(exc_info.value)
    assert svc.health()["requests"]["unserved"] == 1


def test_all_rungs_skipped_when_probe_breaker_open():
    clock = FakeClock()
    svc = make_service(clock)
    svc.breakers["probe"].record_failure()  # threshold 1: open
    with pytest.raises(ServiceUnavailableError) as exc_info:
        svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)
    assert exc_info.value.retry_after == pytest.approx(5.0)


# ----------------------------------------------------------------------
# deadline pressure without faults
# ----------------------------------------------------------------------
def test_tiny_budget_serves_from_warm_caches_on_fake_clock():
    """Cache hits cost zero fake-clock time, so any unspent budget serves."""
    clock = FakeClock()
    svc = make_service(clock)
    svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)  # warm probe/trace caches
    served = svc.predict(
        "AVUS-standard", 64, "ARL_Xeon", 9, deadline_seconds=1e-9
    )
    assert served.served_metric == 9


def test_spent_budget_rejects_without_poisoning_breakers():
    """A request that outlives its own deadline gets 503, and the healthy
    backends absorb no breaker failures for it."""
    clock = FakeClock()
    svc = make_service(clock)
    svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)

    real_probe = svc._probe_bundle

    def slow_probe(app, cpus, target, d):
        clock.advance(1.0)  # the whole request budget, inside the stage
        return real_probe(app, cpus, target, d)

    svc._probe_bundle = slow_probe
    with pytest.raises(ServiceUnavailableError):
        svc.predict(
            "AVUS-standard", 64, "ARL_Xeon", 9, deadline_seconds=0.5
        )
    # One genuine overrun failed the probe stage once (threshold is 1 in
    # make_service, so it opened); the later rungs were budget-starved and
    # must not have recorded further failures or calls.
    assert svc.breakers["probe"].snapshot()["times_opened"] == 1
    assert svc.breakers["trace"].state == "closed"
    assert svc.breakers["convolve"].state == "closed"


# ----------------------------------------------------------------------
# backpressure
# ----------------------------------------------------------------------
def test_sheds_when_admission_full():
    svc = make_service(admission=AdmissionQueue(max_concurrent=1, max_queue=0))
    svc.admission.acquire()  # occupy the only slot
    try:
        with pytest.raises(OverloadedError) as exc_info:
            svc.predict("AVUS-standard", 64, "ARL_Xeon", 1)
        assert exc_info.value.retry_after > 0
    finally:
        svc.admission.release(0.01)
    # Validation rejects before admission: bad requests don't count as shed.
    shed_before = svc.admission.depth()["shed_total"]
    svc.admission.acquire()
    try:
        with pytest.raises(UnknownIdError):
            svc.predict("nope", 64, "ARL_Xeon", 1)
    finally:
        svc.admission.release(0.01)
    assert svc.admission.depth()["shed_total"] == shed_before


# ----------------------------------------------------------------------
# health surfaces
# ----------------------------------------------------------------------
def test_health_and_ready_reflect_breakers():
    clock = FakeClock()
    svc = make_service(clock)
    ok, body = svc.ready()
    assert ok and body["ready"] and body["open_breakers"] == []
    assert svc.health()["status"] == "ok"
    svc.breakers["trace"].record_failure()
    ok, body = svc.ready()
    assert not ok
    assert body["open_breakers"] == ["trace"]
    health = svc.health()
    assert health["status"] == "degraded"
    assert health["breakers"]["trace"]["state"] == "open"
    assert health["store"] == {"enabled": False, "invalidated": 0}


def test_health_reports_store_invalidations(tmp_path):
    svc = make_service(store=str(tmp_path))
    svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)
    health = svc.health()
    assert health["store"]["enabled"]
    assert health["store"]["invalidated"] == 0


def test_trace_lru_hits_and_misses(tmp_path):
    svc = make_service(store=str(tmp_path), trace_cache_size=4)
    svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)
    first = svc.health()["trace_cache"]
    assert first["misses"] == 1 and first["hits"] == 0 and first["size"] == 1
    # same (application, cpus) again: served from the LRU, disk untouched
    svc.predict("AVUS-standard", 64, "ARL_Opteron", 9)
    second = svc.health()["trace_cache"]
    assert second["hits"] == 1 and second["misses"] == 1


def test_trace_lru_repeat_query_skips_disk(tmp_path, monkeypatch):
    svc = make_service(store=str(tmp_path), trace_cache_size=4)
    svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)

    def no_disk(*args, **kwargs):  # any store read after warm-up is a bug
        raise AssertionError("store was touched on a warm query")

    monkeypatch.setattr(svc.store, "load_trace", no_disk)
    monkeypatch.setattr(svc.store, "save_trace", no_disk)
    resp = svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)
    assert resp.served_metric == 9


def test_trace_lru_bounded_with_evictions(tmp_path):
    svc = make_service(store=str(tmp_path), trace_cache_size=1)
    svc.predict("AVUS-standard", 32, "ARL_Xeon", 9)
    svc.predict("AVUS-standard", 64, "ARL_Xeon", 9)  # evicts cpus=32
    counters = svc.health()["trace_cache"]
    assert counters["size"] == 1 and counters["max_size"] == 1
    assert counters["evictions"] == 1
    # the evicted entry re-reads from the store: a miss, not a hit
    svc.predict("AVUS-standard", 32, "ARL_Xeon", 9)
    assert svc.health()["trace_cache"]["misses"] == 3


def test_trace_cache_size_validated():
    with pytest.raises(ValueError):
        PredictionService(trace_cache_size=0)


def test_service_constructor_validation():
    with pytest.raises(ValueError):
        PredictionService(mode="sideways")
    with pytest.raises(UnknownIdError):
        PredictionService(base_system="NAVO_999")
    with pytest.raises(ValueError):
        PredictionService(default_deadline=0.0)
    with pytest.raises(ValueError):
        PredictionService(stage_fraction=0.0)
    with pytest.raises(ValueError, match="stage_timeouts"):
        PredictionService(stage_timeouts={"cook": 1.0})
