"""Tests for the parallel/persistent study engine and its caches."""

import numpy as np
import pytest

from repro.apps.suite import APPLICATIONS
from repro.probes.suite import probe_machine
from repro.study.runner import StudyConfig, run_study
from repro.tracing.metasim import trace_application
from repro.tracing.store import TraceStore

from tests.conftest import make_machine

REDUCED = StudyConfig(
    applications=("RFCTH-standard", "HYCOM-standard"),
    systems=("ARL_Opteron", "NAVO_P3", "NAVO_655"),
)


# ---------------------------------------------------------------------------
# parallel fan-out
# ---------------------------------------------------------------------------


def test_parallel_study_byte_identical_to_serial():
    serial = run_study(REDUCED)
    # REDUCED sits under PARALLEL_MIN_CELLS; force the pool path.
    parallel = run_study(REDUCED, workers=4, min_parallel_cells=0)
    assert parallel.records == serial.records
    assert parallel.observed == serial.observed
    # dataclass equality is float equality; pin bit-identity explicitly too
    assert all(
        a.predicted_seconds.hex() == b.predicted_seconds.hex()
        and a.actual_seconds.hex() == b.actual_seconds.hex()
        for a, b in zip(serial.records, parallel.records)
    )


def test_parallel_record_order_is_canonical():
    result = run_study(REDUCED, workers=2, min_parallel_cells=0)
    keys = [(r.application, r.system, r.cpus, r.metric) for r in result.records]
    by_app = [k[0] for k in keys]
    assert by_app == sorted(by_app, key=list(REDUCED.applications).index)


def test_small_matrix_stays_serial_despite_workers(monkeypatch):
    """Below the crossover floor, workers=N must not pay pool overhead."""
    import repro.study.runner as runner_mod

    def boom(*a, **k):  # pragma: no cover - failure path
        raise AssertionError("pool must not be created for a small matrix")

    monkeypatch.setattr(runner_mod, "_get_pool", boom)
    result = run_study(REDUCED, workers=4)  # REDUCED < PARALLEL_MIN_CELLS cells
    assert result.n_predictions > 0
    assert "convolve" in result.stage_seconds


def test_stage_seconds_reported_on_both_paths():
    serial = run_study(REDUCED)
    parallel = run_study(REDUCED, workers=2, min_parallel_cells=0)
    for result in (serial, parallel):
        assert set(result.stage_seconds) >= {"probe", "trace", "execute", "convolve"}
        assert all(v >= 0.0 for v in result.stage_seconds.values())


# ---------------------------------------------------------------------------
# persistent store
# ---------------------------------------------------------------------------


def test_store_round_trip_preserves_study_output(tmp_path):
    cold = run_study(REDUCED, store=tmp_path)
    warm = run_study(REDUCED, store=tmp_path)
    assert warm.records == cold.records
    assert list(tmp_path.joinpath("traces").iterdir())
    assert list(tmp_path.joinpath("probes").iterdir())


def test_store_trace_round_trip_is_exact(tmp_path, base_machine, avus):
    store = TraceStore(tmp_path)
    computed = trace_application(avus, 64, base_machine, use_cache=False, store=store)
    loaded = store.load_trace(avus.label, 64, base_machine.name, computed.sample_size, False)
    assert loaded == computed


def test_store_probes_round_trip_is_exact(tmp_path, base_machine):
    store = TraceStore(tmp_path)
    computed = probe_machine(base_machine, use_cache=False, store=store)
    loaded = store.load_probes(base_machine)
    assert loaded is not None
    assert loaded.machine == computed.machine
    np.testing.assert_array_equal(loaded.maps.unit.bandwidths, computed.maps.unit.bandwidths)
    assert loaded.hpl == computed.hpl


def test_store_tolerates_corrupt_files(tmp_path, base_machine, avus):
    store = TraceStore(tmp_path)
    trace_application(avus, 64, base_machine, use_cache=False, store=store)
    store.flush()  # writes are deferred; land them before damaging the files
    for f in tmp_path.joinpath("traces").iterdir():
        f.write_text("{not json")
    assert store.load_trace(avus.label, 64, base_machine.name, 4096, False) is None


# ---------------------------------------------------------------------------
# probe cache staleness (regression: _CACHE was keyed by name alone)
# ---------------------------------------------------------------------------


def test_probe_cache_distinguishes_mutated_specs_sharing_a_name():
    slow = make_machine(name="SAME_NAME", clock_ghz=1.0)
    fast = make_machine(name="SAME_NAME", clock_ghz=4.0)
    p_slow = probe_machine(slow)
    p_fast = probe_machine(fast)
    assert p_fast.hpl.rmax_flops > p_slow.hpl.rmax_flops
    # identical spec still hits the cache
    assert probe_machine(make_machine(name="SAME_NAME", clock_ghz=1.0)) is p_slow


def test_fingerprint_tracks_content_not_name():
    a = make_machine(name="X")
    b = make_machine(name="X")
    c = make_machine(name="X", mem_bw=9.9)
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()


# ---------------------------------------------------------------------------
# indexed select
# ---------------------------------------------------------------------------


def _linear_select(result, **filters):
    out = []
    for rec in result.records:
        if all(getattr(rec, k) == v for k, v in filters.items()):
            out.append(rec)
    return out


@pytest.mark.parametrize(
    "filters",
    [
        {},
        {"metric": 5},
        {"system": "ARL_Opteron"},
        {"metric": 9, "system": "NAVO_P3"},
        {"metric": 1, "application": "RFCTH-standard", "cpus": 16},
        {"metric": 2, "system": "nope"},
        {"cpus": 123456},
    ],
)
def test_indexed_select_matches_linear_scan(full_study, filters):
    assert full_study.select(**filters) == _linear_select(full_study, **filters)


def test_select_index_rebuilds_after_mutation(full_study):
    import copy

    result = copy.deepcopy(full_study)
    result.select(metric=1)  # build the index
    extra = result.records[0]
    result.records.append(extra)
    recs = result.select(metric=extra.metric, system=extra.system, cpus=extra.cpus,
                         application=extra.application)
    assert recs == [extra, extra]


# ---------------------------------------------------------------------------
# StudyConfig validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "field, value, fragment",
    [
        ("applications", ("NoSuchApp-bogus",), "NoSuchApp-bogus"),
        ("systems", ("ARL_Opteron", "HAL9000"), "HAL9000"),
        ("base_system", "HAL9000", "HAL9000"),
        ("metrics", (1, 42), "42"),
        ("mode", "sideways", "sideways"),
        ("cache_model", "psychic", "psychic"),
    ],
)
def test_config_rejects_unknown_ids_by_name(field, value, fragment):
    with pytest.raises(ValueError, match=fragment):
        StudyConfig(**{field: value})


def test_config_error_lists_known_values():
    with pytest.raises(ValueError, match="known:.*ARL_Opteron"):
        StudyConfig(systems=("HAL9000",))


def test_config_accepts_replica_labels():
    # "label@k" aliases (the --scale matrix) must pass validation.
    label = next(iter(APPLICATIONS))
    cfg = StudyConfig(applications=(label, f"{label}@1"))
    assert cfg.applications[1].endswith("@1")


def test_config_variant_revalidates():
    with pytest.raises(ValueError, match="psychic"):
        StudyConfig().variant(cache_model="psychic")
