"""Property tests for the consistent-hash shard ring.

The two properties the fleet's semantics rest on, pinned numerically:
balance (±25% of fair share at 64 vnodes) and minimal key movement on
membership change (only the removed worker's keys change hands; re-adding
restores the exact prior assignment).
"""

import pytest

from repro.serve.shard import DEFAULT_VNODES, ShardRing
from repro.tracing.store import probes_key, trace_key

#: A realistic key population: every store digest the study matrix uses,
#: replicated across sample sizes for volume.
KEYS = [
    trace_key(app, cpus, "NAVO_690", sample)
    for app in (
        "AVUS-standard",
        "AVUS-large",
        "HYCOM-standard",
        "OVERFLOW2-standard",
        "RFCTH-standard",
    )
    for cpus in (16, 32, 48, 59, 64, 96, 124, 128, 256, 384)
    for sample in range(20)
] + [f"synthetic-{i}" for i in range(1000)]


def assignment(ring, keys=KEYS):
    return {key: ring.node_for(key) for key in keys}


# ---------------------------------------------------------------------------
# balance
# ---------------------------------------------------------------------------
# 64 vnodes holds ±25% through the 2-4 worker fleets CI runs; larger
# fleets need vnodes to scale with membership for the same bound (the
# per-node share deviation shrinks like 1/sqrt(vnodes)).
BALANCE_CASES = [(2, DEFAULT_VNODES), (3, DEFAULT_VNODES), (4, DEFAULT_VNODES), (8, 256)]


@pytest.mark.parametrize("n_workers,vnodes", BALANCE_CASES)
def test_key_balance_within_25_percent(n_workers, vnodes):
    ring = ShardRing(tuple(f"w{i}" for i in range(n_workers)), vnodes=vnodes)
    counts = {node: 0 for node in ring.nodes}
    for owner in assignment(ring).values():
        counts[owner] += 1
    fair = len(KEYS) / n_workers
    for node, count in counts.items():
        assert 0.75 * fair <= count <= 1.25 * fair, (
            f"{node} owns {count} of {len(KEYS)} keys "
            f"(fair share {fair:.0f} ± 25%)"
        )


@pytest.mark.parametrize("n_workers,vnodes", BALANCE_CASES)
def test_hash_space_shares_within_25_percent(n_workers, vnodes):
    ring = ShardRing(tuple(f"w{i}" for i in range(n_workers)), vnodes=vnodes)
    shares = ring.shares()
    assert pytest.approx(sum(shares.values())) == 1.0
    fair = 1.0 / n_workers
    for node, share in shares.items():
        assert 0.75 * fair <= share <= 1.25 * fair, (
            f"{node} owns {share:.1%} of hash space (fair {fair:.1%} ± 25%)"
        )


# ---------------------------------------------------------------------------
# minimal movement
# ---------------------------------------------------------------------------
def test_removal_moves_only_the_dead_workers_keys():
    ring = ShardRing(("w0", "w1", "w2", "w3"))
    before = assignment(ring)
    ring.remove("w2")
    after = assignment(ring)
    for key, owner in before.items():
        if owner == "w2":
            assert after[key] != "w2"
        else:
            assert after[key] == owner, (
                f"{key} moved {owner} -> {after[key]} though its owner "
                "never left the ring"
            )


def test_readd_restores_exact_prior_assignment():
    ring = ShardRing(("w0", "w1", "w2"))
    before = assignment(ring)
    ring.remove("w1")
    ring.add("w1")
    assert assignment(ring) == before


def test_addition_moves_only_keys_to_the_new_worker():
    ring = ShardRing(("w0", "w1"))
    before = assignment(ring)
    ring.add("w2")
    after = assignment(ring)
    moved = {key for key in before if after[key] != before[key]}
    assert moved, "adding a worker must claim some keys"
    assert all(after[key] == "w2" for key in moved)


def test_mapping_is_deterministic_across_instances():
    a = ShardRing(("w0", "w1", "w2"))
    b = ShardRing(("w2", "w0", "w1"))  # insertion order must not matter
    assert assignment(a) == assignment(b)


# ---------------------------------------------------------------------------
# edges
# ---------------------------------------------------------------------------
def test_empty_ring_raises_lookup_error():
    with pytest.raises(LookupError):
        ShardRing().node_for("anything")


def test_remove_unknown_and_double_add_are_noops():
    ring = ShardRing(("w0",))
    ring.remove("never-joined")
    ring.add("w0")
    assert ring.nodes == ("w0",)
    assert len(ring) == 1
    assert "w0" in ring and "w1" not in ring


def test_single_worker_owns_everything():
    ring = ShardRing(("only",))
    assert set(assignment(ring).values()) == {"only"}
    assert ring.shares() == {"only": 1.0}


def test_vnodes_validation():
    with pytest.raises(ValueError):
        ShardRing(vnodes=0)


def test_store_digests_are_usable_shard_keys():
    # The shard key *is* the store's content digest; distinct identities
    # must hash to distinct keys (same property the store relies on).
    from repro.machines.registry import get_machine

    a = trace_key("AVUS-standard", 64, "NAVO_690", 400)
    b = trace_key("AVUS-standard", 128, "NAVO_690", 400)
    c = probes_key(get_machine("ARL_Xeon"))
    assert len({a, b, c}) == 3
    ring = ShardRing(("w0", "w1"), vnodes=DEFAULT_VNODES)
    for key in (a, b, c):
        assert ring.node_for(key) in ("w0", "w1")
