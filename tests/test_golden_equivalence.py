"""Golden equivalence: the refactored engine must not move a single bit.

The staged-engine + declarative-registry refactor rewired every pipeline
(predictor facade, study runner, serve service) through one execution
core.  ``tests/golden/study_records.json`` is the full default study
matrix captured from the pre-refactor code; these tests pin the rewired
stack to it byte-for-byte — including through a checkpoint kill/resume —
and pin the deprecated ``predict_all_metrics`` alias to the canonical
``predict_row`` path.
"""

import json
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.core.errors import StudyAbortedError
from repro.core.predictor import PerformancePredictor
from repro.study.runner import StudyConfig, clear_study_caches, run_study
from repro.util.faults import FaultPlan

GOLDEN = Path(__file__).parent / "golden" / "study_records.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def full_result():
    """One fault-free run of the paper's complete default matrix."""
    return run_study(StudyConfig())


def as_rows(result):
    return [
        [r.application, r.cpus, r.system, r.metric,
         r.actual_seconds, r.predicted_seconds, r.error_percent]
        for r in result.records
    ]


def observed_rows(result):
    return [
        [app, system, cpus, seconds]
        for (app, system, cpus), seconds in sorted(result.observed.items())
    ]


def test_full_matrix_records_are_byte_identical(golden, full_result):
    assert len(full_result.records) == golden["n_records"] == 1305
    # == on floats here is exact equality: any reordered accumulation,
    # re-rounded rate or swapped operation in the engine port shows up.
    assert as_rows(full_result) == golden["records"]


def test_observed_times_are_byte_identical(golden, full_result):
    assert len(full_result.observed) == golden["n_observed"]
    assert observed_rows(full_result) == golden["observed"]


def test_killed_and_resumed_study_matches_golden(golden, tmp_path):
    ck = tmp_path / "study.ckpt"
    with pytest.raises(StudyAbortedError):
        run_study(StudyConfig(), checkpoint=ck, faults=FaultPlan(abort_after=2))
    resumed = run_study(StudyConfig(), checkpoint=ck)
    assert resumed.failures == []
    assert as_rows(resumed) == golden["records"]


def test_parallel_study_matches_golden(golden):
    result = run_study(StudyConfig(), workers=2)
    assert as_rows(result) == golden["records"]


# ---------------------------------------------------------------------------
# the binary on-disk store must not move a bit either
# ---------------------------------------------------------------------------


def test_store_cold_and_warm_match_golden(golden, tmp_path):
    """Predictions through the binary store — populating it and then
    serving zero-copy memory-mapped traces from it — are bit-identical."""
    store = tmp_path / "cache"
    cold = run_study(StudyConfig(), store=store)
    assert as_rows(cold) == golden["records"]
    assert list(store.rglob("*.rpb"))  # the cold run persisted binary entries
    assert not list(store.rglob("*.json"))
    # warm: every trace/probe bundle now comes off the memmapped store
    clear_study_caches()
    warm = run_study(StudyConfig(), store=store)
    assert as_rows(warm) == golden["records"]
    assert observed_rows(warm) == golden["observed"]


def test_store_killed_and_resumed_matches_golden(golden, tmp_path):
    store = tmp_path / "cache"
    ck = tmp_path / "study.ckpt"
    with pytest.raises(StudyAbortedError):
        run_study(StudyConfig(), store=store, checkpoint=ck,
                  faults=FaultPlan(abort_after=2))
    clear_study_caches()
    resumed = run_study(StudyConfig(), store=store, checkpoint=ck)
    assert resumed.failures == []
    assert as_rows(resumed) == golden["records"]


def test_store_parallel_study_matches_golden(golden, tmp_path):
    store = tmp_path / "cache"
    run_study(StudyConfig(), store=store)  # populate
    clear_study_caches()
    result = run_study(StudyConfig(), store=store, workers=2)
    assert as_rows(result) == golden["records"]


# ---------------------------------------------------------------------------
# deprecated alias pin
# ---------------------------------------------------------------------------


def test_predict_all_metrics_is_equivalent_to_predict_row():
    p = PerformancePredictor(noise=False)
    row = p.predict_row("AVUS-standard", "ARL_Opteron", 32)
    with pytest.deprecated_call():
        legacy = p.predict_all_metrics("AVUS-standard", "ARL_Opteron", 32)
    assert legacy == row  # same keys, bit-identical values
    assert set(row) == set(range(1, 10))


def test_predict_row_accepts_registry_names():
    p = PerformancePredictor(noise=False)
    named = p.predict_row("AVUS-standard", "ARL_Opteron", 32,
                          metrics=("hpl", "conv+maps+net+dep"))
    numbered = p.predict_row("AVUS-standard", "ARL_Opteron", 32, metrics=(1, 9))
    assert named == numbered


# ---------------------------------------------------------------------------
# the balanced rating over HTTP
# ---------------------------------------------------------------------------


def test_balanced_metric_served_over_http():
    from repro.serve.httpd import make_server
    from repro.serve.service import PredictionService

    svc = PredictionService(noise=False)
    srv = make_server("127.0.0.1", 0, svc)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        port = srv.server_address[1]
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/predict?application=AVUS-standard"
            "&cpus=64&machine=ARL_Xeon&metric=balanced"
        ) as resp:
            body = json.load(resp)
        assert resp.status == 200
        assert body["served_metric"] == 0
        assert body["metric_label"] == "0-C BALANCED"
        assert body["degraded"] is False
        assert body["predicted_seconds"] > 0
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


# ---------------------------------------------------------------------------
# the CLI accepts registry names and numbers
# ---------------------------------------------------------------------------


def test_cli_metrics_accepts_names_and_numbers(capsys):
    from repro.cli import main

    assert main(["table4", "--metrics", "1,balanced,conv+maps"]) == 0
    out = capsys.readouterr().out
    assert "0-C" in out and "BALANCED" in out
    assert "7-P" in out


def test_cli_unknown_metric_exits_structured(capsys):
    from repro.cli import main
    from repro.core.errors import UnknownIdError

    code = main(["table4", "--metrics", "1,bogus"])
    assert code == UnknownIdError.exit_code
    err = capsys.readouterr().err
    assert "unknown metric 'bogus'" in err
    assert "nearest" in err
