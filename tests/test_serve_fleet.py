"""End-to-end tests for the sharded multi-worker serving fleet.

A real fleet — worker processes, framed sockets, asyncio front end — on a
loopback port.  The two load-bearing pins:

* **golden batch identity** — ``POST /predict/batch`` over the paper's
  full matrix must be byte-identical to the committed study records,
  regardless of worker count (``run_matrix`` partition invariance,
  served over HTTP);
* **exactly-once coalescing** — concurrent duplicate point requests
  produce one worker call: one ``coalesced: false`` leader, the rest
  ``coalesced: true`` followers, and the worker's own request counter
  reads 1.

Plus the supervision contract (kill → 429-not-500 → respawn → ring
re-add), driven through the public HTTP surface.
"""

import asyncio
import json
import signal
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.serve.fleet import Fleet
from repro.serve.frontend import FleetFrontend, FleetServer

GOLDEN = Path(__file__).parent / "golden" / "study_records.json"

PREDICT = "/predict?application=AVUS-standard&cpus=64&machine=ARL_Xeon"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def fleet_server():
    """One 2-worker fleet shared by the read-only tests in this module."""
    server = FleetServer(2)
    server.start()
    try:
        yield server
    finally:
        server.stop()


def get(server, path):
    host, port = server.address
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as resp:
            return resp.status, json.load(resp), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.load(err), dict(err.headers)


def post(server, path, body, timeout=300):
    host, port = server.address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(body).encode() if body is not None else b"",
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as err:
        return err.code, json.load(err)


# ---------------------------------------------------------------------------
# the golden pin: sharded batches == the offline study, byte for byte
# ---------------------------------------------------------------------------
def test_batch_full_matrix_is_byte_identical_to_study(fleet_server, golden):
    status, body = post(fleet_server, "/predict/batch", {})
    assert status == 200
    assert body["count"] == golden["n_records"] == 1305
    # == on floats is exact: any worker that re-ordered an accumulation,
    # re-seeded noise or dropped a cell shows up here.
    assert body["records"] == golden["records"]
    # The matrix really was sharded, not served by one worker.
    assert len(body["workers"]) == 2
    assert sum(body["workers"].values()) == 1305


def test_batch_cells_form_filters_to_requested_cells(fleet_server, golden):
    cells = [
        ["AVUS-standard", 64, "ARL_Xeon", 9],
        ["HYCOM-standard", 96, "ASC_SC45", 1],
    ]
    status, body = post(fleet_server, "/predict/batch", {"cells": cells})
    assert status == 200
    assert body["count"] == 2
    by_cell = {tuple(r[:4]): r for r in body["records"]}
    assert set(by_cell) == {
        ("AVUS-standard", 64, "ARL_Xeon", 9),
        ("HYCOM-standard", 96, "ASC_SC45", 1),
    }
    # Each served cell equals the corresponding offline study record.
    golden_by_cell = {tuple(r[:4]): r for r in golden["records"]}
    for cell, record in by_cell.items():
        assert record == golden_by_cell[cell]


def test_batch_axes_form_matches_golden_subset(fleet_server, golden):
    status, body = post(
        fleet_server,
        "/predict/batch",
        {"applications": ["RFCTH-standard"], "systems": ["NAVO_655"], "metrics": [9]},
    )
    assert status == 200
    expected = [
        r
        for r in golden["records"]
        if r[0] == "RFCTH-standard" and r[2] == "NAVO_655" and r[3] == 9
    ]
    assert body["records"] == expected


def test_batch_ineligible_rows_are_skipped_like_the_paper(fleet_server):
    # AVUS-large at 384 cpus exceeds the 128-way ARL_690_1.7 (the
    # paper's blank cell); the row must be skipped, not erred.
    status, body = post(
        fleet_server,
        "/predict/batch",
        {"rows": [["AVUS-large", 384]], "systems": ["ARL_690_1.7"], "metrics": [9]},
    )
    assert status == 200
    assert body["count"] == 0 and body["records"] == []


def test_batch_validation_errors_are_structured_400(fleet_server):
    status, body = post(
        fleet_server,
        "/predict/batch",
        {"cells": [["AVUS-typo", 64, "ARL_Xeon", 9]]},
    )
    assert status == 400
    assert body["error"] == "UnknownId"
    assert "AVUS-standard" in body["nearest"]

    status, body = post(fleet_server, "/predict/batch", {"cells": [["AVUS-standard", 64]]})
    assert status == 400
    assert body["error"] == "BadParameter"


# ---------------------------------------------------------------------------
# point path over the fleet
# ---------------------------------------------------------------------------
def test_point_predict_routes_to_a_worker(fleet_server):
    status, body, _ = get(fleet_server, PREDICT + "&metric=9")
    assert status == 200
    assert body["served_metric"] == 9
    assert body["degraded"] is False
    assert body["worker"] in ("w0", "w1")
    assert body["coalesced"] is False
    assert body["predicted_seconds"] > 0


def test_point_routing_is_sticky(fleet_server):
    # The same cell always lands on the same worker (warm caches).
    owners = {
        get(fleet_server, PREDICT)[1]["worker"] for _ in range(5)
    }
    assert len(owners) == 1


def test_point_validation_is_frontend_side(fleet_server):
    status, body, _ = get(
        fleet_server, "/predict?application=AVUS-typo&cpus=64&machine=ARL_Xeon"
    )
    assert status == 400
    assert body["error"] == "UnknownId"
    assert "AVUS-standard" in body["nearest"]

    status, body, _ = get(
        fleet_server, "/predict?application=AVUS-standard&cpus=9999&machine=ARL_Xeon"
    )
    assert status == 400
    assert body["error"] == "BadParameter"

    status, body, _ = get(fleet_server, "/nope")
    assert status == 404
    assert "POST /predict/batch" in body["routes"]
    assert "GET /catalog" in body["routes"]

    status, body, _ = get(fleet_server, "/catalog")
    assert status == 200
    assert body["base_system"] == "NAVO_690"
    assert body["universe"] is None
    assert "AVUS-standard" in body["applications"]
    assert "ARL_Xeon" in body["machines"]


def test_healthz_aggregates_the_fleet(fleet_server):
    status, body, _ = get(fleet_server, "/healthz")
    assert status == 200
    assert body["status"] in ("ok", "degraded")
    assert body["fleet"]["workers"] == 2
    assert sorted(body["workers"]) == ["w0", "w1"]
    assert body["ring"]["nodes"] == ["w0", "w1"]
    assert pytest.approx(sum(body["ring"]["shares"].values())) == 1.0
    for counter in ("leaders_total", "followers_total", "in_flight"):
        assert counter in body["coalescing"]
    for row in body["workers"].values():
        assert row["alive"] is True
        assert "breakers" in row["health"]  # per-worker breaker board

    status, body, _ = get(fleet_server, "/readyz")
    assert status == 200
    assert body["ready"] is True


# ---------------------------------------------------------------------------
# coalescing, end to end and deterministic (one event loop, no races)
# ---------------------------------------------------------------------------
def test_duplicate_requests_coalesce_to_one_worker_call():
    async def scenario():
        fleet = Fleet(1)
        frontend = FleetFrontend(fleet, default_deadline=30.0)
        await fleet.start()
        try:
            query = {
                "application": "AVUS-standard",
                "cpus": "64",
                "machine": "ARL_Xeon",
                "metric": "9",
            }
            # All eight coroutines enter the coalescer before the leader's
            # worker round-trip resolves (single loop: followers register
            # while the leader awaits the socket), so the collapse is
            # deterministic, not timing-dependent.
            responses = await asyncio.gather(
                *(frontend._predict(dict(query)) for _ in range(8))
            )
            health = await fleet.worker_health()
            return responses, health, frontend.coalescer.counters()
        finally:
            await fleet.stop()

    responses, health, counters = asyncio.run(scenario())
    assert [status for status, _, _ in responses] == [200] * 8
    flags = [body["coalesced"] for _, body, _ in responses]
    assert flags.count(False) == 1 and flags.count(True) == 7
    values = {body["predicted_seconds"] for _, body, _ in responses}
    assert len(values) == 1  # everyone got the leader's answer
    # The worker saw exactly ONE request for the eight clients.
    assert health["w0"]["health"]["requests"]["total"] == 1
    assert counters["leaders_total"] == 1
    assert counters["followers_total"] == 7


# ---------------------------------------------------------------------------
# supervision: kill -> shed/re-route -> respawn -> ring re-add
# ---------------------------------------------------------------------------
def test_worker_death_is_shed_rerouted_and_respawned():
    server = FleetServer(2, respawn_delay=0.2)
    server.start()
    try:
        status, body, _ = get(server, PREDICT)
        assert status == 200
        victim = server.fleet.workers["w0"].proc
        victim_pid = victim.pid
        import os

        os.kill(victim_pid, signal.SIGKILL)
        # Death surfaces on /healthz via the sentinel watch.
        deadline = time.time() + 5.0
        while time.time() < deadline:
            _, health, _ = get(server, "/healthz")
            if health["fleet"]["deaths_total"] >= 1:
                break
            time.sleep(0.02)
        assert health["fleet"]["deaths_total"] >= 1

        # While degraded: every answer is a 200 (re-routed to the
        # survivor) or a retryable 429 — never a 500.
        statuses = [get(server, PREDICT)[0] for _ in range(10)]
        assert set(statuses) <= {200, 429}
        assert 200 in statuses

        # Respawn: ready again, ring whole, same worker name back.
        deadline = time.time() + 15.0
        while time.time() < deadline:
            status, _, _ = get(server, "/readyz")
            if status == 200:
                break
            time.sleep(0.1)
        assert status == 200
        _, health, _ = get(server, "/healthz")
        assert health["fleet"]["respawns_total"] >= 1
        assert health["fleet"]["alive"] == 2
        assert health["ring"]["nodes"] == ["w0", "w1"]
        assert get(server, PREDICT)[0] == 200
    finally:
        server.stop()


def test_retry_after_header_on_shed():
    # A 1-worker fleet with a tiny pending bound sheds concurrent load
    # with 429 + Retry-After (the front end's own EWMA-backed gate).
    server = FleetServer(1, max_pending=1)
    server.start()
    try:
        import threading

        results = []
        lock = threading.Lock()

        def fire():
            result = get(server, PREDICT + "&deadline_ms=30000")
            with lock:
                results.append(result)

        threads = [threading.Thread(target=fire) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        statuses = [status for status, _, _ in results]
        assert set(statuses) <= {200, 429}
        for status, body, headers in results:
            if status == 429:
                assert body["error"] == "Overloaded"
                assert int(headers["Retry-After"]) >= 1
    finally:
        server.stop()


# ---------------------------------------------------------------------------
# event log: per-process writer streams, /events/stats, death audit
# ---------------------------------------------------------------------------
def test_fleet_events_disabled_without_dir(fleet_server):
    status, body, _ = get(fleet_server, "/events/stats")
    assert status == 200 and body == {"enabled": False}


def test_fleet_events_stats_and_worker_audit(tmp_path_factory):
    import os

    from repro.events import verify_dir

    events_dir = tmp_path_factory.mktemp("fleet-events")
    server = FleetServer(
        2, respawn_delay=0.2, service_config={"events_dir": str(events_dir)}
    )
    server.start()
    try:
        status, _, _ = get(server, PREDICT)
        assert status == 200
        status, stats, _ = get(server, "/events/stats")
        assert status == 200 and stats["enabled"]
        assert stats["views"]["stats"]["by_kind"].get("prediction-emitted", 0) >= 1

        # SIGKILL a worker: the supervisor's own writer stream records the
        # death and the respawn, visible through the same stats surface.
        os.kill(server.fleet.workers["w0"].proc.pid, signal.SIGKILL)
        deadline = time.time() + 15.0
        kinds = {}
        while time.time() < deadline:
            _, stats, _ = get(server, "/events/stats")
            kinds = stats["views"]["stats"]["by_kind"]
            if kinds.get("worker-respawned"):
                break
            time.sleep(0.1)
        assert kinds.get("worker-died", 0) >= 1
        assert kinds.get("worker-respawned", 0) >= 1
    finally:
        server.stop()
    # After a SIGKILL mid-run, every stream still verifies clean: the
    # dead worker's log loses at most its unflushed suffix, never frames.
    report = verify_dir(events_dir)
    assert report["ok"]
    # Segment files appear lazily on first append, so only writers that
    # actually emitted something have streams: the supervisor (death +
    # respawn events) and whichever worker served the prediction.
    writers = {stream["writer"] for stream in report["streams"]}
    assert "frontend" in writers
    assert any(writer.startswith("w") for writer in writers - {"frontend"})
