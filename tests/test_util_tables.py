"""Tests for ASCII table rendering."""

import pytest

from repro.util.tables import Table


def make_table():
    t = Table(
        title="Demo",
        columns=["name", "value"],
        formats=[None, ".1f"],
    )
    t.add_row("alpha", 1.0)
    t.add_row("beta", 22.345)
    return t


def test_render_contains_title_and_cells():
    text = make_table().render()
    assert "Demo" in text
    assert "alpha" in text
    assert "22.3" in text  # formatted


def test_numeric_columns_right_aligned():
    text = make_table().render()
    lines = text.splitlines()
    row_alpha = next(l for l in lines if "alpha" in l)
    row_beta = next(l for l in lines if "beta" in l)
    # right-aligned numbers end at the same column
    assert len(row_alpha) == len(row_beta) or row_alpha.rstrip().endswith("1.0")


def test_none_cells_render_blank():
    t = Table(title="T", columns=["a", "b"], formats=[None, ".0f"])
    t.add_row("x", None)
    text = t.render()
    assert "None" not in text


def test_ragged_rows_padded():
    t = Table(title="T", columns=["a", "b", "c"])
    t.add_row("only")
    assert "only" in t.render()


def test_to_csv_roundtrip():
    csv = make_table().to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == "name,value"
    assert lines[1] == "alpha,1.0"
    assert lines[2] == "beta,22.3"


def test_title_underlined():
    text = make_table().render()
    lines = text.splitlines()
    assert lines[1] == "=" * len("Demo")
