"""Tests for the application workload model."""

import pytest

from repro.apps.model import MIN_WORKING_SET, ApplicationModel, BasicBlock, CommEvent
from repro.memory.patterns import StrideHistogram
from repro.network.model import CollectiveKind


def _block(**kw):
    defaults = dict(
        name="b",
        fp_per_cell=100.0,
        loads_per_cell=30.0,
        stores_per_cell=10.0,
        stride=StrideHistogram(unit=0.7, short=0.2, random=0.1),
    )
    defaults.update(kw)
    return BasicBlock(**defaults)


def test_block_derived_quantities():
    b = _block()
    assert b.refs_per_cell == 40.0
    assert b.bytes_per_cell == 320.0


def test_block_working_set_laws():
    full = _block(ws_exponent=1.0)
    surface = _block(ws_exponent=2 / 3, ws_scale=2.0)
    fixed = _block(ws_exponent=0.0, ws_scale=1 << 20)
    rb = 1e9
    assert full.working_set(rb) == pytest.approx(rb)
    assert surface.working_set(rb) == pytest.approx(2.0 * rb ** (2 / 3))
    assert fixed.working_set(rb) == pytest.approx(float(1 << 20))


def test_block_working_set_clamped():
    b = _block(ws_exponent=0.0, ws_scale=1.0)  # pathological tiny ws
    assert b.working_set(1e9) == MIN_WORKING_SET
    big_fixed = _block(ws_exponent=0.0, ws_scale=1e12)
    assert big_fixed.working_set(1e9) == 1e9  # cannot exceed rank data


def test_block_rejects_no_work():
    with pytest.raises(ValueError, match="no work"):
        _block(fp_per_cell=0.0, loads_per_cell=0.0, stores_per_cell=0.0)


def test_block_validates_fractions():
    with pytest.raises(ValueError):
        _block(dependency_fraction=1.5)
    with pytest.raises(ValueError):
        _block(ws_exponent=1.2)
    with pytest.raises(ValueError):
        _block(chase_fraction=-0.1)


def test_comm_event_size_law():
    halo = CommEvent(
        name="halo", kind="p2p", count=4, size_scale=2.0, size_exponent=2 / 3
    )
    assert halo.size_bytes(1e9) == pytest.approx(2.0 * 1e9 ** (2 / 3))
    fixed = CommEvent(
        name="ar", kind=CollectiveKind.ALLREDUCE, count=1, size_scale=8.0
    )
    assert fixed.size_bytes(1e9) == 8.0


def test_comm_event_kind_validation():
    with pytest.raises(ValueError, match="p2p"):
        CommEvent(name="x", kind="pt2pt", count=1, size_scale=8.0)


def test_comm_event_is_p2p():
    assert CommEvent(name="h", kind="p2p", count=1, size_scale=1.0).is_p2p
    assert not CommEvent(
        name="a", kind=CollectiveKind.BARRIER, count=1, size_scale=1.0
    ).is_p2p


def _app(**kw):
    defaults = dict(
        name="APP",
        testcase="std",
        description="test app",
        cells=1e6,
        bytes_per_cell=1000.0,
        timesteps=10,
        cpu_counts=(8, 16),
        blocks=(_block(),),
    )
    defaults.update(kw)
    return ApplicationModel(**defaults)


def test_app_rank_quantities():
    app = _app()
    assert app.rank_cells(8) == pytest.approx(1.25e5)
    assert app.rank_bytes(8) == pytest.approx(1.25e8)
    assert app.label == "APP-std"


def test_app_block_lookup():
    app = _app()
    assert app.block("b").name == "b"
    with pytest.raises(KeyError):
        app.block("missing")


def test_app_rejects_duplicate_blocks():
    with pytest.raises(ValueError, match="duplicate"):
        _app(blocks=(_block(), _block()))


def test_app_rejects_empty_counts_and_blocks():
    with pytest.raises(ValueError):
        _app(cpu_counts=())
    with pytest.raises(ValueError):
        _app(blocks=())
    with pytest.raises(ValueError):
        _app(cpu_counts=(0,))
