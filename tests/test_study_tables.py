"""Tests for the paper-table builders."""

import pytest

from repro.study import tables as T
from repro.study.paper_data import PAPER_RUNTIMES, PAPER_TABLE4, PAPER_TABLE5


def test_table1_lists_nine_architectures():
    text = T.table1_architectures().render()
    for vendor in ("SGI", "IBM", "HP", "LNX"):
        assert vendor in text


def test_table2_lists_systems():
    text = T.table2_systems().render()
    assert "NAVO_655" in text and "2832" in text


def test_table3_lists_nine_metrics():
    table = T.table3_metrics()
    assert len(table.rows) == 9
    assert "HPL+MAPS+NET+DEP" in table.render()


def test_table4_has_paper_columns(full_study):
    table = T.table4_overall(full_study)
    assert len(table.rows) == 9
    text = table.render()
    assert "Paper avg" in text
    # metric 1 row carries the paper's 63
    row1 = table.rows[0]
    assert row1[4] == 63.0


def test_table5_rows_and_overall(full_study):
    table = T.table5_systems(full_study, include_paper=True)
    assert len(table.rows) == 11  # 10 systems + OVERALL
    assert table.rows[-1][0] == "OVERALL"
    text = table.render()
    assert "ERDC_O3800" in text


def test_figure1_series_three_systems():
    series = T.figure1_series()
    assert set(series) == {"ARL_Opteron", "ARL_Altix", "NAVO_655"}
    for sizes, bws in series.values():
        assert sizes.shape == bws.shape
        assert (bws > 0).all()


def test_figure2_series_matches_table4(full_study):
    series = T.figure2_series(full_study)
    table = full_study.overall_table()
    for m, (err, std) in series.items():
        assert err == pytest.approx(table[m].mean_abs)
        assert std == pytest.approx(table[m].std_abs)


def test_figures3_7_tables(full_study):
    for app in PAPER_RUNTIMES:
        table = T.figures3_7_series(full_study, app)
        assert len(table.rows) == 9
        assert app in table.title


def test_appendix_tables_align_with_paper_blanks(full_study):
    table = T.appendix_runtimes(full_study, "AVUS-large")
    row = next(r for r in table.rows if r[0] == "ARL_690_1.7")
    # our blank in the same place the paper is blank (256/384 > 128 cpus)
    assert row[1] is not None
    assert row[2] is None and row[3] is None


def test_paper_data_integrity():
    # Table 5's OVERALL row must equal Table 4's error column
    from repro.study.paper_data import PAPER_TABLE5_OVERALL

    assert PAPER_TABLE5_OVERALL == tuple(PAPER_TABLE4[m][0] for m in range(1, 10))
    # every Table 5 row has 9 metric entries
    assert all(len(v) == 9 for v in PAPER_TABLE5.values())
    # appendix tables cover all ten systems
    for data in PAPER_RUNTIMES.values():
        assert len(data["times"]) == 10
        assert len(data["cpu_counts"]) == 3
