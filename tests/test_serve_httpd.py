"""Integration tests for the stdlib HTTP front end.

A real :class:`ThreadingHTTPServer` on a loopback port, driven with
``urllib`` — proving the error mapping end to end: structured 400s with
nearest ids, 429 + ``Retry-After`` on shed load, 503 readiness while a
breaker is open, and degraded-but-200 answers under injected faults.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import BreakerBoard
from repro.serve.httpd import make_server
from repro.serve.service import PredictionService


@pytest.fixture()
def server():
    """A healthy, noise-free service on an ephemeral port."""
    svc = PredictionService(noise=False)
    srv = make_server("127.0.0.1", 0, svc)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def get(srv, path):
    port = srv.server_address[1]
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as resp:
            return resp.status, json.load(resp), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.load(err), dict(err.headers)


PREDICT = "/predict?application=AVUS-standard&cpus=64&machine=ARL_Xeon"


def test_predict_ok(server):
    status, body, _ = get(server, PREDICT + "&metric=9")
    assert status == 200
    assert body["served_metric"] == 9
    assert body["degraded"] is False
    assert body["predicted_seconds"] > 0
    assert body["metric_label"].startswith("9-P")


def test_unknown_id_is_structured_400(server):
    status, body, _ = get(
        server, "/predict?application=AVUS-typo&cpus=64&machine=ARL_Xeon"
    )
    assert status == 400
    assert body["error"] == "UnknownId"
    assert body["kind"] == "application"
    assert "AVUS-standard" in body["nearest"]
    assert "AVUS-standard" in body["known"]
    assert "Traceback" not in body["message"]


def test_bad_parameters_are_400(server):
    for path, fragment in [
        ("/predict?cpus=64&machine=ARL_Xeon", "application"),
        (PREDICT.replace("cpus=64", "cpus=banana"), "integer"),
        (PREDICT.replace("cpus=64", "cpus=99999"), "exceeds"),
        (PREDICT + "&metric=42", "unknown metric"),
        (PREDICT + "&deadline_ms=soon", "number"),
    ]:
        status, body, _ = get(server, path)
        assert status == 400, path
        assert fragment in body["message"], path


def test_unknown_route_is_404(server):
    status, body, _ = get(server, "/nope")
    assert status == 404
    assert "/predict" in body["routes"]


def test_healthz_shape(server):
    status, body, _ = get(server, "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert set(body["breakers"]) == {"probe", "trace", "convolve"}
    assert body["admission"]["active"] == 0
    assert body["store"] == {"enabled": False, "invalidated": 0}
    assert body["requests"]["total"] >= 0
    assert set(body["trace_cache"]) == {"size", "max_size", "hits", "misses", "evictions"}


def test_readyz_tracks_breaker_state(server):
    status, body, _ = get(server, "/readyz")
    assert status == 200 and body["ready"]
    server.service.breakers["convolve"].record_failure()
    for _ in range(9):
        server.service.breakers["convolve"].record_failure()
    if server.service.breakers["convolve"].state != "open":
        pytest.skip("default threshold not reached")  # pragma: no cover
    status, body, _ = get(server, "/readyz")
    assert status == 503
    assert body["open_breakers"] == ["convolve"]
    # healthz stays 200 (liveness) but reports the degradation
    status, body, _ = get(server, "/healthz")
    assert status == 200
    assert body["status"] == "degraded"


def test_shed_load_is_429_with_retry_after():
    svc = PredictionService(
        noise=False, admission=AdmissionQueue(max_concurrent=1, max_queue=0)
    )
    srv = make_server("127.0.0.1", 0, svc)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        svc.admission.acquire()  # hold the only slot
        status, body, headers = get(srv, PREDICT)
        assert status == 429
        assert body["error"] == "Overloaded"
        assert int(headers["Retry-After"]) >= 1
        svc.admission.release(0.01)
        status, _, _ = get(srv, PREDICT)
        assert status == 200
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def test_open_probe_breaker_maps_to_503():
    svc = PredictionService(
        noise=False,
        breakers=BreakerBoard(failure_threshold=1, cooldown_seconds=60.0),
    )
    svc.breakers["probe"].record_failure()
    srv = make_server("127.0.0.1", 0, svc)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        status, body, headers = get(srv, PREDICT)
        assert status == 503
        assert body["error"] == "ServiceUnavailable"
        assert int(headers["Retry-After"]) >= 1
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)
