"""Tests for the scenario catalog layer (:mod:`repro.scenarios`).

Four contracts carry the refactor and are pinned here:

* the built-in catalog is *behaviour-preserving* — it serves the very
  registry/suite objects the study always used (digest pinned);
* TOML round-trips are *identity-preserving* — ``repr`` (and therefore
  every content fingerprint) survives dump + load, including int-vs-float
  distinctions, stride histograms and comm events (hypothesis);
* generated universes are *reproducible* — same ``(family, seed, cells)``
  gives identical digests, in-process and across interpreter runs;
* the mount layer is *safe* — collisions with built-ins are rejected,
  unknown ids suggest mounted names, and unmount restores the built-ins.
"""

import subprocess
import sys
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.model import ApplicationModel, BasicBlock, CommEvent
from repro.core.errors import UnknownIdError
from repro.machines.spec import (
    MachineSpec,
    MemoryLevelSpec,
    NetworkSpec,
    ProcessorSpec,
)
from repro.memory.patterns import StrideHistogram
from repro.network.model import CollectiveKind
from repro.scenarios import (
    CATALOG,
    Universe,
    builtin_digest,
    content_fingerprint,
    get_application,
    get_machine,
    list_applications,
    list_machines,
    mount_universe,
    unmount_universe,
)
from repro.scenarios.generate import FAMILIES, generate_universe
from repro.scenarios.spec_io import dumps_universe, load_universe, loads_universe

#: Content digest of the frozen built-in catalog (11 machines + 5 apps).
#: This moving means the paper's scenario data changed — bump knowingly.
BUILTIN_DIGEST = "58d598ab3350c7c26d5d08904ea0c786"


@pytest.fixture(autouse=True)
def _pristine_catalog():
    """Every test starts and ends with only the built-ins mounted."""
    unmount_universe()
    yield
    unmount_universe()


# ----------------------------------------------------------------------
# built-in equivalence
# ----------------------------------------------------------------------
def test_builtin_digest_pinned():
    assert builtin_digest() == BUILTIN_DIGEST


def test_catalog_serves_registry_machine_instances():
    from repro.machines.registry import MACHINES

    assert list_machines() == list(MACHINES)
    for name, spec in MACHINES.items():
        assert get_machine(name) is spec


def test_catalog_applications_match_suite():
    from repro.apps.suite import APPLICATIONS
    from repro.apps.suite import get_application as suite_get

    assert list_applications() == list(APPLICATIONS)
    for label in APPLICATIONS:
        assert repr(get_application(label)) == repr(suite_get(label))


def test_replica_semantics_preserved():
    replica = get_application("AVUS-standard@3")
    assert replica.label == "AVUS-standard@3"
    base = get_application("AVUS-standard")
    assert repr(replica) != repr(base)
    with pytest.raises(KeyError, match="bad replica suffix"):
        get_application("AVUS-standard@x")
    with pytest.raises(KeyError, match="bad replica suffix"):
        get_application("AVUS-standard@0")
    with pytest.raises(UnknownIdError):
        get_application("AVUS-standar@2")


def test_unknown_ids_raise_with_nearest():
    with pytest.raises(UnknownIdError) as exc_info:
        get_machine("NAVO_69")
    assert "NAVO_690" in exc_info.value.nearest
    with pytest.raises(UnknownIdError) as exc_info:
        get_application("AVUS-larg")
    assert "AVUS-large" in exc_info.value.nearest


# ----------------------------------------------------------------------
# deprecation shims
# ----------------------------------------------------------------------
def test_machines_dict_shim_warns_and_matches_registry():
    import repro.machines as pkg
    from repro.machines.registry import MACHINES

    with pytest.warns(DeprecationWarning, match="repro.machines.MACHINES"):
        shimmed = pkg.MACHINES
    assert shimmed == dict(MACHINES)


def test_applications_dict_shim_warns_and_builds_models():
    import repro.apps as pkg
    from repro.apps.suite import APPLICATIONS

    with pytest.warns(DeprecationWarning, match="repro.apps.APPLICATIONS"):
        shimmed = pkg.APPLICATIONS
    assert shimmed == {label: factory() for label, factory in APPLICATIONS.items()}


def test_package_wrappers_route_through_catalog():
    import repro.apps
    import repro.machines

    universe = generate_universe("mixed", 5, 30)
    mount_universe(universe.ref)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the supported API must not warn
        assert repro.machines.get_machine(universe.machines[0].name)
        assert repro.apps.get_application(universe.applications[0].label)
        assert universe.machines[0].name in repro.machines.list_machines()
        assert universe.applications[0].label in repro.apps.list_applications()


# ----------------------------------------------------------------------
# TOML round-trips (hypothesis)
# ----------------------------------------------------------------------
def _finite(lo, hi):
    return st.floats(min_value=lo, max_value=hi, allow_nan=False)


_names = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"), whitelist_characters="_-. "),
    min_size=1,
    max_size=16,
)

#: TOML strings are sequences of Unicode *scalar values*: lone surrogates
#: cannot survive a dump/load cycle by the format's own definition.
_descriptions = st.text(
    alphabet=st.characters(exclude_categories=("Cs",)), max_size=40
)

_strides = st.builds(
    StrideHistogram.normalised,
    unit=_finite(0.05, 10.0),
    short=_finite(0.0, 10.0),
    random=_finite(0.0, 10.0),
    short_stride_elems=st.integers(2, 16),
)


@st.composite
def _machines(draw):
    processor = ProcessorSpec(
        clock_ghz=draw(_finite(0.1, 5.0)),
        flops_per_cycle=draw(st.sampled_from([1, 2, 4, 4.0, 8])),
        ilp_efficiency=draw(_finite(0.05, 1.0)),
        dependent_fp_efficiency=draw(_finite(0.01, 1.0)),
    )
    sizes = sorted(
        draw(
            st.lists(
                _finite(1024.0, 1e9), min_size=1, max_size=3, unique=True
            )
        )
    )
    levels = [
        MemoryLevelSpec(
            name=f"L{i + 1}",
            size_bytes=size,
            bandwidth=draw(_finite(1e8, 1e12)),
            latency=draw(_finite(1e-9, 1e-6)),
            line_bytes=draw(st.sampled_from([32, 64, 128])),
            mlp=draw(_finite(1.0, 16.0)),
            dependent_stream_factor=draw(_finite(0.05, 1.0)),
        )
        for i, size in enumerate(sizes)
    ]
    levels.append(
        MemoryLevelSpec(
            name="MEM",
            size_bytes=float("inf"),
            bandwidth=draw(_finite(1e8, 1e11)),
            latency=draw(_finite(1e-8, 1e-5)),
        )
    )
    network = NetworkSpec(
        name=draw(_names),
        latency=draw(_finite(1e-7, 1e-4)),
        bandwidth=draw(_finite(1e7, 1e10)),
        collective_efficiency=draw(_finite(0.1, 1.0)),
        contention_factor=draw(_finite(1.0, 3.0)),
    )
    return MachineSpec(
        name=draw(_names),
        architecture=draw(_names),
        vendor=draw(_names),
        model=draw(_names),
        cpus=draw(st.integers(1, 65536)),
        processor=processor,
        memory_levels=tuple(levels),
        network=network,
        overlap_factor=draw(_finite(0.0, 1.0)),
        noise_level=draw(_finite(0.0, 0.5)),
        description=draw(_descriptions),
    )


_comms = st.builds(
    CommEvent,
    name=_names,
    kind=st.sampled_from(["p2p", *CollectiveKind]),
    count=st.one_of(st.integers(1, 10_000), _finite(0.5, 1e4)),
    size_scale=_finite(1.0, 1e7),
    size_exponent=_finite(0.0, 1.0),
    neighbors=st.integers(1, 26),
)


@st.composite
def _applications(draw):
    blocks = tuple(
        BasicBlock(
            name=f"b{i}",
            fp_per_cell=draw(_finite(0.1, 500.0)),
            loads_per_cell=draw(_finite(0.1, 500.0)),
            stores_per_cell=draw(_finite(0.0, 200.0)),
            stride=draw(_strides),
            ws_scale=draw(_finite(0.1, 10.0)),
            ws_exponent=draw(_finite(0.0, 1.0)),
            dependency_fraction=draw(_finite(0.0, 1.0)),
            chase_fraction=draw(_finite(0.0, 1.0)),
            fp_ilp=draw(_finite(0.0, 1.0)),
        )
        for i in range(draw(st.integers(1, 3)))
    )
    cpu_counts = tuple(
        sorted(draw(st.lists(st.integers(1, 4096), min_size=1, max_size=4, unique=True)))
    )
    return ApplicationModel(
        name=draw(_names.filter(lambda s: "@" not in s)),
        testcase=draw(_names.filter(lambda s: "@" not in s)),
        description=draw(_descriptions),
        cells=draw(st.integers(1000, 10**9)),
        bytes_per_cell=draw(st.one_of(st.integers(8, 4096), _finite(8.0, 4096.0))),
        timesteps=draw(st.integers(1, 10_000)),
        cpu_counts=cpu_counts,
        blocks=blocks,
        comms=tuple(draw(st.lists(_comms, max_size=3))),
        serial_fraction=draw(_finite(0.0, 0.2)),
        imbalance=draw(_finite(0.0, 0.5)),
    )


@settings(max_examples=25, deadline=None)
@given(machine=_machines())
def test_machine_toml_roundtrip_is_identity(machine):
    text = dumps_universe((machine,), ())
    back = loads_universe(text, ref="t").machines[0]
    assert repr(back) == repr(machine)
    assert content_fingerprint(back) == content_fingerprint(machine)


@settings(max_examples=25, deadline=None)
@given(app=_applications())
def test_application_toml_roundtrip_is_identity(app):
    text = dumps_universe((), (app,))
    back = loads_universe(text, ref="t").applications[0]
    assert repr(back) == repr(app)
    assert content_fingerprint(back) == content_fingerprint(app)


def test_builtin_catalog_toml_roundtrip_is_identity():
    machines = tuple(CATALOG.machine_map().values())
    applications = tuple(CATALOG.application_map().values())
    text = dumps_universe(machines, applications)
    universe = loads_universe(text, ref="builtin-snapshot")
    assert [repr(m) for m in universe.machines] == [repr(m) for m in machines]
    assert [repr(a) for a in universe.applications] == [repr(a) for a in applications]


def test_load_universe_reads_files(tmp_path):
    universe = generate_universe("numa", 3, 20)
    path = tmp_path / "u.toml"
    path.write_text(dumps_universe(universe.machines, universe.applications))
    loaded = load_universe(path)
    assert loaded.digest() == universe.digest()
    assert loaded.ref == str(path)


# ----------------------------------------------------------------------
# generator families
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", FAMILIES)
def test_families_generate_valid_universes(family):
    universe = generate_universe(family, 11, 60)
    assert universe.cell_count() >= 60
    assert len(universe.machines) >= 2 and len(universe.applications) >= 2
    # Constructors re-validate on the TOML path: a clean round-trip means
    # every generated spec satisfies the models' own invariants.
    text = dumps_universe(universe.machines, universe.applications)
    assert loads_universe(text, ref="t").digest() == universe.digest()
    # Generated cpu grids must fit inside every generated machine.
    min_cpus = min(m.cpus for m in universe.machines)
    assert all(max(a.cpu_counts) <= min_cpus for a in universe.applications)


def test_generation_is_deterministic_in_process():
    a = generate_universe("mixed", 42, 100)
    b = generate_universe("mixed", 42, 100)
    assert a.digest() == b.digest()
    assert generate_universe("mixed", 43, 100).digest() != a.digest()
    assert generate_universe("hotnode", 42, 100).digest() != a.digest()


def test_generation_is_deterministic_cross_process():
    code = (
        "from repro.scenarios.generate import generate_universe;"
        "print(generate_universe('mixed', 42, 100).digest())"
    )
    runs = {
        subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        for _ in range(2)
    }
    assert runs == {generate_universe("mixed", 42, 100).digest()}


def test_unknown_family_raises():
    with pytest.raises(UnknownIdError) as exc_info:
        generate_universe("mixd", 0, 10)
    assert "mixed" in exc_info.value.nearest


# ----------------------------------------------------------------------
# mounting
# ----------------------------------------------------------------------
def test_mount_adds_ids_and_unmount_restores():
    before_machines = list_machines()
    universe = mount_universe("mixed:7:40")
    assert CATALOG.universe_ref == "mixed:7:40"
    for machine in universe.machines:
        assert get_machine(machine.name) is not None
    assert list_machines()[: len(before_machines)] == before_machines
    unmount_universe()
    assert list_machines() == before_machines
    with pytest.raises(UnknownIdError):
        get_machine(universe.machines[0].name)


def test_mount_same_ref_is_idempotent():
    first = mount_universe("mixed:7:40")
    second = mount_universe("mixed:7:40")
    assert first.digest() == second.digest()
    assert CATALOG.universe_ref == "mixed:7:40"


def test_mount_rejects_builtin_collisions():
    clash = Universe(
        ref="clash",
        machines=(get_machine("NAVO_690"),),
        applications=(),
    )
    with pytest.raises(ValueError, match="NAVO_690"):
        CATALOG.mount(clash)
    # The failed mount must not have left partial state behind.
    assert CATALOG.universe is None


def test_unknown_id_suggests_mounted_names():
    mount_universe("mixed:7:40")
    with pytest.raises(UnknownIdError) as exc_info:
        get_machine("GEN-mixed-7-M00")
    assert any(n.startswith("GEN-mixed-7-M00") for n in exc_info.value.nearest)
