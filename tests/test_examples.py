"""Smoke tests: every example script must run and tell its story."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def _run_example(name: str, capsys, argv: list[str] | None = None) -> str:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart.py", capsys)
    assert "simulated 'real' runtime" in out
    assert "9-P HPL+MAPS+NET+DEP" in out


def test_rank_systems(capsys):
    out = _run_example("rank_systems.py", capsys)
    assert "Kendall tau" in out
    assert "metric #9" in out


def test_maps_curves(capsys):
    out = _run_example("maps_curves.py", capsys)
    assert "Figure 1" in out
    assert "ARL_Opteron" in out


def test_maps_curves_csv(capsys):
    out = _run_example("maps_curves.py", capsys, argv=["--csv"])
    assert out.startswith("system,curve,working_set_bytes")
    assert "unit_dep" in out


def test_custom_application(capsys):
    out = _run_example("custom_application.py", capsys)
    assert "SPECTRE-demo" in out
    assert "average absolute error" in out


def test_procurement_study(capsys):
    out = _run_example("procurement_study.py", capsys)
    assert "VENDOR_Opteron26" in out
    assert "speedup" in out


@pytest.mark.slow
def test_full_study(capsys):
    out = _run_example("full_study.py", capsys)
    assert "Qualitative shape check against the paper: PASS" in out
