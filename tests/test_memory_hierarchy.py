"""Tests for the analytic memory hierarchy model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.patterns import AccessPattern, StrideClass
from repro.util.units import GB, KIB, MIB

from tests.conftest import make_machine


@pytest.fixture()
def hierarchy():
    return MemoryHierarchy.of(make_machine())


def test_residency_sums_to_one(hierarchy):
    for ws in (1 * KIB, 64 * KIB, 4 * MIB, 1 << 30):
        f = hierarchy.residency_fractions(ws)
        assert f.sum() == pytest.approx(1.0)
        assert (f >= 0).all()


def test_small_ws_served_by_l1(hierarchy):
    f = hierarchy.residency_fractions(16 * KIB)
    assert f[0] == pytest.approx(1.0)


def test_huge_ws_served_mostly_by_memory(hierarchy):
    f = hierarchy.residency_fractions(1 << 34)
    assert f[-1] > 0.99


def test_bandwidth_decreases_with_working_set(hierarchy):
    sizes = np.geomspace(8 * KIB, 1 << 30, 16)
    bws = [
        hierarchy.effective_bandwidth(AccessPattern(working_set=float(s)))
        for s in sizes
    ]
    assert all(a >= b - 1e-6 for a, b in zip(bws, bws[1:]))


def test_cache_resident_beats_memory_resident(hierarchy):
    fast = hierarchy.effective_bandwidth(AccessPattern(working_set=16 * KIB))
    slow = hierarchy.effective_bandwidth(AccessPattern(working_set=1 << 30))
    assert fast > 3 * slow


def test_random_slower_than_unit_from_memory(hierarchy):
    ws = float(1 << 30)
    unit = hierarchy.effective_bandwidth(AccessPattern(working_set=ws))
    rand = hierarchy.effective_bandwidth(
        AccessPattern(working_set=ws, stride=StrideClass.RANDOM)
    )
    assert rand < unit


def test_dependent_slower_than_independent(hierarchy):
    ws = float(1 << 30)
    for stride in (StrideClass.UNIT, StrideClass.RANDOM):
        indep = hierarchy.effective_bandwidth(
            AccessPattern(working_set=ws, stride=stride, dependent=False)
        )
        dep = hierarchy.effective_bandwidth(
            AccessPattern(working_set=ws, stride=stride, dependent=True)
        )
        assert dep < indep


def test_dependent_random_is_latency_bound(hierarchy):
    ws = float(1 << 30)
    bw = hierarchy.effective_bandwidth(
        AccessPattern(working_set=ws, stride=StrideClass.RANDOM, dependent=True)
    )
    mem = hierarchy.levels[-1]
    assert bw == pytest.approx(8.0 / mem.latency, rel=0.05)


def test_short_stride_wastes_bandwidth(hierarchy):
    ws = float(1 << 30)
    unit = hierarchy.effective_bandwidth(AccessPattern(working_set=ws))
    short = hierarchy.effective_bandwidth(
        AccessPattern(working_set=ws, stride=StrideClass.SHORT, stride_elems=4)
    )
    # stride 4 x 8B = 32B used of each 64B line -> ~4x waste vs element pacing
    assert short == pytest.approx(unit / 4.0, rel=0.05)


def test_chase_fraction_interpolates_dependent_cost(hierarchy):
    ws = float(1 << 30)
    soft = hierarchy.effective_bandwidth(
        AccessPattern(working_set=ws, dependent=True, chase_fraction=0.0)
    )
    hard = hierarchy.effective_bandwidth(
        AccessPattern(working_set=ws, dependent=True, chase_fraction=1.0)
    )
    mid = hierarchy.effective_bandwidth(
        AccessPattern(working_set=ws, dependent=True, chase_fraction=0.5)
    )
    assert hard < mid < soft


def test_access_time_linear_in_bytes(hierarchy):
    p = AccessPattern(working_set=float(1 << 26))
    t1 = hierarchy.access_time(p, 1e6)
    t2 = hierarchy.access_time(p, 2e6)
    assert t2 == pytest.approx(2 * t1)
    assert hierarchy.access_time(p, 0.0) == 0.0


def test_access_time_rejects_negative(hierarchy):
    p = AccessPattern(working_set=1024.0)
    with pytest.raises(ValueError):
        hierarchy.access_time(p, -1.0)


def test_serving_level(hierarchy):
    assert hierarchy.serving_level(8 * KIB).name == "L1"
    assert hierarchy.serving_level(float(1 << 32)).name == "MEM"


def test_requires_main_memory_last():
    from repro.machines.spec import MemoryLevelSpec

    with pytest.raises(ValueError, match="main memory"):
        MemoryHierarchy([MemoryLevelSpec("L1", 1024.0, 1 * GB, 1e-9)])


def test_residency_rejects_nonpositive(hierarchy):
    with pytest.raises(ValueError):
        hierarchy.residency_fractions(0)


@settings(max_examples=60)
@given(
    ws=st.floats(min_value=4096, max_value=2**34),
    stride=st.sampled_from(list(StrideClass)),
    dependent=st.booleans(),
    chase=st.floats(min_value=0, max_value=1),
)
def test_bandwidth_always_positive_and_bounded(ws, stride, dependent, chase):
    hierarchy = MemoryHierarchy.of(make_machine())
    p = AccessPattern(
        working_set=ws, stride=stride, dependent=dependent, chase_fraction=chase
    )
    bw = hierarchy.effective_bandwidth(p)
    assert bw > 0
    # no pattern can beat the fastest level's streaming bandwidth
    assert bw <= max(lvl.bandwidth for lvl in hierarchy.levels) * (1 + 1e-9)
