"""The declarative metric registry: specs, registration, TOML, ladder."""

import pytest

from repro.core.errors import UnknownIdError
from repro.core.metrics import get_metric
from repro.core.registry import (
    BUILTIN_SPECS,
    DEGRADE_COST_RATIO,
    REGISTRY,
    MetricRegistry,
    MetricSpec,
    Term,
    load_metric_specs,
)


@pytest.fixture()
def registry():
    """A fresh registry seeded with the built-ins (the global stays clean)."""
    return MetricRegistry(BUILTIN_SPECS)


# ---------------------------------------------------------------------------
# Term grammar
# ---------------------------------------------------------------------------


def test_term_parse_roundtrip():
    t = Term.parse("mem/maps")
    assert (t.kind, t.source, t.weight) == ("mem", "maps", 1.0)
    assert str(t) == "mem/maps"
    weighted = Term.parse("score/hpl:0.5")
    assert weighted.weight == 0.5
    assert str(weighted) == "score/hpl:0.5"


@pytest.mark.parametrize("bad", ["maps", "mem/", "/maps", "mem/maps:lots"])
def test_term_parse_rejects_malformed(bad):
    with pytest.raises(ValueError):
        Term.parse(bad)


def test_term_rejects_unknown_pair():
    with pytest.raises(ValueError, match="unknown term"):
        Term("mem", "hpl")


# ---------------------------------------------------------------------------
# MetricSpec validation
# ---------------------------------------------------------------------------


def test_spec_cost_defaults_to_term_sum():
    spec = MetricSpec(10, "x", "X", "predictive",
                      ("flops/hpl", "mem/stream"))
    assert spec.cost == Term.parse("flops/hpl").cost + Term.parse("mem/stream").cost


def test_simple_spec_needs_exactly_one_ratio():
    with pytest.raises(ValueError, match="exactly one ratio"):
        MetricSpec(10, "x", "X", "simple", ("ratio/hpl", "ratio/stream"))
    with pytest.raises(ValueError, match="cannot carry"):
        MetricSpec(10, "x", "X", "simple", ("flops/hpl",))


def test_predictive_spec_rejects_unsupported_memory_mix():
    with pytest.raises(ValueError, match="unsupported memory term mix"):
        MetricSpec(10, "x", "X", "predictive",
                   ("flops/hpl", "mem/stream", "mem/maps"))


def test_dep_requires_maps():
    with pytest.raises(ValueError, match="requires"):
        MetricSpec(10, "x", "X", "predictive",
                   ("flops/hpl", "mem/stream", "dep/enhanced-maps"))


def test_all_digit_name_rejected():
    with pytest.raises(ValueError, match="all digits"):
        MetricSpec(10, "42", "X", "simple", ("ratio/hpl",))


def test_requirement_derivation_matches_paper_section3():
    reqs = {spec.number: spec.requirement for spec in BUILTIN_SPECS}
    assert reqs == {
        0: "none", 1: "none", 2: "none", 3: "none",
        4: "counters", 5: "counters",
        6: "tracing", 7: "tracing", 8: "tracing", 9: "tracing",
    }


# ---------------------------------------------------------------------------
# lookup
# ---------------------------------------------------------------------------


def test_spec_resolves_number_string_and_name(registry):
    assert registry.spec(9) is registry.spec("9") is registry.spec("conv+maps+net+dep")
    assert registry.spec("Balanced").number == 0  # names are case-insensitive


def test_unknown_metric_has_nearest_matches(registry):
    with pytest.raises(UnknownIdError) as err:
        registry.spec("conv+mapz")
    assert err.value.kind == "metric"
    assert "conv+maps" in err.value.nearest
    with pytest.raises(UnknownIdError) as err:
        registry.spec(12)  # ints rank by numeric distance
    assert "9" in err.value.nearest


def test_bool_is_not_a_metric(registry):
    with pytest.raises(UnknownIdError):
        registry.spec(True)


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------


CUSTOM = MetricSpec(10, "conv+stream+net", "HPL+STREAM+NET", "predictive",
                    ("flops/hpl", "mem/stream", "net/netbench"))


def test_register_and_unregister_user_metric(registry):
    registry.register(CUSTOM)
    assert registry.spec("conv+stream+net") is CUSTOM
    assert 10 in registry.numbers()
    removed = registry.unregister(10)
    assert removed is CUSTOM
    assert 10 not in registry.numbers()


def test_builtin_numbers_are_reserved(registry):
    with pytest.raises(ValueError, match="reserved"):
        registry.register(MetricSpec(5, "mine", "MINE", "simple", ("ratio/hpl",)))
    with pytest.raises(ValueError, match="built-in"):
        registry.unregister(9)


def test_duplicate_name_rejected(registry):
    with pytest.raises(ValueError, match="already registered"):
        registry.register(
            MetricSpec(10, "CONV", "X", "predictive", ("flops/hpl",))
        )


def test_registered_metric_joins_the_ladder(registry):
    assert registry.ladder() == (9, 7, 5, 3, 1)
    # cost 22: below 9 (40), not within half of it -> not a rung from 9...
    registry.register(CUSTOM)
    assert registry.ladder_for(10) == (10, 7, 5, 3, 1)


# ---------------------------------------------------------------------------
# derived ladder
# ---------------------------------------------------------------------------


def test_builtin_ladder_is_the_paper_chain(registry):
    assert registry.ladder() == (9, 7, 5, 3, 1)


def test_ladder_rungs_at_least_halve_cost(registry):
    rungs = registry.ladder()
    costs = [registry.spec(r).cost for r in rungs]
    for above, below in zip(costs, costs[1:-1]):
        assert below <= above * DEGRADE_COST_RATIO


def test_ladder_for_off_chain_and_floor(registry):
    assert registry.ladder_for(8) == (8, 7, 5, 3, 1)
    assert registry.ladder_for(3) == (3, 1)
    assert registry.ladder_for(1) == (1,)


def test_composite_is_never_a_fallback_rung(registry):
    assert 0 not in registry.ladder()
    assert registry.ladder_for(0) == (0, 3, 1)  # but it leads its own ladder


# ---------------------------------------------------------------------------
# TOML loading
# ---------------------------------------------------------------------------


TOML_OK = """
[[metric]]
number = 11
name = "conv+gups-only"
kind = "predictive"
terms = ["flops/hpl", "mem/stream", "mem/gups"]

[[metric]]
number = 12
name = "half-hpl"
label = "HALF HPL"
kind = "simple"
terms = ["ratio/hpl"]
cost = 0.5
"""


def test_load_toml_registers_all_entries(registry, tmp_path):
    path = tmp_path / "metrics.toml"
    path.write_text(TOML_OK)
    loaded = registry.load_toml(path)
    assert [s.number for s in loaded] == [11, 12]
    assert registry.spec("half-hpl").cost == 0.5
    assert registry.spec(11).label == "CONV+GUPS-ONLY"  # defaulted from name


def test_load_toml_is_atomic(registry, tmp_path):
    path = tmp_path / "metrics.toml"
    path.write_text(TOML_OK + """
[[metric]]
number = 9
name = "usurper"
kind = "simple"
terms = ["ratio/hpl"]
""")
    before = registry.numbers()
    with pytest.raises(ValueError, match="reserved"):
        registry.load_toml(path)
    assert registry.numbers() == before  # nothing from the file registered


@pytest.mark.parametrize(
    "body, match",
    [
        ("", "at least one"),
        ("[[metric]]\nnumber = 10\n", "missing key"),
        (
            "[[metric]]\nnumber = 10\nname = 'x'\nkind = 'simple'\n"
            "terms = ['ratio/hpl']\ncolor = 'red'\n",
            "unknown key",
        ),
        (
            "[[metric]]\nnumber = 10\nname = 'x'\nkind = 'sideways'\n"
            "terms = ['ratio/hpl']\n",
            "unknown metric kind",
        ),
    ],
)
def test_load_toml_rejects_bad_files(tmp_path, body, match):
    path = tmp_path / "metrics.toml"
    path.write_text(body)
    with pytest.raises(ValueError, match=match):
        load_metric_specs(path)


# ---------------------------------------------------------------------------
# registry -> runtime metric wiring (the global REGISTRY)
# ---------------------------------------------------------------------------


def test_global_registry_builds_runnable_custom_metric():
    spec = MetricSpec(90, "itest-conv+stream+net", "ITEST", "predictive",
                      ("flops/hpl", "mem/stream", "net/netbench"))
    REGISTRY.register(spec)
    try:
        metric = get_metric("itest-conv+stream+net")
        assert metric.number == 90
        assert metric.needs == ("probe", "trace", "convolve")
        from repro.core import PerformancePredictor

        p = PerformancePredictor(noise=False)
        t = p.predict("AVUS-standard", "ARL_Opteron", cpus=32, metric=90)
        assert t > 0
        # strictly between its stream-only and maps-based neighbours' ingredients:
        # it must at least differ from the no-network variant
        assert t != p.predict("AVUS-standard", "ARL_Opteron", cpus=32, metric=5)
    finally:
        REGISTRY.unregister(90)
