"""Tests for the ground-truth executor."""

import pytest

from repro.apps.execution import GroundTruthExecutor, observed_time
from repro.apps.suite import get_application
from repro.machines.registry import get_machine

from tests.conftest import make_machine


@pytest.fixture(scope="module")
def avus():
    return get_application("AVUS-standard")


def test_run_produces_positive_breakdown(avus):
    result = GroundTruthExecutor(make_machine()).run(avus, 64)
    assert result.total_seconds > 0
    assert result.compute_seconds > 0
    assert result.comm_seconds > 0
    assert len(result.blocks) == len(avus.blocks)
    assert result.cpus == 64


def test_more_cpus_less_time(avus):
    ex = GroundTruthExecutor(make_machine(), noise=False)
    t32 = ex.run(avus, 32).total_seconds
    t64 = ex.run(avus, 64).total_seconds
    t128 = ex.run(avus, 128).total_seconds
    assert t32 > t64 > t128


def test_scaling_in_plausible_band(avus):
    """4x the processors speeds the run up 2x-8x.

    Superlinear speedup is allowed: per-rank working sets shrink into cache
    as the decomposition refines (the paper's AVUS data shows 4.7x for 4x).
    Amdahl, imbalance and communication bound it from the other side.
    """
    ex = GroundTruthExecutor(make_machine(), noise=False)
    t32 = ex.run(avus, 32).total_seconds
    t128 = ex.run(avus, 128).total_seconds
    assert 2.0 < t32 / t128 < 8.0


def test_noise_is_deterministic(avus):
    m = make_machine()
    a = GroundTruthExecutor(m).run(avus, 64).total_seconds
    b = GroundTruthExecutor(m).run(avus, 64).total_seconds
    assert a == b


def test_noise_flag_removes_noise(avus):
    m = make_machine()
    clean = GroundTruthExecutor(m, noise=False).run(avus, 64)
    noisy = GroundTruthExecutor(m, noise=True).run(avus, 64)
    assert clean.noise_factor == 1.0
    assert noisy.noise_factor != 1.0
    assert noisy.total_seconds == pytest.approx(
        clean.total_seconds * noisy.noise_factor
    )


def test_noise_bounded_by_three_sigma(avus):
    for name in ("A", "B", "C", "D", "E"):
        m = make_machine(name=name, noise=0.08)
        r = GroundTruthExecutor(m).run(avus, 32)
        assert abs(r.noise_factor - 1.0) <= 3 * 0.08 + 1e-12


def test_faster_memory_runs_faster(avus):
    slow = make_machine(name="SLOW", mem_bw=1.0)
    fast = make_machine(name="FAST", mem_bw=4.0)
    t_slow = GroundTruthExecutor(slow, noise=False).run(avus, 64).total_seconds
    t_fast = GroundTruthExecutor(fast, noise=False).run(avus, 64).total_seconds
    assert t_fast < t_slow


def test_port_factor_stable_across_cpu_counts(avus):
    """The compiler effect must be one factor per (machine, app family)."""
    ex = GroundTruthExecutor(make_machine())
    assert ex._port_factor(avus) == ex._port_factor(avus)
    large = get_application("AVUS-large")
    # same family, same testcase key differs -> factors may differ
    assert ex._port_factor(avus) != ex._port_factor(large)


def test_cannot_run_beyond_system_size(avus):
    small = make_machine(cpus=16)
    with pytest.raises(ValueError, match="cannot run"):
        GroundTruthExecutor(small).run(avus, 64)
    with pytest.raises(ValueError):
        GroundTruthExecutor(small).run(avus, 0)


def test_single_rank_has_no_comm(avus):
    r = GroundTruthExecutor(make_machine(), noise=False).run(avus, 1)
    assert r.comm_seconds == 0.0


def test_block_timings_overlap_bounds(avus):
    """Block time lies between max(fp, mem) and fp + mem."""
    r = GroundTruthExecutor(make_machine(), noise=False).run(avus, 64)
    for bt in r.blocks:
        assert bt.seconds >= max(bt.fp_seconds, bt.mem_seconds) - 1e-12
        assert bt.seconds <= bt.fp_seconds + bt.mem_seconds + 1e-12


def test_observed_time_wrapper(avus):
    m = get_machine("ARL_Opteron")
    assert observed_time(m, avus, 64) > 0


def test_dependency_slows_execution(avus):
    """Zeroing all dependency fractions must speed the app up."""
    import dataclasses

    free_blocks = tuple(
        dataclasses.replace(b, dependency_fraction=0.0) for b in avus.blocks
    )
    free_app = dataclasses.replace(avus, blocks=free_blocks)
    m = make_machine()
    t_dep = GroundTruthExecutor(m, noise=False).run(avus, 64).total_seconds
    t_free = GroundTruthExecutor(m, noise=False).run(free_app, 64).total_seconds
    assert t_free < t_dep
