"""End-to-end tests for the sensitivity sweep, the catalog CLI and
``GET /catalog`` — everything the generated-universe surface promises.

The sweeps here run tiny universes (tens of cells) through the full
:func:`repro.study.runner.run_study` path, so they exercise exactly the
machinery the thousand-cell CI smoke uses, just smaller.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.scenarios import CATALOG, mount_universe, unmount_universe
from repro.scenarios.sensitivity import SensitivityConfig, run_sensitivity


@pytest.fixture(autouse=True)
def _pristine_catalog():
    unmount_universe()
    yield
    unmount_universe()


TINY = dict(family="mixed", seed=7, cells=40, sample_size=64)


def test_run_sensitivity_structure_and_restoration():
    config = SensitivityConfig(
        noise_amplitudes=(0.0, 0.1),
        calibration_errors=(0.0, 0.1),
        metrics=(1, 8),
        **TINY,
    )
    result = run_sensitivity(config)
    assert CATALOG.universe is None  # the sweep restores the catalog
    assert result.cell_count >= 40
    assert [p.amplitude for p in result.noise] == [0.0, 0.1]
    assert [p.amplitude for p in result.calibration] == [0.0, 0.1]
    zero = result.zero_noise()
    for metric in (1, 8):
        stats = zero.metrics[metric]
        assert -1.0 <= stats.kendall_tau <= 1.0
        assert stats.cases > 0
        assert stats.mean_abs_error >= 0.0
    doc = result.to_dict()
    assert doc["universe_digest"] == result.universe_digest
    assert json.loads(json.dumps(doc)) == doc  # JSON-clean


def test_zero_noise_point_is_noise_free():
    """Amplitude 0 must mean *exactly* the noiseless ground truth: the
    perfect-fidelity metric would see identical ranks on repeat runs."""
    config = SensitivityConfig(
        noise_amplitudes=(0.0,), calibration_errors=(), metrics=(8,), **TINY
    )
    a = run_sensitivity(config)
    b = run_sensitivity(config)
    assert a.to_dict() == b.to_dict()


def test_sensitivity_rejects_bad_config():
    with pytest.raises(KeyError):
        SensitivityConfig(family="galaxy")
    with pytest.raises(ValueError):
        SensitivityConfig(sample_size=16)
    with pytest.raises(ValueError):
        SensitivityConfig(noise_amplitudes=(1.5,))


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
def test_cli_catalog_gen_list_show_roundtrip(tmp_path, capsys):
    out = tmp_path / "u.toml"
    assert main(["catalog", "gen", "--family", "numa", "--seed", "3",
                 "--cells", "30", "--out", str(out)]) == 0
    text = out.read_text()
    assert "[[machine]]" in text and "[[application]]" in text
    capsys.readouterr()

    assert main(["catalog", "list", "--universe", str(out)]) == 0
    listing = capsys.readouterr().out
    assert "GEN-numa-3-M000" in listing and "universe" in listing

    assert main(["catalog", "show", "--id", "NAVO_690"]) == 0
    shown = capsys.readouterr().out
    assert 'name = "NAVO_690"' in shown

    assert main(["catalog", "show", "--id", "NAVO_69"]) == 11  # UnknownIdError
    assert "nearest" in capsys.readouterr().err


def test_cli_catalog_export_snapshots_everything(capsys):
    assert main(["catalog", "export"]) == 0
    text = capsys.readouterr().out
    assert text.count("[[machine]]") == 11
    assert text.count("[[application]]") == 5


def test_cli_study_over_universe(capsys):
    assert main(["table4", "--universe", "mixed:7:40", "--metrics", "8",
                 "--no-noise"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert CATALOG.universe_ref == "mixed:7:40"  # CLI keeps the mount


def test_cli_sensitivity_merges_report(tmp_path, capsys):
    report = tmp_path / "bench.json"
    report.write_text(json.dumps({"existing": 1}))
    assert main([
        "sensitivity", "--family", "mixed", "--seed", "7", "--cells", "40",
        "--amplitudes", "0,0.1", "--calibration-errors", "0",
        "--metrics", "8", "--report", str(report),
    ]) == 0
    out = capsys.readouterr().out
    assert "noise amplitude sweep" in out
    doc = json.loads(report.read_text())
    assert doc["existing"] == 1  # merge, not overwrite
    assert doc["sensitivity"]["family"] == "mixed"
    assert [p["amplitude"] for p in doc["sensitivity"]["noise"]] == [0.0, 0.1]


# ----------------------------------------------------------------------
# GET /catalog
# ----------------------------------------------------------------------
def _get(srv, path):
    port = srv.server_address[1]
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as err:
        return err.code, json.load(err)


def test_httpd_catalog_route_reflects_mounted_universe():
    from repro.serve.httpd import make_server
    from repro.serve.service import PredictionService

    universe = mount_universe("mixed:7:40")
    svc = PredictionService(noise=False)
    srv = make_server("127.0.0.1", 0, svc)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        status, body = _get(srv, "/catalog")
        assert status == 200
        assert body["base_system"] == "NAVO_690"
        assert body["universe"]["ref"] == "mixed:7:40"
        assert body["universe"]["digest"] == universe.digest()
        for machine in universe.machines:
            assert machine.name in body["machines"]
        assert 9 in body["metrics"]

        # 400s must suggest mounted ids, not just built-ins.
        status, body = _get(
            srv,
            "/predict?application=AVUS-standard&cpus=32&machine=GEN-mixed-7-M00",
        )
        assert status == 400
        assert any(n.startswith("GEN-mixed-7-M00") for n in body["nearest"])

        status, body = _get(srv, "/nope")
        assert status == 404 and "/catalog" in body["routes"]
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)
        svc.drain()
