"""Tests for argument validation helpers."""

import pytest

from repro.util.validation import check_fraction, check_in, check_positive


def test_check_positive_accepts():
    assert check_positive("x", 1.5) == 1.5


def test_check_positive_rejects_zero_by_default():
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive("x", 0)


def test_check_positive_allow_zero():
    assert check_positive("x", 0, allow_zero=True) == 0.0
    with pytest.raises(ValueError):
        check_positive("x", -1, allow_zero=True)


def test_check_positive_rejects_nan():
    with pytest.raises(ValueError, match="NaN"):
        check_positive("x", float("nan"))


def test_check_fraction_bounds():
    assert check_fraction("f", 0.0) == 0.0
    assert check_fraction("f", 1.0) == 1.0
    with pytest.raises(ValueError):
        check_fraction("f", 1.0001)
    with pytest.raises(ValueError):
        check_fraction("f", -0.1)


def test_check_in():
    assert check_in("mode", "a", ("a", "b")) == "a"
    with pytest.raises(ValueError, match="mode"):
        check_in("mode", "c", ("a", "b"))
