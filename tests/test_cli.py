"""Tests for the command-line front end."""

import pytest

from repro.cli import main


def test_table4(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "Figure 2" in out
    assert "HPL+MAPS+NET+DEP" in out


def test_table5(capsys):
    assert main(["table5"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out
    assert "OVERALL" in out


def test_figure1(capsys):
    assert main(["figure1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "ARL_Opteron" in out


def test_probes(capsys):
    assert main(["probes"]) == 0
    out = capsys.readouterr().out
    assert "NAVO_690" in out


def test_csv(capsys):
    assert main(["csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("application,cpus,system,metric")


def test_appendix(capsys):
    assert main(["appendix"]) == 0
    out = capsys.readouterr().out
    assert "AVUS-standard" in out and "RFCTH-standard" in out


def test_figures(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Error assessment for HYCOM-standard" in out


def test_cost(capsys):
    assert main(["cost"]) == 0
    out = capsys.readouterr().out
    assert "Effort vs accuracy" in out
    assert "tracing" in out


def test_default_artifact_is_table4(capsys):
    assert main([]) == 0
    assert "Table 4" in capsys.readouterr().out


def test_bad_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["table99"])


# ---------------------------------------------------------------------------
# error handling: taxonomy exit codes, Ctrl-C, resilience flags
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "exc_name, code",
    [
        ("TraceCorruptError", 3),
        ("WorkerCrashError", 4),
        ("ChunkTimeoutError", 5),
        ("StudyAbortedError", 6),
        ("CheckpointError", 7),
    ],
)
def test_repro_errors_map_to_exit_codes(monkeypatch, capsys, exc_name, code):
    import repro.cli as cli
    from repro.core import errors

    exc = getattr(errors, exc_name)("synthetic failure")

    def boom(*args, **kwargs):
        raise exc

    monkeypatch.setattr(cli, "run_study", boom)
    assert main(["table4"]) == code
    err = capsys.readouterr().err
    assert err == f"repro-study: error: synthetic failure\n"  # one line, no traceback


def test_keyboard_interrupt_exits_130(monkeypatch, capsys):
    import repro.cli as cli

    def interrupted(*args, **kwargs):
        raise KeyboardInterrupt

    shutdowns = []
    monkeypatch.setattr(cli, "run_study", interrupted)
    monkeypatch.setattr(cli, "shutdown_pool", lambda: shutdowns.append(True))
    assert main(["table4"]) == 130
    assert shutdowns == [True]  # the worker pool must not outlive Ctrl-C
    assert "interrupted" in capsys.readouterr().err


def test_inject_faults_flag_survives_chaos(capsys):
    assert (
        main(["table4", "--inject-faults", "crash=0.25,seed=3", "--max-retries", "8"])
        == 0
    )
    captured = capsys.readouterr()
    assert "Table 4" in captured.out
    assert "quarantined" not in captured.err  # retries absorbed every crash


def test_exhausted_retries_warn_on_stderr(capsys):
    # crash rate 1.0 with no retries quarantines every chunk: each one warns,
    # and the fully-empty study aborts with StudyAbortedError's exit code.
    assert (
        main(["table4", "--inject-faults", "crash=1.0,seed=1", "--max-retries", "0"])
        == 6
    )
    captured = capsys.readouterr()
    assert "quarantined after 1 attempt(s): WorkerCrashError" in captured.err
    assert "all 5 study chunks were quarantined" in captured.err


def test_checkpoint_flag_journals_and_resumes(tmp_path, capsys):
    ck = tmp_path / "study.ckpt"
    assert main(["table4", "--checkpoint", str(ck)]) == 0
    first = capsys.readouterr().out
    assert ck.exists()
    assert main(["table4", "--checkpoint", str(ck)]) == 0
    assert capsys.readouterr().out == first  # replay is byte-identical


def test_bad_fault_spec_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["table4", "--inject-faults", "bogus=1"])
    assert "bad fault spec" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# store maintenance subcommand
# ---------------------------------------------------------------------------


def _seed_legacy_store(root):
    """Populate a cache dir with legacy JSON entries plus one corrupt file."""
    import json

    from repro.apps.suite import get_application
    from repro.machines import get_machine
    from repro.probes.suite import probe_machine
    from repro.tracing.metasim import trace_application
    from repro.tracing.serialize import probes_to_json, trace_to_json
    from repro.tracing.store import STORE_SCHEMA_VERSION, TraceStore, _checksum

    store = TraceStore(root)
    base = get_machine("NAVO_P3")
    trace = trace_application(get_application("AVUS-standard"), 64, base, use_cache=False)
    probes = probe_machine(base, use_cache=False)

    def envelope(payload):
        return json.dumps(
            {
                "kind": "store-entry",
                "store_schema": STORE_SCHEMA_VERSION,
                "checksum": _checksum(payload),
                "payload": payload,
            }
        )

    stem = store._trace_stem(
        trace.application, trace.cpus, trace.base_machine, trace.sample_size,
        False, "analytic",
    )
    stem.with_suffix(".json").write_text(envelope(trace_to_json(trace)))
    store._probes_stem(base).with_suffix(".json").write_text(
        envelope(probes_to_json(probes))
    )
    (store.traces_dir / "deadbeef.json").write_text("{not json")
    return trace, base


def test_store_info_reports_format_and_counts(tmp_path, capsys):
    _seed_legacy_store(tmp_path)
    assert main(["store", "info", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "binary format" in out and "v1" in out
    assert "2 legacy JSON" in out  # real trace + the corrupt decoy
    assert "0 binary" in out


def test_store_migrate_converts_and_heals(tmp_path, capsys):
    trace, base = _seed_legacy_store(tmp_path)
    assert main(["store", "migrate", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "2 entries converted to binary" in out
    assert "1 corrupt entry invalidated" in out

    # the migrated entries are loadable and exact; no legacy files remain
    from repro.tracing.store import TraceStore

    store = TraceStore(tmp_path)
    reloaded = store.load_trace(
        trace.application, trace.cpus, trace.base_machine, trace.sample_size
    )
    assert reloaded == trace
    assert store.load_probes(base) is not None
    assert not list(tmp_path.rglob("*.json"))

    # a second migrate is a no-op
    assert main(["store", "migrate", "--cache-dir", str(tmp_path)]) == 0
    assert "0 entries converted" in capsys.readouterr().out


def test_store_requires_action_and_cache_dir(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["store", "--cache-dir", str(tmp_path)])
    assert "expected an action" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["store", "migrate"])
    assert "--cache-dir is required" in capsys.readouterr().err


def test_store_action_rejected_for_other_artifacts(capsys):
    with pytest.raises(SystemExit):
        main(["table4", "migrate"])
    assert (
        "only applies to the 'store', 'events', 'sim' or 'catalog' artifact"
        in capsys.readouterr().err
    )


def test_serve_boots_answers_and_stops(capsys, monkeypatch):
    """The serve subcommand binds, answers /predict, and closes cleanly."""
    import json
    import threading
    import urllib.request

    from repro.serve import httpd

    booted = threading.Event()
    servers = []
    real_make = httpd.make_server

    def capture(host, port, service):
        srv = real_make(host, port, service)
        servers.append(srv)
        booted.set()
        return srv

    monkeypatch.setattr(httpd, "make_server", capture)
    rc = {}

    def run():
        rc["code"] = main(
            ["serve", "--port", "0", "--no-noise", "--deadline", "2.0"]
        )

    thread = threading.Thread(target=run)
    thread.start()
    try:
        assert booted.wait(10)
        port = servers[0].server_address[1]
        url = (
            f"http://127.0.0.1:{port}/predict?application=AVUS-standard"
            "&cpus=64&machine=ARL_Xeon&metric=3"
        )
        with urllib.request.urlopen(url) as resp:
            body = json.load(resp)
        assert body["served_metric"] == 3
    finally:
        servers[0].shutdown()
        thread.join(timeout=10)
    assert rc["code"] == 0


# ----------------------------------------------------------------------
# events: tail / verify / rebuild, SIGTERM drain
# ----------------------------------------------------------------------
def _seed_events(root):
    from repro.events import EventLog, ProbeCompleted

    log = EventLog(root, writer="serve")
    log.append(ProbeCompleted(machine="m1", key="k1"))
    log.append(ProbeCompleted(machine="m2", key="k2"))
    log.close()


def test_events_tail_verify_rebuild(tmp_path, capsys):
    import json

    ev = tmp_path / "ev"
    _seed_events(ev)
    assert main(["events", "tail", "--events-dir", str(ev), "--limit", "1"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["kind"] == "probe-completed"
    assert main(["events", "verify", "--events-dir", str(ev)]) == 0
    assert "2 frame(s)" in capsys.readouterr().out
    assert main(["events", "rebuild", "--events-dir", str(ev)]) == 0
    views = json.loads(capsys.readouterr().out)
    assert views["stats"]["by_kind"] == {"probe-completed": 2}


def test_events_verify_damage_exits_13(tmp_path, capsys):
    ev = tmp_path / "ev"
    _seed_events(ev)
    segment = next(ev.glob("events-*.jsonl"))
    raw = segment.read_bytes()
    segment.write_bytes(raw[:-5])  # torn tail: killed mid-append
    assert main(["events", "verify", "--events-dir", str(ev)]) == 13
    captured = capsys.readouterr()
    assert "DAMAGED" in captured.out
    assert "damaged stream" in captured.err


def test_events_requires_action_and_dir(capsys):
    with pytest.raises(SystemExit):
        main(["events"])
    assert "expected an action" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["events", "verify"])
    assert "--events-dir is required" in capsys.readouterr().err


def test_serve_sigterm_drains_and_exits_zero(tmp_path):
    """`kill -TERM` on a serving process finishes in-flight work, flushes
    the event log, and exits 0 (the graceful-drain contract)."""
    import json
    import os
    import re
    import signal
    import subprocess
    import sys
    import urllib.request
    from pathlib import Path

    import repro
    from repro.events import verify_dir

    env = {
        **os.environ,
        "PYTHONPATH": str(Path(repro.__file__).resolve().parents[1]),
    }
    events_dir = tmp_path / "ev"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--no-noise",
            "--events-dir", str(events_dir),
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = proc.stderr.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
        assert match, f"no address in banner: {banner!r}"
        port = int(match.group(1))
        url = (
            f"http://127.0.0.1:{port}/predict?application=AVUS-standard"
            "&cpus=64&machine=ARL_Xeon&metric=3"
        )
        with urllib.request.urlopen(url) as resp:
            assert json.load(resp)["served_metric"] == 3
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait()
    report = verify_dir(events_dir)
    assert report["ok"] and report["frames"] >= 1
