"""Tests for the command-line front end."""

import pytest

from repro.cli import main


def test_table4(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "Figure 2" in out
    assert "HPL+MAPS+NET+DEP" in out


def test_table5(capsys):
    assert main(["table5"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out
    assert "OVERALL" in out


def test_figure1(capsys):
    assert main(["figure1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "ARL_Opteron" in out


def test_probes(capsys):
    assert main(["probes"]) == 0
    out = capsys.readouterr().out
    assert "NAVO_690" in out


def test_csv(capsys):
    assert main(["csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("application,cpus,system,metric")


def test_appendix(capsys):
    assert main(["appendix"]) == 0
    out = capsys.readouterr().out
    assert "AVUS-standard" in out and "RFCTH-standard" in out


def test_figures(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Error assessment for HYCOM-standard" in out


def test_cost(capsys):
    assert main(["cost"]) == 0
    out = capsys.readouterr().out
    assert "Effort vs accuracy" in out
    assert "tracing" in out


def test_default_artifact_is_table4(capsys):
    assert main([]) == 0
    assert "Table 4" in capsys.readouterr().out


def test_bad_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["table99"])
