"""Tests for the command-line front end."""

import pytest

from repro.cli import main


def test_table4(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "Figure 2" in out
    assert "HPL+MAPS+NET+DEP" in out


def test_table5(capsys):
    assert main(["table5"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out
    assert "OVERALL" in out


def test_figure1(capsys):
    assert main(["figure1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "ARL_Opteron" in out


def test_probes(capsys):
    assert main(["probes"]) == 0
    out = capsys.readouterr().out
    assert "NAVO_690" in out


def test_csv(capsys):
    assert main(["csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("application,cpus,system,metric")


def test_appendix(capsys):
    assert main(["appendix"]) == 0
    out = capsys.readouterr().out
    assert "AVUS-standard" in out and "RFCTH-standard" in out


def test_figures(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Error assessment for HYCOM-standard" in out


def test_cost(capsys):
    assert main(["cost"]) == 0
    out = capsys.readouterr().out
    assert "Effort vs accuracy" in out
    assert "tracing" in out


def test_default_artifact_is_table4(capsys):
    assert main([]) == 0
    assert "Table 4" in capsys.readouterr().out


def test_bad_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["table99"])


# ---------------------------------------------------------------------------
# error handling: taxonomy exit codes, Ctrl-C, resilience flags
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "exc_name, code",
    [
        ("TraceCorruptError", 3),
        ("WorkerCrashError", 4),
        ("ChunkTimeoutError", 5),
        ("StudyAbortedError", 6),
        ("CheckpointError", 7),
    ],
)
def test_repro_errors_map_to_exit_codes(monkeypatch, capsys, exc_name, code):
    import repro.cli as cli
    from repro.core import errors

    exc = getattr(errors, exc_name)("synthetic failure")

    def boom(*args, **kwargs):
        raise exc

    monkeypatch.setattr(cli, "run_study", boom)
    assert main(["table4"]) == code
    err = capsys.readouterr().err
    assert err == f"repro-study: error: synthetic failure\n"  # one line, no traceback


def test_keyboard_interrupt_exits_130(monkeypatch, capsys):
    import repro.cli as cli

    def interrupted(*args, **kwargs):
        raise KeyboardInterrupt

    shutdowns = []
    monkeypatch.setattr(cli, "run_study", interrupted)
    monkeypatch.setattr(cli, "shutdown_pool", lambda: shutdowns.append(True))
    assert main(["table4"]) == 130
    assert shutdowns == [True]  # the worker pool must not outlive Ctrl-C
    assert "interrupted" in capsys.readouterr().err


def test_inject_faults_flag_survives_chaos(capsys):
    assert (
        main(["table4", "--inject-faults", "crash=0.25,seed=3", "--max-retries", "8"])
        == 0
    )
    captured = capsys.readouterr()
    assert "Table 4" in captured.out
    assert "quarantined" not in captured.err  # retries absorbed every crash


def test_exhausted_retries_warn_on_stderr(capsys):
    # crash rate 1.0 with no retries quarantines every chunk: each one warns,
    # and the fully-empty study aborts with StudyAbortedError's exit code.
    assert (
        main(["table4", "--inject-faults", "crash=1.0,seed=1", "--max-retries", "0"])
        == 6
    )
    captured = capsys.readouterr()
    assert "quarantined after 1 attempt(s): WorkerCrashError" in captured.err
    assert "all 5 study chunks were quarantined" in captured.err


def test_checkpoint_flag_journals_and_resumes(tmp_path, capsys):
    ck = tmp_path / "study.ckpt"
    assert main(["table4", "--checkpoint", str(ck)]) == 0
    first = capsys.readouterr().out
    assert ck.exists()
    assert main(["table4", "--checkpoint", str(ck)]) == 0
    assert capsys.readouterr().out == first  # replay is byte-identical


def test_bad_fault_spec_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["table4", "--inject-faults", "bogus=1"])
    assert "bad fault spec" in capsys.readouterr().err


def test_serve_boots_answers_and_stops(capsys, monkeypatch):
    """The serve subcommand binds, answers /predict, and closes cleanly."""
    import json
    import threading
    import urllib.request

    from repro.serve import httpd

    booted = threading.Event()
    servers = []
    real_make = httpd.make_server

    def capture(host, port, service):
        srv = real_make(host, port, service)
        servers.append(srv)
        booted.set()
        return srv

    monkeypatch.setattr(httpd, "make_server", capture)
    rc = {}

    def run():
        rc["code"] = main(
            ["serve", "--port", "0", "--no-noise", "--deadline", "2.0"]
        )

    thread = threading.Thread(target=run)
    thread.start()
    try:
        assert booted.wait(10)
        port = servers[0].server_address[1]
        url = (
            f"http://127.0.0.1:{port}/predict?application=AVUS-standard"
            "&cpus=64&machine=ARL_Xeon&metric=3"
        )
        with urllib.request.urlopen(url) as resp:
            body = json.load(resp)
        assert body["served_metric"] == 3
    finally:
        servers[0].shutdown()
        thread.join(timeout=10)
    assert rc["code"] == 0
