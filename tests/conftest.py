"""Shared fixtures: machines, applications, probes, and one full study run.

The full study takes a couple of seconds; session scope shares it across
every test that inspects study-level behaviour.
"""

from __future__ import annotations

import pytest

from repro.apps.suite import get_application
from repro.machines.registry import BASE_SYSTEM, get_machine
from repro.machines.spec import (
    MachineSpec,
    MemoryLevelSpec,
    NetworkSpec,
    ProcessorSpec,
)
from repro.probes.suite import probe_machine
from repro.study.runner import run_study
from repro.util.units import GB, KIB, MIB


@pytest.fixture(scope="session")
def base_machine():
    """The NAVO p690 base system."""
    return get_machine(BASE_SYSTEM)


@pytest.fixture(scope="session")
def opteron():
    """A target with small caches and strong main memory."""
    return get_machine("ARL_Opteron")


@pytest.fixture(scope="session")
def power3():
    """A target with big L2 and weak, high-latency main memory."""
    return get_machine("NAVO_P3")


@pytest.fixture(scope="session")
def avus():
    """AVUS standard test case."""
    return get_application("AVUS-standard")


@pytest.fixture(scope="session")
def rfcth():
    """RFCTH standard test case (random-access heavy)."""
    return get_application("RFCTH-standard")


@pytest.fixture(scope="session")
def base_probes(base_machine):
    """Probe suite of the base system."""
    return probe_machine(base_machine)


@pytest.fixture(scope="session")
def opteron_probes(opteron):
    """Probe suite of the Opteron."""
    return probe_machine(opteron)


@pytest.fixture(scope="session")
def full_study():
    """The paper's complete 145-run study (shared across tests)."""
    return run_study()


def make_machine(
    *,
    name: str = "TEST_BOX",
    clock_ghz: float = 2.0,
    flops_per_cycle: float = 2.0,
    ilp: float = 0.8,
    l1_kib: float = 32,
    l2_mib: float = 2,
    l1_bw: float = 20.0,
    l2_bw: float = 8.0,
    mem_bw: float = 2.0,
    mem_lat_ns: float = 120.0,
    mlp: float = 6.0,
    net_lat_us: float = 5.0,
    net_bw_gbs: float = 1.0,
    cpus: int = 1024,
    overlap: float = 0.7,
    noise: float = 0.05,
) -> MachineSpec:
    """A small, fully parameterised machine for unit tests."""
    return MachineSpec(
        name=name,
        architecture="TEST_ARCH",
        vendor="TEST",
        model="Box",
        cpus=cpus,
        processor=ProcessorSpec(
            clock_ghz=clock_ghz,
            flops_per_cycle=flops_per_cycle,
            ilp_efficiency=ilp,
        ),
        memory_levels=(
            MemoryLevelSpec("L1", l1_kib * KIB, l1_bw * GB, 2e-9, 64, mlp=4.0),
            MemoryLevelSpec("L2", l2_mib * MIB, l2_bw * GB, 10e-9, 64, mlp=mlp),
            MemoryLevelSpec("MEM", float("inf"), mem_bw * GB, mem_lat_ns * 1e-9, 64, mlp=mlp),
        ),
        network=NetworkSpec("TestNet", net_lat_us * 1e-6, net_bw_gbs * GB),
        overlap_factor=overlap,
        noise_level=noise,
    )


@pytest.fixture()
def test_machine():
    """Fresh small machine per test."""
    return make_machine()
