"""Tests for the HPL / STREAM / GUPS probes and the cached suite."""

import pytest

from repro.machines.registry import MACHINES, get_machine
from repro.probes.gups import run_gups
from repro.probes.hpl import run_hpl
from repro.probes.stream import run_stream
from repro.probes.suite import clear_probe_cache, probe_machine

from tests.conftest import make_machine


def test_hpl_rmax_below_peak_above_floor():
    for spec in MACHINES.values():
        result = run_hpl(spec)
        assert 0.3 * spec.peak_flops < result.rmax_flops < spec.peak_flops
        assert 0.3 < result.efficiency < 0.95


def test_hpl_rejects_tiny_matrix(test_machine):
    with pytest.raises(ValueError):
        run_hpl(test_machine, n=16)


def test_hpl_era_realistic_efficiencies():
    """Itanium (Altix) and Opteron led Rmax/Rpeak; Power4 trailed."""
    eff = {name: run_hpl(m).efficiency for name, m in MACHINES.items()}
    assert eff["ARL_Altix"] > eff["NAVO_690"]
    assert eff["ARL_Opteron"] > eff["NAVO_690"]


def test_stream_is_main_memory_class_bandwidth(test_machine):
    result = run_stream(test_machine)
    mem_bw = test_machine.main_memory.bandwidth
    # at 4x cache with residual hits STREAM lands near (slightly above) mem bw
    assert mem_bw * 0.8 < result.triad < mem_bw * 2.0


def test_stream_kernels_all_reported(test_machine):
    r = run_stream(test_machine)
    for v in (r.copy, r.scale, r.add, r.triad):
        assert v > 0
    assert r.array_bytes >= 4 * test_machine.caches[-1].size_bytes


def test_stream_copy_not_slower_than_triad(test_machine):
    r = run_stream(test_machine)
    assert r.copy >= r.triad * 0.9


def test_gups_latency_bound(test_machine):
    r = run_gups(test_machine)
    mem = test_machine.main_memory
    expected_bw = min(8.0 * mem.mlp / mem.latency, mem.bandwidth)
    assert r.random_bandwidth == pytest.approx(expected_bw, rel=0.25)
    assert r.gups == pytest.approx(r.random_bandwidth / 16.0 / 1e9)


def test_gups_table_exceeds_caches(test_machine):
    r = run_gups(test_machine)
    assert r.table_bytes >= 8 * test_machine.caches[-1].size_bytes


def test_gups_much_slower_than_stream(test_machine):
    assert run_gups(test_machine).random_bandwidth < run_stream(test_machine).triad


def test_paper_narrative_opteron_wins_gups():
    gups = {name: run_gups(m).gups for name, m in MACHINES.items()}
    assert max(gups, key=gups.get) == "ARL_Opteron"
    assert min(gups, key=gups.get) in ("MHPCC_P3", "NAVO_P3")


def test_probe_suite_caches():
    m = get_machine("ARL_Xeon")
    a = probe_machine(m)
    b = probe_machine(m)
    assert a is b
    clear_probe_cache()
    c = probe_machine(m)
    assert c is not a
    assert c.hpl.rmax_flops == a.hpl.rmax_flops  # deterministic probes


def test_suite_summary_keys():
    summary = probe_machine(get_machine("NAVO_655")).summary()
    assert "HPL Rmax (GF/s)" in summary
    assert all(v > 0 for v in summary.values())


def test_simple_rate_lookup():
    probes = probe_machine(get_machine("NAVO_655"))
    assert probes.simple_rate("hpl") == probes.hpl.rmax_flops
    assert probes.simple_rate("stream") == probes.stream.triad
    assert probes.simple_rate("gups") == probes.gups.random_bandwidth
    with pytest.raises(KeyError):
        probes.simple_rate("linpack")


# ----------------------------------------------------------------------
# cooperative deadlines (the serving path's abandon points)
# ----------------------------------------------------------------------
class _SpentClock:
    """Monotonic clock that jumps past any budget after the first read."""

    def __init__(self):
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        return 0.0 if self.reads == 1 else 1e9


def test_probe_abandons_between_benchmarks_on_expired_deadline(test_machine):
    from repro.core.errors import DeadlineExceededError
    from repro.util.deadline import Deadline

    deadline = Deadline(1.0, clock=_SpentClock(), stage="probe")
    with pytest.raises(DeadlineExceededError) as exc_info:
        probe_machine(test_machine, deadline=deadline)
    assert exc_info.value.stage == "probe"


def test_probe_cache_hit_ignores_expired_deadline(test_machine):
    from repro.util.deadline import Deadline

    probe_machine(test_machine)  # warm the in-memory cache
    deadline = Deadline(1.0, clock=_SpentClock(), stage="probe")
    probes = probe_machine(test_machine, deadline=deadline)
    assert probes.hpl.rmax_flops > 0
