"""Tests for unit constants and formatting."""

import pytest

from repro.util.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    format_bytes,
    format_rate,
    format_seconds,
)


def test_constants_relationships():
    assert KB * 1000 == MB and MB * 1000 == GB
    assert KIB * 1024 == MIB and MIB * 1024 == GIB
    assert GIB > GB  # binary vs decimal


def test_format_bytes_suffixes():
    assert format_bytes(512) == "512 B"
    assert format_bytes(64 * KIB) == "64.0 KiB"
    assert format_bytes(3 * MIB) == "3.0 MiB"
    assert format_bytes(2 * GIB) == "2.0 GiB"


def test_format_rate_suffixes():
    assert format_rate(500.0) == "500.0 B/s"
    assert format_rate(2.5 * GB).endswith("GB/s")
    assert format_rate(3 * MB) == "3.00 MB/s"


def test_format_seconds_ranges():
    assert format_seconds(5e-6) == "5 us"
    assert format_seconds(0.25) == "250.0 ms"
    assert format_seconds(12.0) == "12.0 s"
    assert format_seconds(600) == "10.0 min"
    assert format_seconds(7500) == "2h05m"


def test_format_seconds_hour_rollover():
    # 7170 s is 119.5 min -> still minutes; 7200+ becomes h/m
    assert "min" in format_seconds(7100)
    assert format_seconds(10860) == "3h01m"
