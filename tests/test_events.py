"""The event-sourced durability core: log, snapshots, projections.

The contract under test is the one every consumer (study checkpoint,
trace store, serve fleet) builds on: an append-only checksummed log
whose recovery after *any* crash shape keeps exactly the undamaged
prefix, whose replay is deterministic, and whose projection views can
be rebuilt from the raw segments alone.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import CircuitOpenError
from repro.events import (
    EventLog,
    BreakerTripped,
    CellFailed,
    ChunkCompleted,
    PredictionEmitted,
    ProbeCompleted,
    ProjectionEngine,
    StoreInvalidated,
    TraceCaptured,
    UnknownEvent,
    WorkerDied,
    from_doc,
    replay_dir,
    verify_dir,
    writers_in,
)
from repro.events.log import _encode_frame
from repro.events.snapshot import load_snapshot


def _probe(i: int) -> ProbeCompleted:
    return ProbeCompleted(machine=f"m{i}", key=f"k{i}")


def _fill(log: EventLog, n: int) -> list[ProbeCompleted]:
    events = [_probe(i) for i in range(n)]
    for event in events:
        log.append(event)
    return events


# ---------------------------------------------------------------------------
# basics
# ---------------------------------------------------------------------------
def test_append_replay_roundtrip(tmp_path):
    log = EventLog(tmp_path, writer="w", fsync="never")
    events = _fill(log, 5)
    log.close()
    replayed = list(EventLog(tmp_path, writer="w").replay())
    assert [e for _seq, e in replayed] == events
    assert [seq for seq, _e in replayed] == [1, 2, 3, 4, 5]
    assert verify_dir(tmp_path)["ok"]


def test_segment_rotation_and_multi_writer_isolation(tmp_path):
    log_a = EventLog(tmp_path, writer="a", fsync="never", segment_bytes=200)
    log_b = EventLog(tmp_path, writer="b", fsync="never")
    _fill(log_a, 10)
    log_b.append(_probe(99))
    log_a.close()
    log_b.close()
    assert len(list(tmp_path.glob("events-a-*.jsonl"))) > 1
    assert writers_in(tmp_path) == ["a", "b"]
    merged = [(w, seq) for w, seq, _e in replay_dir(tmp_path)]
    assert merged == [("a", i) for i in range(1, 11)] + [("b", 1)]


def test_event_docs_roundtrip_and_unknown_kinds_survive():
    event = TraceCaptured(application="x", cpus=4, base_machine="b", key="k")
    assert from_doc(event.to_doc()) == event
    alien = from_doc({"kind": "from-the-future", "payload": 7})
    assert isinstance(alien, UnknownEvent)
    assert alien.original_kind == "from-the-future"


def test_torn_tail_is_truncated_on_reopen(tmp_path):
    log = EventLog(tmp_path, writer="w", fsync="never")
    _fill(log, 3)
    log.close()
    segment = next(tmp_path.glob("events-w-*.jsonl"))
    with segment.open("a") as fh:
        fh.write('{"seq": 4, "event": {"kind": "probe-comp')  # torn write
    reopened = EventLog(tmp_path, writer="w", fsync="never")
    assert reopened.last_seq == 3
    reopened.append(_probe(3))  # the log is writable again, seq continues
    assert reopened.last_seq == 4
    reopened.close()
    assert verify_dir(tmp_path)["ok"]


def test_duplicate_append_is_deduplicated(tmp_path):
    log = EventLog(tmp_path, writer="w", fsync="never")
    _fill(log, 2)
    log.close()
    segment = next(tmp_path.glob("events-w-*.jsonl"))
    last_line = segment.read_text().splitlines()[-1]
    with segment.open("a") as fh:
        fh.write(last_line + "\n")  # retry after a partial fsync
    reopened = EventLog(tmp_path, writer="w")
    assert reopened.last_seq == 2
    assert len(list(reopened.replay())) == 2
    reopened.close()


def test_conflicting_seq_reuse_is_damage(tmp_path):
    log = EventLog(tmp_path, writer="w", fsync="never")
    _fill(log, 2)
    log.close()
    segment = next(tmp_path.glob("events-w-*.jsonl"))
    with segment.open("a") as fh:
        fh.write(_encode_frame(2, _probe(77)) + "\n")  # same seq, new payload
    assert EventLog(tmp_path, writer="w").last_seq == 2
    assert [seq for seq, _e in EventLog(tmp_path, writer="w").replay()] == [1, 2]


def test_compaction_snapshots_and_replay_resumes_after(tmp_path):
    log = EventLog(tmp_path, writer="w", fsync="never", segment_bytes=150)
    _fill(log, 8)
    upto = log.compact({"note": "state-at-8"})
    assert upto == 8
    assert load_snapshot(tmp_path, "w") == (8, {"note": "state-at-8"})
    log.append(_probe(8))
    log.close()
    replayed = list(EventLog(tmp_path, writer="w").replay())
    # Pre-snapshot history is gone from disk; replay starts after it.
    assert [seq for seq, _e in replayed] == [9, 10]
    assert replayed[-1][1] == _probe(8)
    assert verify_dir(tmp_path)["ok"]


# ---------------------------------------------------------------------------
# hypothesis: crash shapes (satellite: fuzz the recovery path)
# ---------------------------------------------------------------------------
_CRASH_SHAPES = st.sampled_from(["torn_tail", "truncate", "bitflip", "duplicate"])


@settings(max_examples=60, deadline=None)
@given(
    n_events=st.integers(min_value=1, max_value=20),
    segment_bytes=st.sampled_from([120, 400, 1 << 20]),
    shape=_CRASH_SHAPES,
    amount=st.integers(min_value=1, max_value=80),
)
def test_crash_shapes_keep_only_a_valid_prefix(
    tmp_path_factory, n_events, segment_bytes, shape, amount
):
    """Any damage shape loses at most the damaged suffix, never the prefix,
    and replay after recovery is deterministic."""
    root = tmp_path_factory.mktemp("events")
    log = EventLog(root, writer="w", fsync="never", segment_bytes=segment_bytes)
    events = _fill(log, n_events)
    log.close()

    segments = sorted(root.glob("events-w-*.jsonl"))
    target = segments[-1]
    raw = target.read_bytes()
    if shape == "torn_tail":
        target.write_bytes(raw + b'{"seq": 999, "event": {"kind": "torn')
    elif shape == "truncate":
        target.write_bytes(raw[: max(0, len(raw) - amount)])
    elif shape == "bitflip":
        flip_at = min(len(raw) - 1, amount * 7 % max(1, len(raw)))
        flipped = bytes([raw[flip_at] ^ 0x01])
        target.write_bytes(raw[:flip_at] + flipped + raw[flip_at + 1 :])
    else:  # duplicate: re-append the last complete frame byte-identically
        lines = raw.splitlines(keepends=True)
        target.write_bytes(raw + lines[-1])

    replay_a = [(seq, e) for seq, e in EventLog(root, writer="w").replay()]
    replay_b = [(seq, e) for seq, e in EventLog(root, writer="w").replay()]
    assert replay_a == replay_b  # recovery is deterministic
    # Only a suffix may be lost: what remains is a contiguous prefix of
    # what was appended, and sealed segments are never touched.
    kept = [e for _seq, e in replay_a]
    assert kept == events[: len(kept)]
    assert [seq for seq, _e in replay_a] == list(range(1, len(kept) + 1))
    sealed_frames = sum(
        1 for seg in segments[:-1] for _line in seg.read_text().splitlines()
    )
    assert len(kept) >= sealed_frames
    if shape == "duplicate":
        assert kept == events  # byte-identical retries lose nothing
    # After recovery the stream accepts appends and verifies clean again.
    healed = EventLog(root, writer="w", fsync="never")
    healed.append(_probe(1000))
    healed.close()
    assert verify_dir(root)["ok"]


# ---------------------------------------------------------------------------
# projections
# ---------------------------------------------------------------------------
def _sample_stream(log: EventLog) -> None:
    log.append(TraceCaptured(application="app", cpus=4, base_machine="b", key="t1"))
    log.append(ProbeCompleted(machine="m1", key="p1"))
    log.append(
        PredictionEmitted(
            application="app",
            cpus=4,
            machine="m1",
            metric="conv_mem",
            predicted_seconds=2.5,
            degraded=False,
        )
    )
    log.append(CellFailed(application="app", error="Boom", message="x", attempts=2))
    log.append(StoreInvalidated(entry_kind="trace", entry="t1.bin", reason="bad"))
    log.append(BreakerTripped(stage="probe", failures=5, cooldown_seconds=1.5))
    log.append(WorkerDied(worker="w0", pid=123))


def test_projection_rebuild_matches_live_views(tmp_path):
    log = EventLog(tmp_path, writer="serve", fsync="never")
    engine = ProjectionEngine().attach(log)
    _sample_stream(log)
    log.close()
    rebuilt = ProjectionEngine.rebuild(tmp_path)
    assert rebuilt.views() == engine.views()
    stats = rebuilt.view("stats")
    assert stats["by_kind"]["prediction-emitted"] == 1
    failures = rebuilt.view("failures")
    assert failures["counts"]["worker-died"] == 1
    assert failures["counts"]["breaker-tripped"] == 1
    assert any(row["machine"] == "m1" for row in rebuilt.view("leaderboard"))


def test_projection_rebuild_from_snapshot_and_tail(tmp_path):
    log = EventLog(tmp_path, writer="serve", fsync="never")
    engine = ProjectionEngine().attach(log)
    _sample_stream(log)
    log.compact(engine.state())
    log.append(ProbeCompleted(machine="m2", key="p2"))
    log.close()
    rebuilt = ProjectionEngine.rebuild(tmp_path)
    live = engine.views()
    assert rebuilt.views() == live
    assert rebuilt.view("stats")["by_kind"]["probe-completed"] == 2


# ---------------------------------------------------------------------------
# service integration: /events/stats, breaker trips
# ---------------------------------------------------------------------------
def test_service_emits_predictions_and_breaker_trips(tmp_path):
    from repro.serve.service import PredictionService
    from repro.util.faults import FaultPlan

    service = PredictionService(
        noise=False,
        events=tmp_path / "events",
        faults=FaultPlan(seed=7, crash_rate=1.0),
        fault_stages=("convolve",),  # convolve crashes; simple rungs serve
    )
    served = service.predict("AVUS-standard", 32, "ARL_Xeon", 9)
    assert served.degraded  # the convolve rungs failed; a simple rung answered
    for _ in range(40):
        try:
            service.predict("AVUS-standard", 32, "ARL_Xeon", 9)
        except CircuitOpenError:  # pragma: no cover - breaker may refuse
            pass
    stats = service.events_stats()
    assert stats["enabled"]
    by_kind = stats["views"]["stats"]["by_kind"]
    assert by_kind.get("prediction-emitted", 0) >= 1
    assert by_kind.get("breaker-tripped", 0) >= 1
    service.drain()
    report = verify_dir(tmp_path / "events")
    assert report["ok"] and report["frames"] >= 2


def test_service_without_events_reports_disabled():
    from repro.serve.service import PredictionService

    service = PredictionService(noise=False)
    assert service.events_stats() == {"enabled": False}
    assert service.health()["events"] == {"enabled": False, "last_seq": 0}


def test_store_accounting_is_event_derived(tmp_path, base_machine, avus):
    from repro.tracing.metasim import trace_application
    from repro.tracing.store import TraceStore

    events = EventLog(tmp_path / "events", writer="store", fsync="never")
    store = TraceStore(tmp_path / "cache", events=events)
    trace = trace_application(avus, 64, base_machine, use_cache=False, store=store)
    store.flush()
    kinds = [e.to_doc()["kind"] for _w, _s, e in replay_dir(tmp_path / "events")]
    assert "trace-captured" in kinds
    (entry,) = list(store.traces_dir.iterdir())
    entry.write_bytes(b"garbage")  # corrupt the cached trace in place
    assert (
        store.load_trace(
            trace.application,
            trace.cpus,
            trace.base_machine,
            trace.sample_size,
            False,
        )
        is None
    )
    # The counter is a fold over the store's own emissions, not a
    # separate tally — invariant: counter == invalidation events logged.
    assert store.invalidated == 1
    kinds = [e.to_doc()["kind"] for _w, _s, e in replay_dir(tmp_path / "events")]
    assert kinds.count("store-invalidated") == store.invalidated
    store.close()
