"""End-to-end integration tests: the whole pipeline hangs together."""

import pytest

import repro
from repro import (
    PerformancePredictor,
    get_application,
    get_machine,
    observed_time,
    probe_machine,
    trace_application,
)


def test_public_api_importable():
    """Everything advertised in __all__ must resolve."""
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_flow():
    """The README quickstart, verbatim."""
    predictor = PerformancePredictor()
    t_pred = predictor.predict("AVUS-standard", "ARL_Opteron", cpus=64, metric=9)
    t_true = observed_time(
        get_machine("ARL_Opteron"), get_application("AVUS-standard"), 64
    )
    assert t_pred > 0 and t_true > 0
    # the headline claim: the best metric predicts within ~35%
    assert abs(t_pred - t_true) / t_true < 0.35


def test_probe_trace_convolve_by_hand():
    """Manual pipeline assembly equals the facade's answer."""
    from repro.core.convolver import Convolver, MemoryModel
    from repro.machines.registry import BASE_SYSTEM

    base = get_machine(BASE_SYSTEM)
    target = get_machine("ASC_SC45")
    app = get_application("HYCOM-standard")

    trace = trace_application(app, 96, base)
    conv = Convolver(MemoryModel.MAPS_DEP, network=True)
    c_target = conv.predict(trace, probe_machine(target)).total_seconds
    c_base = conv.predict(trace, probe_machine(base)).total_seconds

    predictor = PerformancePredictor()
    manual = c_target / c_base * predictor.base_time(app, 96)
    facade = predictor.predict(app, target, 96, metric=9)
    assert manual == pytest.approx(facade, rel=1e-9)


def test_predicted_rankings_beat_random(full_study):
    """Metric #9's cross-system ranking must strongly agree with truth."""
    from repro.study.analysis import ranking_quality

    quality = ranking_quality(full_study, 9)
    assert quality["kendall_tau"] > 0.6


def test_all_observed_runtimes_paper_magnitude(full_study):
    """Simulated times-to-solution land within 4x of the paper's appendix
    values wherever both exist (shape, not exactness)."""
    from repro.study.paper_data import PAPER_RUNTIMES

    for app, data in PAPER_RUNTIMES.items():
        for system, times in data["times"].items():
            for cpus, t_paper in zip(data["cpu_counts"], times):
                t_model = full_study.observed.get((app, system, cpus))
                if t_paper is None or t_model is None:
                    continue
                ratio = t_model / t_paper
                assert 0.25 < ratio < 4.0, (app, system, cpus, ratio)


def test_metric_error_ordering_reproduces_paper(full_study):
    """The three coarse tiers of Table 4: simple-FP worst, memory-simple
    middle, trace-convolution best."""
    table = {m: s.mean_abs for m, s in full_study.overall_table().items()}
    assert table[1] > 45  # HPL tier
    assert 25 < table[2] < 50 and 25 < table[3] < 45  # memory-simple tier
    assert table[6] < 30 and table[9] < 22  # convolution tier
