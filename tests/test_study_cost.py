"""Tests for the tracing-cost accounting."""

import math

import pytest

from repro.study.cost import COUNTER_DILATION, TRACING_DILATION, metric_costs


@pytest.fixture(scope="module")
def costs(full_study):
    return {c.metric: c for c in metric_costs(full_study)}


def test_all_metrics_priced(costs):
    assert sorted(costs) == list(range(1, 10))


def test_simple_metrics_are_free(costs):
    for m in (1, 2, 3):
        assert costs[m].requirement == "none"
        assert costs[m].acquisition_hours == 0.0


def test_counter_metrics_near_native_cost(costs):
    for m in (4, 5):
        assert costs[m].requirement == "counters"
        assert costs[m].acquisition_hours > 0


def test_tracing_metrics_pay_thirty_x(costs):
    for m in (6, 7, 8, 9):
        assert costs[m].requirement == "tracing"
        assert costs[m].acquisition_hours == pytest.approx(
            costs[4].acquisition_hours / COUNTER_DILATION * TRACING_DILATION
        )


def test_tracing_cost_shared_across_metrics(costs):
    """Paper: 'once tracing is completed for any one metric it is readily
    available for others' — so #6-#9 share one figure."""
    hours = {costs[m].acquisition_hours for m in (6, 7, 8, 9)}
    assert len(hours) == 1


def test_base_hours_magnitude(costs):
    """15 base-system runs of hours-scale apps: tens of hours uninstrumented,
    so tracing costs hundreds to ~2000 hours."""
    traced = costs[9].acquisition_hours
    assert 100 < traced < 5000


def test_error_reduction_per_hour(costs):
    assert math.isinf(costs[3].error_reduction_per_hour)  # free and better
    assert costs[9].error_reduction_per_hour > 0
    # counters buy nothing over free HPL (metric 4 == metric 1)
    assert costs[4].error_reduction_per_hour == pytest.approx(0.0, abs=1e-6)
