"""Tests for the IDC balanced-rating combination."""

import pytest

from repro.core.balanced import BalancedRating, optimise_weights
from repro.machines.registry import TARGET_SYSTEMS, get_machine
from repro.probes.suite import probe_machine


@pytest.fixture(scope="module")
def probes_by_system():
    names = list(TARGET_SYSTEMS) + ["NAVO_690"]
    return {name: probe_machine(get_machine(name)) for name in names}


def test_scores_in_0_100(probes_by_system):
    rating = BalancedRating(probes_by_system)
    for name in probes_by_system:
        assert 0 < rating.score(name) <= 100.0


def test_best_per_category_scores_100(probes_by_system):
    """With a weight of 1 on one category, its best system scores 100."""
    rating = BalancedRating(probes_by_system, weights=(1.0, 0.0, 0.0))
    best = max(probes_by_system, key=lambda n: probes_by_system[n].hpl.rmax_flops)
    assert rating.score(best) == pytest.approx(100.0)


def test_predict_equation_one(probes_by_system):
    rating = BalancedRating(probes_by_system)
    t = rating.predict("ARL_Opteron", "NAVO_690", 1000.0)
    expected = rating.score("NAVO_690") / rating.score("ARL_Opteron") * 1000.0
    assert t == pytest.approx(expected)


def test_unknown_system_raises(probes_by_system):
    rating = BalancedRating(probes_by_system)
    with pytest.raises(KeyError):
        rating.score("CRAY_T3E")


def test_weight_validation(probes_by_system):
    with pytest.raises(ValueError):
        BalancedRating(probes_by_system, weights=(-1.0, 1.0, 1.0))
    with pytest.raises(ValueError):
        BalancedRating(probes_by_system, weights=(0.0, 0.0, 0.0))
    with pytest.raises(ValueError):
        BalancedRating({}, weights=(1.0, 1.0, 1.0))
    with pytest.raises(ValueError):
        rating = BalancedRating(probes_by_system)
        rating.predict("ARL_Opteron", "NAVO_690", 0.0)


def test_optimised_weights_do_not_hurt(probes_by_system, full_study):
    """Regression-fit weights must beat or match equal weights on the data
    they were fitted to (paper: 35% -> 33%)."""
    from repro.core.predictor import PerformancePredictor

    predictor = PerformancePredictor()
    observations = [
        (system, "NAVO_690", predictor.base_time(app, cpus), actual)
        for (app, system, cpus), actual in full_study.observed.items()
    ]

    def mean_abs(weights):
        rating = BalancedRating(probes_by_system, weights)
        errs = [
            abs(rating.predict(target, base, bt) - actual) / actual
            for target, base, bt, actual in observations
        ]
        return 100.0 * sum(errs) / len(errs)

    equal = mean_abs((1 / 3, 1 / 3, 1 / 3))
    fitted = optimise_weights(probes_by_system, observations)
    assert sum(fitted) == pytest.approx(1.0)
    assert mean_abs(fitted) <= equal + 1e-6


def test_optimise_weights_needs_observations(probes_by_system):
    with pytest.raises(ValueError):
        optimise_weights(probes_by_system, [])
