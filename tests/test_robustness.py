"""Robustness and cross-cutting property tests.

Degenerate-but-legal configurations (cache-less machines, one-block
applications) must work, and the prediction pipeline must obey its
structural invariances:

* relative-mode predictions are invariant to *uniform* machine speedups of
  target and base together (only ratios matter);
* convolved compute scales linearly with traced operation counts;
* the ground-truth executor scales linearly with timesteps.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.execution import GroundTruthExecutor
from repro.apps.model import ApplicationModel, BasicBlock, CommEvent
from repro.apps.suite import get_application
from repro.core.convolver import Convolver, MemoryModel
from repro.machines.spec import (
    MachineSpec,
    MemoryLevelSpec,
    NetworkSpec,
    ProcessorSpec,
)
from repro.memory.patterns import StrideHistogram
from repro.probes.suite import probe_machine
from repro.probes.hpl import run_hpl
from repro.probes.stream import run_stream
from repro.probes.gups import run_gups
from repro.probes.maps import run_maps
from repro.tracing.metasim import MetaSimTracer
from repro.util.units import GB

from tests.conftest import make_machine


def cacheless_machine() -> MachineSpec:
    """A vector-machine-like box: main memory only, no caches."""
    return MachineSpec(
        name="CACHELESS",
        architecture="VEC",
        vendor="T",
        model="v1",
        cpus=64,
        processor=ProcessorSpec(clock_ghz=1.0, flops_per_cycle=4.0, ilp_efficiency=0.9),
        memory_levels=(
            MemoryLevelSpec("MEM", float("inf"), 8.0 * GB, 60e-9, 64, mlp=16.0),
        ),
        network=NetworkSpec("TNet", 3e-6, 1 * GB),
    )


def test_cacheless_machine_probes():
    m = cacheless_machine()
    assert run_hpl(m).rmax_flops > 0
    # slightly under raw memory bandwidth: the un-overlapped FP tail
    assert run_stream(m).triad == pytest.approx(8.0 * GB, rel=0.15)
    assert run_gups(m).gups > 0
    maps = run_maps(m)
    # no hierarchy: the unit curve is flat
    assert maps.unit.bandwidths.max() == pytest.approx(
        maps.unit.bandwidths.min(), rel=1e-6
    )


def test_cacheless_machine_executes_and_predicts():
    m = cacheless_machine()
    app = get_application("RFCTH-standard")
    result = GroundTruthExecutor(m, noise=False).run(app, 16)
    assert result.total_seconds > 0


def _one_block_app() -> ApplicationModel:
    return ApplicationModel(
        name="MONO",
        testcase="one",
        description="single-block app",
        cells=1e6,
        bytes_per_cell=800.0,
        timesteps=5,
        cpu_counts=(4,),
        blocks=(
            BasicBlock(
                name="only",
                fp_per_cell=100.0,
                loads_per_cell=40.0,
                stores_per_cell=10.0,
                stride=StrideHistogram(unit=1.0, short=0.0, random=0.0),
            ),
        ),
        comms=(CommEvent(name="h", kind="p2p", count=1.0, size_scale=1024.0),),
    )


def test_single_block_pure_unit_app_traces_and_runs(base_machine):
    app = _one_block_app()
    trace = MetaSimTracer(base_machine).trace(app, 4)
    assert trace.blocks[0].stride.unit > 0.95
    result = GroundTruthExecutor(make_machine(), noise=False).run(app, 4)
    assert result.total_seconds > 0


def test_timesteps_scale_runtime_linearly():
    app = _one_block_app()
    double = dataclasses.replace(app, timesteps=10)
    m = make_machine()
    t1 = GroundTruthExecutor(m, noise=False).run(app, 4).total_seconds
    t2 = GroundTruthExecutor(m, noise=False).run(double, 4).total_seconds
    assert t2 == pytest.approx(2 * t1, rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(speedup=st.floats(min_value=0.25, max_value=4.0))
def test_relative_prediction_invariant_to_uniform_speedup(speedup):
    """Scaling every rate of target AND base by k must not move T'/T0."""
    from repro.core.metrics import get_metric, PredictionContext
    from repro.machines.registry import BASE_SYSTEM, get_machine
    from repro.tracing.metasim import trace_application

    def scaled(machine, k, name):
        levels = tuple(
            dataclasses.replace(lvl, bandwidth=lvl.bandwidth * k, latency=lvl.latency / k)
            for lvl in machine.memory_levels
        )
        proc = dataclasses.replace(machine.processor, clock_ghz=machine.processor.clock_ghz * k)
        net = dataclasses.replace(
            machine.network, latency=machine.network.latency / k,
            bandwidth=machine.network.bandwidth * k,
        )
        return dataclasses.replace(
            machine, name=name, memory_levels=levels, processor=proc, network=net
        )

    base = get_machine(BASE_SYSTEM)
    target = get_machine("ASC_SC45")
    app = get_application("AVUS-standard")
    trace = trace_application(app, 32, base)

    ctx_plain = PredictionContext(
        trace=trace,
        target_probes=probe_machine(target, use_cache=False),
        base_probes=probe_machine(base, use_cache=False),
        base_time=1000.0,
    )
    ctx_scaled = PredictionContext(
        trace=trace,
        target_probes=probe_machine(scaled(target, speedup, "T2"), use_cache=False),
        base_probes=probe_machine(scaled(base, speedup, "B2"), use_cache=False),
        base_time=1000.0,
    )
    for metric_number in (1, 2, 3, 6, 9):
        m = get_metric(metric_number)
        assert m.predict(ctx_scaled) == pytest.approx(m.predict(ctx_plain), rel=0.02), (
            metric_number
        )


def test_convolved_compute_linear_in_counts(base_machine, opteron_probes):
    """Doubling all traced operation counts doubles convolved compute."""
    from repro.tracing.metasim import trace_application

    app = get_application("HYCOM-standard")
    trace = trace_application(app, 59, base_machine)
    if not dataclasses.is_dataclass(trace):
        trace = trace.materialize()  # a cached MappedTrace; replace() needs the dataclass
    doubled_blocks = tuple(
        dataclasses.replace(b, fp_ops=2 * b.fp_ops, loads=2 * b.loads, stores=2 * b.stores)
        for b in trace.blocks
    )
    doubled = dataclasses.replace(trace, blocks=doubled_blocks)
    conv = Convolver(MemoryModel.MAPS)
    assert conv.predict(doubled, opteron_probes).compute_seconds == pytest.approx(
        2 * conv.predict(trace, opteron_probes).compute_seconds
    )


def test_executor_rejects_apps_bigger_than_machine():
    tiny = make_machine(cpus=2)
    with pytest.raises(ValueError):
        GroundTruthExecutor(tiny).run(get_application("AVUS-standard"), 32)
