"""Tests for machine specs and the HPCMP registry."""

import pytest

from repro.machines.registry import (
    BASE_SYSTEM,
    MACHINES,
    TARGET_SYSTEMS,
    get_machine,
    list_machines,
)
from repro.machines.spec import (
    MachineSpec,
    MemoryLevelSpec,
    NetworkSpec,
    ProcessorSpec,
)
from repro.util.units import GB, KIB


def test_registry_has_eleven_systems():
    # ten targets + the NAVO p690 base
    assert len(MACHINES) == 11
    assert len(TARGET_SYSTEMS) == 10
    assert BASE_SYSTEM not in TARGET_SYSTEMS


def test_target_order_matches_paper_table5():
    assert TARGET_SYSTEMS[0] == "ERDC_O3800"
    assert TARGET_SYSTEMS[-1] == "ARL_Opteron"


def test_get_machine_and_unknown():
    spec = get_machine("ARL_Altix")
    assert spec.architecture == "SGI_Altix_1.5GHz_NUMA"
    with pytest.raises(KeyError, match="known systems"):
        get_machine("CRAY_XT3")


def test_list_machines_covers_registry():
    assert set(list_machines()) == set(MACHINES)


def test_cpu_counts_match_paper_table2():
    expected = {
        "ERDC_O3800": 504,
        "MHPCC_P3": 736,
        "NAVO_P3": 928,
        "ASC_SC45": 472,
        "MHPCC_690_1.3": 320,
        "ARL_690_1.7": 128,
        "ARL_Xeon": 256,
        "ARL_Altix": 256,
        "NAVO_655": 2832,
        "ARL_Opteron": 2304,
    }
    for name, cpus in expected.items():
        assert get_machine(name).cpus == cpus


def test_every_machine_ends_in_main_memory():
    for spec in MACHINES.values():
        assert spec.memory_levels[-1].size_bytes == float("inf")
        assert spec.main_memory.name == "MEM"


def test_levels_ordered_and_accessible():
    spec = get_machine("NAVO_655")
    sizes = [lvl.size_bytes for lvl in spec.memory_levels]
    assert sizes == sorted(sizes)
    assert spec.level("L3").name == "L3"
    with pytest.raises(KeyError):
        spec.level("L9")


def test_peak_flops_derivation():
    spec = get_machine("ARL_Opteron")
    assert spec.peak_flops == pytest.approx(2.2e9 * 2.0)


def test_processor_spec_validation():
    with pytest.raises(ValueError):
        ProcessorSpec(clock_ghz=-1, flops_per_cycle=2, ilp_efficiency=0.5)
    with pytest.raises(ValueError):
        ProcessorSpec(clock_ghz=1, flops_per_cycle=2, ilp_efficiency=1.5)


def test_memory_level_validation():
    with pytest.raises(ValueError):
        MemoryLevelSpec("L1", -5, 1e9, 1e-9)
    with pytest.raises(ValueError):
        MemoryLevelSpec("L1", 1024, 1e9, 1e-9, dependent_stream_factor=2.0)


def test_network_contention_must_be_at_least_one():
    with pytest.raises(ValueError, match="contention_factor"):
        NetworkSpec("N", 1e-6, 1e9, contention_factor=0.5)


def _proc():
    return ProcessorSpec(clock_ghz=1, flops_per_cycle=2, ilp_efficiency=0.5)


def _net():
    return NetworkSpec("N", 1e-6, 1 * GB)


def test_machine_rejects_unordered_levels():
    with pytest.raises(ValueError, match="ordered"):
        MachineSpec(
            name="BAD",
            architecture="X",
            vendor="v",
            model="m",
            cpus=4,
            processor=_proc(),
            memory_levels=(
                MemoryLevelSpec("L2", 1024 * KIB, 1 * GB, 1e-8),
                MemoryLevelSpec("L1", 32 * KIB, 1 * GB, 1e-9),
                MemoryLevelSpec("MEM", float("inf"), 1 * GB, 1e-7),
            ),
            network=_net(),
        )


def test_machine_requires_main_memory_last():
    with pytest.raises(ValueError, match="main memory"):
        MachineSpec(
            name="BAD",
            architecture="X",
            vendor="v",
            model="m",
            cpus=4,
            processor=_proc(),
            memory_levels=(MemoryLevelSpec("L1", 32 * KIB, 1 * GB, 1e-9),),
            network=_net(),
        )


def test_base_system_is_p690():
    base = get_machine(BASE_SYSTEM)
    assert base.model == "p690"
    assert base.processor.clock_ghz == pytest.approx(1.3)


def test_figure1_narrative_orderings():
    """Opteron best main memory; p655 best L1; Altix best L2-range bandwidth."""
    opteron = get_machine("ARL_Opteron")
    p655 = get_machine("NAVO_655")
    altix = get_machine("ARL_Altix")
    assert opteron.main_memory.bandwidth > p655.main_memory.bandwidth
    assert opteron.main_memory.bandwidth > altix.main_memory.bandwidth
    assert p655.memory_levels[0].bandwidth > altix.memory_levels[0].bandwidth
