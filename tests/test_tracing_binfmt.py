"""Binary trace/probe format: exact round-trips and zero-copy loads.

The binary store only works if serialisation is *exact* — the golden
study capture is asserted byte-identical through it — so the round-trip
tests here cover adversarial floats (subnormals, signed zeros, inf, NaN)
via hypothesis, not just traces the tracer happens to emit today.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.patterns import StrideHistogram
from repro.network.model import CollectiveKind
from repro.probes.suite import probe_machine
from repro.tracing import binfmt
from repro.tracing.metasim import trace_application
from repro.tracing.trace import ApplicationTrace, BlockTrace, CommRecord, ReuseHistogram

# ---------------------------------------------------------------------------
# equality that treats NaN as equal to itself (bit-level round-trip check)
# ---------------------------------------------------------------------------


def _feq(a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)


def _blocks_equal(a: BlockTrace, b: BlockTrace) -> bool:
    return (
        a.name == b.name
        and _feq(a.fp_ops, b.fp_ops)
        and _feq(a.loads, b.loads)
        and _feq(a.stores, b.stores)
        and _feq(a.stride.unit, b.stride.unit)
        and _feq(a.stride.short, b.stride.short)
        and _feq(a.stride.random, b.stride.random)
        and a.stride.short_stride_elems == b.stride.short_stride_elems
        and _feq(a.working_set, b.working_set)
        and _feq(a.dependency_weight, b.dependency_weight)
        and _l_service_equal(a.l_service, b.l_service)
        and a.reuse == b.reuse
    )


def _l_service_equal(a, b) -> bool:
    if a is None or b is None:
        return a is b
    return a.keys() == b.keys() and all(_feq(a[k], b[k]) for k in a)


def _traces_equal(a, b) -> bool:
    return (
        a.application == b.application
        and a.cpus == b.cpus
        and a.base_machine == b.base_machine
        and a.timesteps == b.timesteps
        and a.sample_size == b.sample_size
        and len(a.blocks) == len(b.blocks)
        and all(_blocks_equal(x, y) for x, y in zip(a.blocks, b.blocks))
        and len(a.comm) == len(b.comm)
        and all(_comm_equal(x, y) for x, y in zip(a.comm, b.comm))
    )


def _comm_equal(a: CommRecord, b: CommRecord) -> bool:
    return (
        a.name == b.name
        and a.kind == b.kind
        and _feq(a.count, b.count)
        and _feq(a.size_bytes, b.size_bytes)
        and a.neighbors == b.neighbors
    )


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------

# Every float64, including subnormals, ±0.0, ±inf and NaN.
any_f8 = st.floats(width=64, allow_nan=True, allow_infinity=True)
frac = st.floats(min_value=0.0, max_value=1.0)


def _stride(draw) -> StrideHistogram:
    # fractions must sum to 1 exactly (validated by __post_init__); all
    # three values are plain float64s so they round-trip bit-exactly
    unit = draw(frac)
    short = draw(st.floats(min_value=0.0, max_value=max(0.0, 1.0 - unit)))
    random = 1.0 - unit - short
    if random < 0.0:  # float fuzz at the top of the range
        random, short = 0.0, 1.0 - unit
    return StrideHistogram(
        unit=unit,
        short=short,
        random=random,
        short_stride_elems=draw(st.integers(2, 64)),
    )


@st.composite
def block_traces(draw, index: int = 0):
    reuse = None
    if draw(st.booleans()):
        n = draw(st.integers(min_value=0, max_value=4))
        distances = tuple(sorted(draw(st.sets(st.integers(0, 2**40), min_size=n, max_size=n))))
        counts = tuple(
            draw(st.lists(st.integers(1, 2**40), min_size=len(distances), max_size=len(distances)))
        )
        reuse = ReuseHistogram(
            distances=distances,
            counts=counts,
            cold=draw(st.integers(0, 2**40)),
            total=draw(st.integers(0, 2**40)),
            line_bytes=draw(st.sampled_from([32, 64, 128])),
        )
    l_service = None
    if draw(st.booleans()):
        l_service = {
            level: draw(any_f8)
            for level in draw(st.lists(st.sampled_from(["L1", "L2", "L3", "MM"]), unique=True))
        }
    return BlockTrace(
        name=f"block{index}",
        fp_ops=draw(any_f8),
        loads=draw(any_f8),
        stores=draw(any_f8),
        stride=_stride(draw),
        working_set=draw(any_f8),
        dependency_weight=draw(st.sampled_from([0.0, 0.5, 1.0])),
        l_service=l_service,
        reuse=reuse,
    )


@st.composite
def app_traces(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    blocks = tuple(draw(block_traces(index=i)) for i in range(n))
    comm = tuple(
        CommRecord(
            name=f"ev{i}",
            kind=draw(
                st.sampled_from(
                    ["p2p", CollectiveKind.ALLREDUCE, CollectiveKind.BARRIER]
                )
            ),
            count=draw(any_f8),
            size_bytes=draw(any_f8),
            neighbors=draw(st.integers(1, 8)),
        )
        for i in range(draw(st.integers(0, 3)))
    )
    return ApplicationTrace(
        application=draw(st.sampled_from(["AVUS-standard", "RFCTH2-large@3"])),
        cpus=draw(st.integers(1, 4096)),
        base_machine=draw(st.text(min_size=1, max_size=20)),
        timesteps=draw(st.integers(1, 10**6)),
        blocks=blocks,
        comm=comm,
        sample_size=draw(st.integers(1, 10**6)),
    )


# ---------------------------------------------------------------------------
# round-trip properties
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(trace=app_traces())
def test_trace_roundtrip_is_exact(trace):
    decoded = binfmt.trace_from_bytes(binfmt.trace_to_bytes(trace))
    assert _traces_equal(decoded.materialize(), trace)
    # and the encoding is stable: encode(decode(x)) == encode(x)
    assert binfmt.trace_to_bytes(decoded) == binfmt.trace_to_bytes(trace)


def test_comm_kind_roundtrips_collectives(avus, base_machine):
    trace = trace_application(avus, 64, base_machine, use_cache=False)
    decoded = binfmt.trace_from_bytes(binfmt.trace_to_bytes(trace))
    assert decoded == trace  # dataclass equality incl. CollectiveKind enums
    assert [r.kind for r in decoded.comm] == [r.kind for r in trace.comm]


def test_mapped_trace_is_zero_copy_and_lazy(tmp_path, avus, base_machine):
    trace = trace_application(avus, 64, base_machine, use_cache=False)
    path = tmp_path / "t.rpb"
    path.write_bytes(binfmt.trace_to_bytes(trace))
    mapped = binfmt.load_trace(path)
    # the hot-path arrays are views of the mapped file, not copies
    fp = mapped.block_arrays.fp_ops
    assert isinstance(fp.base, np.memmap) or isinstance(fp.base.base, np.memmap)
    assert not fp.flags.owndata
    # nothing materialised yet
    assert mapped._materialized is None
    np.testing.assert_array_equal(fp, trace.block_arrays.fp_ops)
    # equality works both ways and materialises exactly once
    assert mapped == trace
    assert trace == mapped
    assert mapped.materialize() is mapped.materialize()
    assert hash(mapped) == hash(trace)
    assert mapped.block("conv").name == "conv" if any(
        b.name == "conv" for b in trace.blocks
    ) else True
    assert mapped.total_fp == trace.total_fp
    assert mapped.total_refs == trace.total_refs


def test_probes_roundtrip_is_exact(base_machine):
    probes = probe_machine(base_machine, use_cache=False)
    decoded = binfmt.probes_from_bytes(binfmt.probes_to_bytes(probes))
    assert decoded.machine == probes.machine
    assert decoded.hpl == probes.hpl
    assert decoded.stream == probes.stream
    assert decoded.gups == probes.gups
    assert decoded.netbench.latency == probes.netbench.latency
    assert decoded.netbench.bandwidth == probes.netbench.bandwidth
    for kind in ("unit", "random", "unit_dep", "random_dep"):
        got, want = decoded.maps.curve(kind), probes.maps.curve(kind)
        np.testing.assert_array_equal(got.sizes, want.sizes)
        np.testing.assert_array_equal(got.bandwidths, want.bandwidths)
    for field in ("pingpong_sizes", "pingpong_seconds", "allreduce_ranks", "allreduce_seconds"):
        np.testing.assert_array_equal(
            getattr(decoded.netbench, field), getattr(probes.netbench, field)
        )


# ---------------------------------------------------------------------------
# envelope validation
# ---------------------------------------------------------------------------


@pytest.fixture()
def trace_bytes(avus, base_machine):
    trace = trace_application(avus, 64, base_machine, use_cache=False)
    return binfmt.trace_to_bytes(trace)


from repro.core.errors import TraceCorruptError  # noqa: E402


@pytest.mark.parametrize(
    "mangle,message",
    [
        (lambda d: d[:20], "shorter than its prelude"),
        (lambda d: d[: len(d) - 8], "length mismatch"),
        (lambda d: d + b"\x00\x00", "length mismatch"),
        (lambda d: b"XXXX" + d[4:], "bad magic"),
        (lambda d: d[:4] + b"\x63\x00" + d[6:], "unsupported binary format version"),
        (
            lambda d: d[:100] + bytes((d[100] ^ 0x01,)) + d[101:],
            "checksum mismatch",
        ),
        (lambda d: b"", "shorter than its prelude"),
    ],
)
def test_damaged_entry_raises_trace_corrupt(trace_bytes, mangle, message):
    with pytest.raises(TraceCorruptError, match=message):
        binfmt.trace_from_bytes(mangle(trace_bytes))


def test_kind_mismatch_raises(base_machine, trace_bytes):
    probes = probe_machine(base_machine, use_cache=False)
    with pytest.raises(TraceCorruptError, match="not a application_trace"):
        binfmt.trace_from_bytes(binfmt.probes_to_bytes(probes))
    with pytest.raises(TraceCorruptError, match="not a machine_probes"):
        binfmt.probes_from_bytes(trace_bytes)
