"""Tests for ranking utilities."""

import pytest

from repro.core.ranking import rank_agreement, rank_systems


def test_rank_systems_fastest_first():
    order = rank_systems({"a": 30.0, "b": 10.0, "c": 20.0})
    assert order == ["b", "c", "a"]


def test_rank_systems_validation():
    with pytest.raises(ValueError):
        rank_systems({})
    with pytest.raises(ValueError):
        rank_systems({"a": 0.0})


def test_rank_agreement_perfect():
    times = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
    out = rank_agreement(times, times)
    assert out["kendall_tau"] == pytest.approx(1.0)
    assert out["spearman_rho"] == pytest.approx(1.0)
    assert out["n"] == 4


def test_rank_agreement_reversed():
    predicted = {"a": 1.0, "b": 2.0, "c": 3.0}
    actual = {"a": 3.0, "b": 2.0, "c": 1.0}
    out = rank_agreement(predicted, actual)
    assert out["kendall_tau"] == pytest.approx(-1.0)


def test_rank_agreement_common_subset_only():
    predicted = {"a": 1.0, "b": 2.0, "c": 3.0, "z": 9.0}
    actual = {"a": 1.5, "b": 2.5, "c": 3.5, "y": 1.0}
    assert rank_agreement(predicted, actual)["n"] == 3


def test_rank_agreement_needs_two_systems():
    with pytest.raises(ValueError):
        rank_agreement({"a": 1.0}, {"a": 2.0})
