"""Tests for the full-study runner."""

import pytest

from repro.study.runner import StudyConfig, run_study


def test_full_matrix_sizes(full_study):
    """145 observed runs (150 minus the 5 cells exceeding system sizes),
    9 predictions each."""
    assert full_study.n_runs == 145
    assert full_study.n_predictions == 145 * 9


def test_blank_cells_match_system_sizes(full_study):
    # MHPCC_690_1.3 has 320 cpus: AVUS-large @384 must be blank
    assert ("AVUS-large", "MHPCC_690_1.3", 384) not in full_study.observed
    # ARL_690_1.7 has 128 cpus: AVUS-large @256/@384 blank
    assert ("AVUS-large", "ARL_690_1.7", 256) not in full_study.observed
    assert ("AVUS-large", "ARL_690_1.7", 384) not in full_study.observed
    assert ("AVUS-large", "ARL_690_1.7", 128) in full_study.observed


def test_observed_times_positive(full_study):
    assert all(t > 0 for t in full_study.observed.values())


def test_select_filters(full_study):
    recs = full_study.select(metric=9, system="ARL_Opteron", application="AVUS-standard")
    assert len(recs) == 3  # three cpu counts
    assert {r.cpus for r in recs} == {32, 64, 128}
    one = full_study.select(metric=1, system="NAVO_P3", application="RFCTH-standard", cpus=16)
    assert len(one) == 1


def test_records_consistent_with_equation2(full_study):
    rec = full_study.records[0]
    expected = (rec.predicted_seconds - rec.actual_seconds) / rec.actual_seconds * 100
    assert rec.error_percent == pytest.approx(expected)
    assert rec.abs_error_percent == abs(rec.error_percent)


def test_metric_summaries_complete(full_study):
    table = full_study.overall_table()
    assert sorted(table) == list(range(1, 10))
    for summary in table.values():
        assert summary.count == 145


def test_system_table_rows(full_study):
    table = full_study.system_table()
    assert len(table) == 10
    # every system ran at least one case of each metric
    for row in table.values():
        assert all(v == v for v in row.values())  # no NaNs


def test_app_case_errors_shape(full_study):
    errors = full_study.app_case_errors("HYCOM-standard")
    assert sorted(errors) == [59, 96, 124]
    for row in errors.values():
        assert sorted(row) == list(range(1, 10))


def test_observed_times_table(full_study):
    table = full_study.observed_times("AVUS-large")
    assert table["ARL_690_1.7"][0] is not None
    assert table["ARL_690_1.7"][1] is None  # blank cell
    assert len(table) == 10


def test_study_is_deterministic(full_study):
    again = run_study()
    assert again.records[0].error_percent == full_study.records[0].error_percent
    assert again.n_predictions == full_study.n_predictions


def test_config_variant():
    cfg = StudyConfig().variant(noise=False, metrics=(1, 9))
    assert cfg.noise is False
    assert cfg.metrics == (1, 9)
    assert StudyConfig().noise is True  # original untouched


def test_reduced_study():
    cfg = StudyConfig(
        applications=("RFCTH-standard",),
        systems=("ARL_Opteron", "NAVO_655"),
        metrics=(1, 6, 9),
    )
    result = run_study(cfg)
    assert result.n_runs == 6
    assert result.n_predictions == 18
    assert sorted(result.overall_table()) == [1, 6, 9]
