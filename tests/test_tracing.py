"""Tests for MetaSim tracing, counters, MPIDTRACE and static analysis."""

import pytest

from repro.apps.suite import get_application
from repro.machines.registry import BASE_SYSTEM, get_machine
from repro.tracing.counters import count_operations
from repro.tracing.metasim import (
    MetaSimTracer,
    clear_trace_cache,
    trace_application,
)
from repro.tracing.mpidtrace import trace_communication
from repro.tracing.static_analysis import DependencyClass, classify_block, classify_blocks


@pytest.fixture(scope="module")
def base():
    return get_machine(BASE_SYSTEM)


@pytest.fixture(scope="module")
def avus():
    return get_application("AVUS-standard")


@pytest.fixture(scope="module")
def avus_trace(base, avus):
    return MetaSimTracer(base).trace(avus, 64)


def test_trace_covers_all_blocks(avus, avus_trace):
    assert [b.name for b in avus_trace.blocks] == [b.name for b in avus.blocks]
    assert avus_trace.application == "AVUS-standard"
    assert avus_trace.cpus == 64
    assert avus_trace.base_machine == BASE_SYSTEM


def test_counters_are_exact(avus, avus_trace):
    rank_cells = avus.rank_cells(64)
    for model_block, traced in zip(avus.blocks, avus_trace.blocks):
        assert traced.fp_ops == pytest.approx(model_block.fp_per_cell * rank_cells)
        assert traced.loads == pytest.approx(model_block.loads_per_cell * rank_cells)
        assert traced.stores == pytest.approx(model_block.stores_per_cell * rank_cells)


def test_measured_stride_close_to_truth(avus, avus_trace):
    for model_block, traced in zip(avus.blocks, avus_trace.blocks):
        assert traced.stride.unit == pytest.approx(model_block.stride.unit, abs=0.08)
        assert traced.stride.random == pytest.approx(model_block.stride.random, abs=0.08)


def test_working_set_estimate_close(avus, avus_trace):
    rank_bytes = avus.rank_bytes(64)
    for model_block, traced in zip(avus.blocks, avus_trace.blocks):
        true_ws = model_block.working_set(rank_bytes)
        assert traced.working_set == pytest.approx(true_ws, rel=0.2)


def test_dependency_weights_quantised(avus_trace):
    for block in avus_trace.blocks:
        assert block.dependency_weight in (0.0, 0.5, 1.0)


def test_trace_totals(avus, avus_trace):
    assert avus_trace.total_fp > 0
    assert avus_trace.total_refs > 0
    assert avus_trace.timesteps == avus.timesteps


def test_trace_block_lookup(avus_trace):
    assert avus_trace.block("flux_assembly").name == "flux_assembly"
    with pytest.raises(KeyError):
        avus_trace.block("nonexistent")


def test_tracing_is_deterministic(base, avus):
    a = MetaSimTracer(base).trace(avus, 64)
    b = MetaSimTracer(base).trace(avus, 64)
    assert a.blocks[0].stride == b.blocks[0].stride
    assert a.blocks[0].working_set == b.blocks[0].working_set


def test_trace_cache(base, avus):
    clear_trace_cache()
    a = trace_application(avus, 64, base)
    b = trace_application(avus, 64, base)
    assert a is b
    c = trace_application(avus, 64, base, use_cache=False)
    assert c is not a


def test_cache_sim_service_fractions(base, avus):
    trace = MetaSimTracer(base, sample_size=1024, cache_sim=True).trace(avus, 64)
    for block in trace.blocks:
        assert block.l_service is not None
        assert sum(block.l_service.values()) == pytest.approx(1.0)


def test_sample_size_validation(base):
    with pytest.raises(ValueError):
        MetaSimTracer(base, sample_size=10)


def test_counters_module(avus):
    totals = count_operations(avus, 64)
    per_cell_fp = sum(b.fp_per_cell for b in avus.blocks)
    assert totals.fp_ops == pytest.approx(
        per_cell_fp * avus.rank_cells(64) * avus.timesteps
    )
    assert totals.memory_bytes == totals.memory_refs * 8.0


def test_mpidtrace_resolves_sizes(avus):
    recs = trace_communication(avus, 64)
    assert len(recs) == len(avus.comms)
    halo = next(r for r in recs if r.is_p2p)
    # halo messages shrink as the decomposition refines
    recs_128 = trace_communication(avus, 128)
    halo_128 = next(r for r in recs_128 if r.is_p2p)
    assert halo_128.size_bytes < halo.size_bytes


def test_mpidtrace_rejects_bad_cpus(avus):
    with pytest.raises(ValueError):
        trace_communication(avus, 0)


def test_static_analysis_classes(avus):
    classes = classify_blocks(avus)
    assert classes["turbulence_source"] is DependencyClass.INDEPENDENT
    assert classes["flux_assembly"] is DependencyClass.MIXED
    assert classes["implicit_smoother"] is DependencyClass.BOUND


def test_static_analysis_weights():
    assert DependencyClass.INDEPENDENT.weight == 0.0
    assert DependencyClass.MIXED.weight == 0.5
    assert DependencyClass.BOUND.weight == 1.0


# ----------------------------------------------------------------------
# cooperative deadlines (the serving path's abandon points)
# ----------------------------------------------------------------------
class _SpentClock:
    """Monotonic clock that jumps past any budget after the first read."""

    def __init__(self):
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        return 0.0 if self.reads == 1 else 1e9


def test_trace_abandons_mid_blocks_on_expired_deadline(base, avus):
    from repro.core.errors import DeadlineExceededError
    from repro.util.deadline import Deadline

    clear_trace_cache()
    try:
        deadline = Deadline(1.0, clock=_SpentClock(), stage="trace")
        with pytest.raises(DeadlineExceededError) as exc_info:
            trace_application(avus, 64, base, deadline=deadline)
        assert exc_info.value.stage == "trace"
    finally:
        clear_trace_cache()


def test_trace_cache_hit_ignores_expired_deadline(base, avus):
    from repro.util.deadline import Deadline

    trace_application(avus, 64, base)  # warm the in-memory cache
    # A spent budget must not block serving already-computed work.
    deadline = Deadline(1.0, clock=_SpentClock(), stage="trace")
    trace = trace_application(avus, 64, base, deadline=deadline)
    assert len(trace.blocks) == len(avus.blocks)
