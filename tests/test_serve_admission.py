"""Tests for the bounded admission queue (backpressure + load-shedding)."""

import threading

import pytest

from repro.core.errors import OverloadedError
from repro.serve.admission import AdmissionQueue


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_admits_up_to_concurrency():
    q = AdmissionQueue(max_concurrent=2, max_queue=0)
    q.acquire()
    q.acquire()
    assert q.depth()["active"] == 2
    with pytest.raises(OverloadedError) as exc_info:
        q.acquire()
    assert exc_info.value.retry_after > 0
    assert q.depth()["shed_total"] == 1
    q.release(0.1)
    q.acquire()  # slot freed
    assert q.depth()["admitted_total"] == 3


def test_sheds_instantly_when_queue_full():
    q = AdmissionQueue(max_concurrent=1, max_queue=0)
    q.acquire()
    with pytest.raises(OverloadedError, match="queue full"):
        q.acquire()


def test_wait_times_out_and_sheds():
    q = AdmissionQueue(max_concurrent=1, max_queue=4)
    q.acquire()
    with pytest.raises(OverloadedError, match="timed out"):
        q.acquire(timeout=0.05)
    assert q.depth()["waiting"] == 0  # waiter cleaned up


def test_waiter_admitted_on_release():
    q = AdmissionQueue(max_concurrent=1, max_queue=4)
    q.acquire()
    admitted = threading.Event()

    def waiter():
        q.acquire(timeout=5.0)
        admitted.set()

    t = threading.Thread(target=waiter)
    t.start()
    try:
        assert not admitted.wait(0.05)
        q.release(0.01)
        assert admitted.wait(2.0)
    finally:
        t.join()


def test_retry_after_scales_with_backlog_and_service_time():
    q = AdmissionQueue(max_concurrent=1, max_queue=8)
    base = q.retry_after_estimate()
    # Fold in slow observed service times: the estimate must grow.
    for _ in range(20):
        q.acquire()
        q.release(1.0)
    assert q.retry_after_estimate() > base


def test_ticket_context_manager_measures_service_time():
    clock = FakeClock()
    q = AdmissionQueue(max_concurrent=1, max_queue=0, clock=clock)
    with q.admit():
        clock.now += 2.0
        assert q.depth()["active"] == 1
    assert q.depth()["active"] == 0
    # EWMA moved toward the observed 2s service time.
    assert q.retry_after_estimate() > 0.3


def test_ticket_releases_on_exception():
    q = AdmissionQueue(max_concurrent=1, max_queue=0)
    with pytest.raises(RuntimeError):
        with q.admit():
            raise RuntimeError("boom")
    assert q.depth()["active"] == 0
    q.acquire()  # slot is free again


def test_parameter_validation():
    with pytest.raises(ValueError):
        AdmissionQueue(max_concurrent=0)
    with pytest.raises(ValueError):
        AdmissionQueue(max_queue=-1)
