"""Tests for the nine Table 3 metrics."""

import pytest

from repro.core.metrics import (
    ALL_METRICS,
    PredictionContext,
    get_metric,
)
from repro.core.predictor import PerformancePredictor


@pytest.fixture(scope="module")
def predictor():
    return PerformancePredictor()


@pytest.fixture(scope="module")
def ctx(predictor):
    return predictor.context("AVUS-standard", "ARL_Opteron", 64)


def test_table3_registry():
    assert sorted(ALL_METRICS) == list(range(1, 10))
    assert ALL_METRICS[1].kind == "simple"
    assert ALL_METRICS[9].kind == "predictive"
    assert ALL_METRICS[6].name == "HPL+STREAM+GUPS"
    assert get_metric(3).label == "3-S GUPS"
    with pytest.raises(KeyError):
        get_metric(10)


def test_all_metrics_predict_positive(ctx):
    for metric in ALL_METRICS.values():
        assert metric.predict(ctx) > 0


def test_metric1_is_equation_one(ctx):
    """T' = R(X0)/R(X) * T(X0,Y) with HPL rates."""
    m1 = get_metric(1)
    expected = (
        ctx.base_probes.hpl.rmax_flops
        / ctx.target_probes.hpl.rmax_flops
        * ctx.base_time
    )
    assert m1.predict(ctx) == pytest.approx(expected)


def test_metric4_identical_to_metric1(ctx):
    """The paper's sanity check: the convolver with FP-only rates collapses
    to the pencil-and-paper Rmax ratio."""
    assert get_metric(4).predict(ctx) == pytest.approx(
        get_metric(1).predict(ctx), rel=1e-9
    )


def test_simple_metrics_differ_from_each_other(ctx):
    values = {m: get_metric(m).predict(ctx) for m in (1, 2, 3)}
    assert len({round(v, 6) for v in values.values()}) == 3


def test_base_system_predicts_itself(predictor):
    """Every metric must predict the base system's own time exactly."""
    ctx = predictor.context("AVUS-standard", predictor.base_machine, 64)
    for metric in ALL_METRICS.values():
        assert metric.predict(ctx) == pytest.approx(ctx.base_time, rel=1e-9)


def test_absolute_mode_ignores_base_anchor(predictor):
    rel_ctx = predictor.context("AVUS-standard", "ARL_Opteron", 64)
    abs_ctx = PredictionContext(
        trace=rel_ctx.trace,
        target_probes=rel_ctx.target_probes,
        base_probes=rel_ctx.base_probes,
        base_time=rel_ctx.base_time,
        mode="absolute",
    )
    m9 = get_metric(9)
    assert m9.predict(abs_ctx) != pytest.approx(m9.predict(rel_ctx))
    # simple metrics have no absolute form; Equation 1 applies regardless
    assert get_metric(2).predict(abs_ctx) == pytest.approx(
        get_metric(2).predict(rel_ctx)
    )


def test_context_validation(predictor):
    ctx = predictor.context("AVUS-standard", "ARL_Opteron", 64)
    with pytest.raises(ValueError):
        PredictionContext(
            trace=ctx.trace,
            target_probes=ctx.target_probes,
            base_probes=ctx.base_probes,
            base_time=0.0,
        )
    with pytest.raises(ValueError):
        PredictionContext(
            trace=ctx.trace,
            target_probes=ctx.target_probes,
            base_probes=ctx.base_probes,
            base_time=1.0,
            mode="sideways",
        )


def test_metric_repr():
    assert "HPL+MAPS" in repr(get_metric(7))
