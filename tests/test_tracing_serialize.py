"""Tests for trace/probe JSON serialisation."""

import json

import numpy as np
import pytest

from repro.apps.suite import get_application
from repro.machines.registry import BASE_SYSTEM, get_machine
from repro.probes.suite import probe_machine
from repro.tracing.metasim import trace_application
from repro.tracing.serialize import (
    probes_from_json,
    probes_to_json,
    trace_from_json,
    trace_to_json,
)


@pytest.fixture(scope="module")
def trace():
    return trace_application(
        get_application("RFCTH-standard"), 32, get_machine(BASE_SYSTEM)
    )


@pytest.fixture(scope="module")
def probes():
    return probe_machine(get_machine("ARL_Altix"))


def test_trace_roundtrip(trace):
    restored = trace_from_json(trace_to_json(trace))
    assert restored == trace


def test_trace_json_is_valid_json(trace):
    doc = json.loads(trace_to_json(trace))
    assert doc["kind"] == "application_trace"
    assert doc["application"] == "RFCTH-standard"
    assert len(doc["blocks"]) == 4


def test_probes_roundtrip_scalars(probes):
    restored = probes_from_json(probes_to_json(probes))
    assert restored.machine == probes.machine
    assert restored.hpl == probes.hpl
    assert restored.stream == probes.stream
    assert restored.gups == probes.gups
    assert restored.netbench.latency == probes.netbench.latency


def test_probes_roundtrip_curves(probes):
    restored = probes_from_json(probes_to_json(probes))
    for kind in ("unit", "random", "unit_dep", "random_dep"):
        np.testing.assert_array_equal(
            restored.maps.curve(kind).sizes, probes.maps.curve(kind).sizes
        )
        np.testing.assert_array_equal(
            restored.maps.curve(kind).bandwidths, probes.maps.curve(kind).bandwidths
        )


def test_restored_probes_convolve_identically(trace, probes):
    """Predictions from restored probes must be bit-identical."""
    from repro.core.convolver import Convolver, MemoryModel

    restored = probes_from_json(probes_to_json(probes))
    conv = Convolver(MemoryModel.MAPS_DEP, network=True)
    assert (
        conv.predict(trace, restored).total_seconds
        == conv.predict(trace, probes).total_seconds
    )


def test_version_check(trace):
    doc = json.loads(trace_to_json(trace))
    doc["schema_version"] = 99
    with pytest.raises(ValueError, match="schema version"):
        trace_from_json(json.dumps(doc))


def test_kind_check(trace, probes):
    with pytest.raises(ValueError, match="not a machine probes"):
        probes_from_json(trace_to_json(trace))
    with pytest.raises(ValueError, match="not an application trace"):
        trace_from_json(probes_to_json(probes))


def test_comm_kinds_roundtrip(trace):
    restored = trace_from_json(trace_to_json(trace))
    kinds = {r.name: r.kind for r in restored.comm}
    original = {r.name: r.kind for r in trace.comm}
    assert kinds == original
