"""The staged engine and its middleware chain.

The scalar/row/matrix entry points must agree with each other (they share
one dataflow), and each middleware must enforce its single concern in
isolation — the serve chaos suite covers the composed chain end to end.
"""

import pytest

from repro.apps.suite import get_application
from repro.core.errors import DeadlineExceededError, WorkerCrashError
from repro.core.metrics import get_metric
from repro.engine import (
    BreakerMiddleware,
    BudgetMiddleware,
    DeadlineGate,
    Engine,
    FaultMiddleware,
    MatrixPlan,
    PointPlan,
    RetryMiddleware,
    StageRunner,
)
from repro.machines.registry import get_machine
from repro.util.deadline import Deadline
from repro.util.faults import FaultPlan


# ---------------------------------------------------------------------------
# StageRunner composition
# ---------------------------------------------------------------------------


class Recorder:
    def __init__(self, name, log):
        self.name = name
        self.log = log

    def __call__(self, stage, deadline, call_next):
        self.log.append(f"enter:{self.name}")
        out = call_next(deadline)
        self.log.append(f"exit:{self.name}")
        return out


def test_stage_runner_composes_outermost_first():
    log = []
    runner = StageRunner((Recorder("a", log), Recorder("b", log)))
    result = runner.run("probe", None, lambda d: "value")
    assert result == "value"
    assert log == ["enter:a", "enter:b", "exit:b", "exit:a"]


def test_stage_runner_replacement_deadline_reaches_stage():
    marker = object()

    def swapper(stage, deadline, call_next):
        return call_next(marker)

    seen = []
    StageRunner((swapper,)).run("probe", None, lambda d: seen.append(d))
    assert seen == [marker]


# ---------------------------------------------------------------------------
# middleware in isolation
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class FakeBreaker:
    def __init__(self):
        self.events = []

    def allow(self):
        self.events.append("allow")

    def record_failure(self):
        self.events.append("failure")

    def record_success(self):
        self.events.append("success")


def test_breaker_middleware_records_outcomes():
    breaker = FakeBreaker()
    mw = BreakerMiddleware({"probe": breaker})
    assert mw("probe", None, lambda d: 42) == 42
    with pytest.raises(RuntimeError):
        mw("probe", None, lambda d: (_ for _ in ()).throw(RuntimeError("x")))
    assert breaker.events == ["allow", "success", "allow", "failure"]


def test_deadline_gate_skips_spent_request_before_breaker():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock, stage="request")
    clock.now = 2.0  # budget gone before the stage starts
    breaker = FakeBreaker()
    chain = StageRunner((DeadlineGate(), BreakerMiddleware({"probe": breaker})))
    with pytest.raises(DeadlineExceededError):
        chain.run("probe", deadline, lambda d: "never")
    assert breaker.events == []  # a late request must not poison the breaker


def test_budget_middleware_converts_overrun_to_stage_failure():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock, stage="request")
    mw = BudgetMiddleware(0.5)

    def stall(sub):
        clock.now += 0.9  # outruns the 0.5 s slice, not the 1 s request
        return "late"

    with pytest.raises(DeadlineExceededError):
        mw("trace", deadline, stall)
    assert deadline.remaining() > 0  # the request survives to try a cheaper rung


def test_budget_middleware_shares_live_timeout_mapping():
    caps = {}
    clock = FakeClock()
    mw = BudgetMiddleware(1.0, caps)
    seen = []
    mw("trace", Deadline(100.0, clock=clock), lambda sub: seen.append(sub.remaining()))
    caps["trace"] = 0.25  # re-tuned after construction
    mw("trace", Deadline(100.0, clock=clock), lambda sub: seen.append(sub.remaining()))
    assert seen[0] == pytest.approx(100.0)
    assert seen[1] == pytest.approx(0.25)


def test_budget_middleware_passes_none_through():
    mw = BudgetMiddleware(0.5, {"trace": 0.1})
    assert mw("trace", None, lambda d: d) is None


def test_fault_middleware_injects_per_stage_call():
    plan = FaultPlan(crash_rate=1.0, seed=1)
    mw = FaultMiddleware(lambda: plan, ("trace",), sleep=lambda s: None)
    with pytest.raises(WorkerCrashError, match="service stage 'trace'"):
        mw("trace", None, lambda d: "x")
    assert mw("probe", None, lambda d: "x") == "x"  # untargeted stage unharmed


def test_fault_middleware_reads_live_plan():
    plans = {"current": FaultPlan(crash_rate=1.0, seed=1)}
    mw = FaultMiddleware(lambda: plans["current"], ("probe",), sleep=lambda s: None)
    with pytest.raises(WorkerCrashError):
        mw("probe", None, lambda d: "x")
    plans["current"] = None  # chaos switched off mid-test
    assert mw("probe", None, lambda d: "x") == "x"


def test_retry_middleware_retries_then_raises():
    slept = []
    mw = RetryMiddleware(2, sleep=slept.append)
    calls = []

    def flaky(d):
        calls.append(1)
        raise IOError("flaky")

    with pytest.raises(IOError):
        mw("probe", None, flaky)
    assert len(calls) == 3  # first try + 2 retries
    assert len(slept) == 2


# ---------------------------------------------------------------------------
# Engine entry points agree
# ---------------------------------------------------------------------------


APP = "AVUS-standard"
TARGET = "ARL_Opteron"
CPUS = 32


@pytest.fixture(scope="module")
def engine():
    return Engine(mode="relative", noise=False)


def test_run_point_matches_run_row(engine):
    app = get_application(APP)
    target = get_machine(TARGET)
    row = engine.run_row(
        PointPlan(app=app, cpus=CPUS, target=target, metric=get_metric(9)),
        (1, 5, 9, "balanced"),
    )
    assert set(row) == {1, 5, 9, 0}
    for number, value in row.items():
        point = engine.run_point(
            PointPlan(app=app, cpus=CPUS, target=target, metric=get_metric(number))
        )
        assert point == value  # bit-identical, not approx


def test_probe_only_metric_skips_tracing(engine, monkeypatch):
    monkeypatch.setattr(
        type(engine), "trace",
        lambda self, *a, **k: pytest.fail("simple metric must not trace"),
    )
    app = get_application(APP)
    target = get_machine(TARGET)
    for metric in (1, "balanced"):
        plan = PointPlan(app=app, cpus=CPUS, target=target, metric=get_metric(metric))
        assert engine.run_point(plan) > 0


def test_point_plan_probe_override_is_used(engine):
    app = get_application(APP)
    target = get_machine(TARGET)
    base_plan = PointPlan(app=app, cpus=CPUS, target=target, metric=get_metric(1))
    bundle = engine.probe_bundle(app, CPUS, target)
    doubled = bundle._replace(base_time=bundle.base_time * 2)
    override = PointPlan(
        app=app, cpus=CPUS, target=target, metric=get_metric(1),
        probe=lambda d: doubled,
    )
    assert engine.run_point(override) == engine.run_point(base_plan) * 2


def test_matrix_plan_coerces_sequences():
    plan = MatrixPlan(labels=[APP], systems=[TARGET], metrics=[1, 9])
    assert plan.labels == (APP,)
    assert plan.metrics == (1, 9)


def test_engine_validates_knobs():
    with pytest.raises(ValueError, match="mode"):
        Engine(mode="sideways")
    with pytest.raises(ValueError, match="cache_model"):
        Engine(cache_model="psychic")
