"""The fault-schedule DSL: seeded generation, serialisation, identity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.schedule import (
    SCENARIO_NAMES,
    CrashStage,
    FaultEvent,
    KillStudy,
    Schedule,
    StallStage,
)


class TestGeneration:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        scenario=st.sampled_from(SCENARIO_NAMES),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_schedule(self, seed, scenario):
        a = Schedule.generate(seed, scenario)
        b = Schedule.generate(seed, scenario)
        assert a == b
        assert a.digest() == b.digest()

    def test_different_seeds_diverge(self):
        digests = {
            Schedule.generate(seed, "serve-recovery").digest()
            for seed in range(16)
        }
        assert len(digests) > 1

    def test_scenarios_use_their_own_event_vocabulary(self):
        kills = Schedule.generate(3, "study-resume")
        assert any(isinstance(e, KillStudy) for e in kills.events)
        serve = Schedule.generate(3, "serve-recovery")
        assert all(not isinstance(e, KillStudy) for e in serve.events)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            Schedule.generate(0, "nope")


class TestScheduleType:
    def test_events_sorted_by_time(self):
        schedule = Schedule(
            scenario="serve-recovery",
            seed=0,
            events=(
                CrashStage(at=5.0, stage="probe"),
                StallStage(at=1.0, stage="trace", seconds=0.3),
            ),
        )
        assert [e.at for e in schedule.events] == [1.0, 5.0]

    def test_negative_event_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            StallStage(at=-0.1)

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            Schedule(scenario="coalesce", seed=0, horizon=0.0)


class TestSerialisation:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        scenario=st.sampled_from(SCENARIO_NAMES),
    )
    @settings(max_examples=30, deadline=None)
    def test_json_round_trip_is_identity(self, seed, scenario):
        schedule = Schedule.generate(seed, scenario)
        back = Schedule.from_json(schedule.to_json())
        assert back == schedule
        assert back.digest() == schedule.digest()

    def test_unknown_event_kind_rejected(self):
        doc = {
            "scenario": "serve-recovery",
            "seed": 0,
            "events": [{"kind": "summon-gremlin", "at": 1.0}],
        }
        with pytest.raises(ValueError, match="unknown fault-event kind"):
            Schedule.from_doc(doc)

    def test_digest_tracks_content(self):
        a = Schedule.generate(7, "serve-recovery")
        edited = a.replace(events=a.events[:-1])
        assert edited.digest() != a.digest()

    def test_event_doc_includes_kind_and_fields(self):
        doc = StallStage(at=1.5, stage="probe", seconds=0.4).to_doc()
        assert doc == {
            "kind": "stall-stage",
            "at": 1.5,
            "stage": "probe",
            "seconds": 0.4,
        }

    def test_base_event_subclasses_all_have_kinds(self):
        for cls in FaultEvent.__subclasses__():
            assert cls.kind, f"{cls.__name__} is missing its kind string"
