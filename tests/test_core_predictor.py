"""Tests for the high-level PerformancePredictor facade."""

import pytest

from repro.apps.suite import get_application
from repro.core.predictor import PerformancePredictor
from repro.machines.registry import BASE_SYSTEM, get_machine


@pytest.fixture(scope="module")
def predictor():
    return PerformancePredictor()


def test_predict_by_names(predictor):
    t = predictor.predict("AVUS-standard", "ARL_Opteron", 64, metric=9)
    assert t > 0


def test_predict_by_objects(predictor):
    app = get_application("AVUS-standard")
    machine = get_machine("ARL_Opteron")
    t_names = predictor.predict("AVUS-standard", "ARL_Opteron", 64, metric=9)
    t_objects = predictor.predict(app, machine, 64, metric=9)
    assert t_objects == pytest.approx(t_names)


def test_base_time_cached(predictor):
    a = predictor.base_time("AVUS-standard", 64)
    b = predictor.base_time("AVUS-standard", 64)
    assert a == b
    assert ("AVUS-standard", 64) in predictor._base_times


def test_predict_detail_provenance(predictor):
    detail = predictor.predict_detail("HYCOM-standard", "ASC_SC45", 96, metric=6)
    assert detail.application == "HYCOM-standard"
    assert detail.system == "ASC_SC45"
    assert detail.cpus == 96
    assert detail.metric == 6
    assert detail.predicted_seconds > 0
    assert detail.base_seconds == predictor.base_time("HYCOM-standard", 96)


def test_predict_all_metrics(predictor):
    values = predictor.predict_all_metrics("RFCTH-standard", "ARL_Xeon", 32)
    assert sorted(values) == list(range(1, 10))
    assert values[1] == pytest.approx(values[4], rel=1e-9)  # M1 == M4


def test_default_base_is_navo_p690(predictor):
    assert predictor.base_machine.name == BASE_SYSTEM


def test_custom_base_system():
    predictor = PerformancePredictor("NAVO_655")
    ctx = predictor.context("AVUS-standard", "NAVO_655", 64)
    from repro.core.metrics import get_metric

    # predicting the base on itself is exact for every metric
    assert get_metric(2).predict(ctx) == pytest.approx(ctx.base_time)


def test_noise_flag_changes_base_time():
    noisy = PerformancePredictor(noise=True).base_time("AVUS-standard", 64)
    clean = PerformancePredictor(noise=False).base_time("AVUS-standard", 64)
    assert noisy != clean


def test_unknown_names_raise(predictor):
    with pytest.raises(KeyError):
        predictor.predict("NOTANAPP", "ARL_Opteron", 64)
    with pytest.raises(KeyError):
        predictor.predict("AVUS-standard", "NOTAMACHINE", 64)
