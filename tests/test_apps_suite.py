"""Tests for the five TI-05 application models."""

import pytest

from repro.apps.suite import (
    APPLICATIONS,
    get_application,
    list_applications,
)


def test_five_test_cases():
    assert list_applications() == [
        "AVUS-standard",
        "AVUS-large",
        "HYCOM-standard",
        "OVERFLOW2-standard",
        "RFCTH-standard",
    ]


def test_cpu_counts_match_paper_section2():
    expected = {
        "AVUS-standard": (32, 64, 128),
        "AVUS-large": (128, 256, 384),
        "HYCOM-standard": (59, 96, 124),
        "OVERFLOW2-standard": (32, 48, 64),
        "RFCTH-standard": (16, 32, 64),
    }
    for label, counts in expected.items():
        assert get_application(label).cpu_counts == counts


def test_paper_problem_sizes():
    avus = get_application("AVUS-standard")
    assert avus.cells == pytest.approx(7e6)
    assert avus.timesteps == 100
    large = get_application("AVUS-large")
    assert large.cells == pytest.approx(24e6)
    assert large.timesteps == 150
    overflow = get_application("OVERFLOW2-standard")
    assert overflow.cells == pytest.approx(3e7)
    assert overflow.timesteps == 600


def test_avus_cases_share_block_structure():
    std = get_application("AVUS-standard")
    large = get_application("AVUS-large")
    assert [b.name for b in std.blocks] == [b.name for b in large.blocks]


def test_unknown_application():
    with pytest.raises(KeyError, match="known"):
        get_application("LAMMPS")


def test_every_app_mixes_stride_classes():
    """Each test case must exercise unit, short and random access somewhere."""
    for label in APPLICATIONS:
        app = get_application(label)
        assert sum(b.stride.unit for b in app.blocks) > 0
        assert sum(b.stride.short for b in app.blocks) > 0
        assert sum(b.stride.random for b in app.blocks) > 0


def test_every_app_communicates():
    for label in APPLICATIONS:
        app = get_application(label)
        assert app.comms, f"{label} has no MPI signature"
        assert any(e.is_p2p for e in app.comms)


def test_rfcth_is_random_heavy():
    """RFCTH (AMR shock physics) leans on random access more than HYCOM."""
    rfcth = get_application("RFCTH-standard")
    hycom = get_application("HYCOM-standard")

    def random_share(app):
        total = sum(b.refs_per_cell for b in app.blocks)
        return sum(b.refs_per_cell * b.stride.random for b in app.blocks) / total

    assert random_share(rfcth) > 2 * random_share(hycom)


def test_overflow_line_solve_is_dependency_bound():
    adi = get_application("OVERFLOW2-standard").block("adi_line_solve")
    assert adi.dependency_fraction >= 0.5
    assert adi.ws_exponent == pytest.approx(1 / 3)  # pencil working sets


def test_factories_return_fresh_instances():
    a = get_application("AVUS-standard")
    b = get_application("AVUS-standard")
    assert a == b
    assert a is not b
