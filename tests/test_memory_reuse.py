"""Tests for the machine-independent reuse-distance cache engine.

Pins the two contracts DESIGN.md §5c states: Mattson exactness for
fully-associative LRU (any capacity, straight from one profile) and the
binomial set-associativity correction's tolerance against the exact
set-associative simulator on tracer-shaped streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machines.registry import BASE_SYSTEM, get_machine
from repro.memory.cache import MultiLevelCache, SetAssociativeCache
from repro.memory.reuse import reuse_distances, reuse_profile

#: Asserted ceiling on |analytic - exact| per-level service fraction.  The
#: worst observed gap over randomized strided/random/mixed streams is ~0.071
#: (a set-aligned strided stream, hypothesis seed 186; DESIGN.md §5c documents
#: the bound and why set-aligned strides are the worst case for the binomial
#: conflict model).
ANALYTIC_TOLERANCE = 0.08

LINE = 64


def _naive_distances(addresses, line_bytes):
    """O(n^2) textbook stack distances: the oracle for the wavelet path."""
    lines = [int(a) // line_bytes for a in addresses]
    last: dict[int, int] = {}
    out = []
    for i, ln in enumerate(lines):
        prev = last.get(ln)
        if prev is None:
            out.append(-1)
        else:
            out.append(len(set(lines[prev + 1 : i])))
        last[ln] = i
    return out


# ----------------------------------------------------------------------
# stream generators (deterministic per seed — tracer-shaped)
# ----------------------------------------------------------------------
def _streams(seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    n = 2048
    ws = int(rng.integers(1 << 12, 1 << 21))
    stride = int(rng.integers(1, 9)) * 8
    strided = (np.arange(n, dtype=np.int64) * stride) % ws
    rand = rng.integers(0, ws, size=n, dtype=np.int64) * 8
    mixed = np.concatenate([strided, rand])
    rng.shuffle(mixed)
    return {"strided": strided, "random": rand, "mixed": mixed}


# ----------------------------------------------------------------------
# exact stack distances
# ----------------------------------------------------------------------
@given(
    st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200)
)
@settings(max_examples=60, deadline=None)
def test_reuse_distances_match_naive_oracle(addresses):
    got = reuse_distances(np.array(addresses, dtype=np.int64), LINE)
    assert got.tolist() == _naive_distances(addresses, LINE)


def test_reuse_distances_simple_stream():
    # lines: a b a b b a  ->  distances -1 -1 1 1 0 1
    addrs = np.array([0, 64, 0, 64, 64, 0], dtype=np.int64)
    assert reuse_distances(addrs, LINE).tolist() == [-1, -1, 1, 1, 0, 1]


def test_reuse_distances_empty_and_single():
    assert reuse_distances(np.array([], dtype=np.int64), LINE).size == 0
    assert reuse_distances(np.array([128], dtype=np.int64), LINE).tolist() == [-1]


def test_profile_counts_are_consistent():
    addrs = _streams(3)["mixed"]
    prof = reuse_profile(addrs, LINE)
    assert prof.total == addrs.shape[0]
    assert prof.cold + int(prof.counts.sum()) == prof.total
    # cold misses == distinct lines touched
    assert prof.cold == np.unique(addrs // LINE).size


def test_hit_fractions_vectorised_matches_scalar():
    prof = reuse_profile(_streams(5)["mixed"], LINE)
    caps = np.array([0, 1, 2, 8, 64, 512, 1 << 20])
    vec = prof.hit_fractions(caps)
    for cap, got in zip(caps, vec):
        assert got == prof.hit_fraction(int(cap))


# ----------------------------------------------------------------------
# Mattson exactness: fully-associative LRU
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["strided", "random", "mixed"])
@pytest.mark.parametrize("capacity_lines", [1, 4, 32, 256])
def test_fully_associative_lru_is_exact(kind, capacity_lines):
    """hit_fraction(C) equals replaying through a 1-set, C-way LRU cache."""
    addrs = _streams(11)[kind]
    prof = reuse_profile(addrs, LINE)
    sim = SetAssociativeCache(
        capacity_lines * LINE, line_bytes=LINE, ways=capacity_lines
    )
    assert sim.n_sets == 1
    mask = sim.simulate(addrs)
    assert prof.hits(capacity_lines) == int(np.count_nonzero(mask))
    assert prof.hit_fraction(capacity_lines) == sim.hit_rate()


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_fully_associative_exactness_randomized(seed):
    addrs = _streams(seed)["mixed"][:512]
    prof = reuse_profile(addrs, LINE)
    for capacity in (2, 16, 128):
        sim = SetAssociativeCache(capacity * LINE, line_bytes=LINE, ways=capacity)
        sim.simulate(addrs)
        assert prof.hits(capacity) == sim.hits


# ----------------------------------------------------------------------
# set-associativity correction: analytic vs exact within tolerance
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_analytic_service_fractions_within_tolerance(seed):
    machine = get_machine(BASE_SYSTEM)
    for addrs in _streams(seed).values():
        exact = MultiLevelCache.of(machine).simulate(addrs).service_fractions()
        analytic = MultiLevelCache.of(machine).service_fractions_analytic(addrs)
        assert set(exact) == set(analytic)
        for level, frac in exact.items():
            assert abs(frac - analytic[level]) <= ANALYTIC_TOLERANCE, (
                seed,
                level,
                frac,
                analytic[level],
            )


def test_analytic_fractions_form_a_distribution():
    machine = get_machine(BASE_SYSTEM)
    analytic = MultiLevelCache.of(machine).service_fractions_analytic(
        _streams(7)["mixed"]
    )
    values = np.array(list(analytic.values()))
    assert np.all(values >= 0.0)
    assert np.isclose(values.sum(), 1.0)


def test_assoc_correction_degenerates_to_mattson():
    """n_sets == 1 must take the exact fully-associative path."""
    prof = reuse_profile(_streams(13)["random"], LINE)
    for ways in (1, 8, 64):
        assert prof.assoc_hit_fraction(1, ways) == prof.hit_fraction(ways)


def test_profile_prices_any_machine_without_replay():
    """One profile serves geometries of every machine (the tentpole point)."""
    addrs = _streams(17)["mixed"]
    prof = reuse_profile(addrs, LINE)
    rates = [prof.assoc_hit_fraction(1 << k, 4) for k in range(1, 12)]
    # more sets at fixed ways = strictly more capacity -> monotone hit rate
    assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:]))
