"""Golden-stream equivalence tests for the vectorized kernel layer.

Each vectorized kernel (pointer chase gather, stream interleave scatter,
batched cache replay, block-axis convolution) is checked bit-for-bit
against a straightforward per-element reference implementation matching
the seed code, for fixed seeds.
"""

import numpy as np
import pytest

from repro.core.convolver import Convolver, MemoryModel
from repro.memory.cache import MultiLevelCache, SetAssociativeCache
from repro.memory.streams import pointer_chase_addresses, random_addresses
from repro.probes.suite import probe_machine
from repro.tracing.metasim import _interleave, trace_application
from repro.util.rng import stable_rng

from tests.conftest import make_machine


# ---------------------------------------------------------------------------
# pointer chase
# ---------------------------------------------------------------------------


def _chase_reference(n, working_set, rng, element_bytes=8, base=0):
    """Seed-style chase: build the nxt table and walk it one step at a time."""
    ws = int(working_set) // element_bytes
    perm = rng.permutation(ws).astype(np.int64)
    nxt = np.empty(ws, dtype=np.int64)
    nxt[perm[:-1]] = perm[1:]
    nxt[perm[-1]] = perm[0]
    out = np.empty(n, dtype=np.int64)
    cur = perm[0]
    for i in range(n):
        out[i] = cur
        cur = nxt[cur]
    return base + out * element_bytes


@pytest.mark.parametrize("n,ws_elems", [(64, 64), (128, 64), (100, 200), (50, 7)])
def test_chase_gather_matches_reference_walk(n, ws_elems):
    a = pointer_chase_addresses(n, ws_elems * 8, stable_rng("golden", n, ws_elems))
    b = _chase_reference(n, ws_elems * 8, stable_rng("golden", n, ws_elems))
    np.testing.assert_array_equal(a, b)


def test_chase_bounded_path_is_deterministic_and_distinct():
    # ws far larger than the sample: the bounded path must not allocate the
    # full permutation, stay deterministic per seed, and emit distinct
    # element-aligned addresses inside the working set.
    ws = 1 << 30  # 1 GiB working set, 2**27 elements
    n = 4096
    a = pointer_chase_addresses(n, ws, stable_rng("big"))
    b = pointer_chase_addresses(n, ws, stable_rng("big"))
    np.testing.assert_array_equal(a, b)
    assert a.shape == (n,)
    assert len(np.unique(a)) == n  # all distinct: a chase never revisits early
    assert a.min() >= 0 and a.max() < ws
    assert (a % 8 == 0).all()


def test_chase_bounded_path_differs_across_seeds():
    a = pointer_chase_addresses(256, 1 << 28, stable_rng("s1"))
    b = pointer_chase_addresses(256, 1 << 28, stable_rng("s2"))
    assert not np.array_equal(a, b)


# ---------------------------------------------------------------------------
# stream interleave
# ---------------------------------------------------------------------------


def _interleave_reference(streams, rng):
    """Seed-style interleave: per-reference cursor walk over shuffled labels."""
    if len(streams) == 1:
        return streams[0]
    labels = np.concatenate(
        [np.full(s.shape[0], i, dtype=np.int64) for i, s in enumerate(streams)]
    )
    rng.shuffle(labels)
    cursors = [0] * len(streams)
    out = np.empty(labels.shape[0], dtype=np.int64)
    for pos, lab in enumerate(labels):
        out[pos] = streams[lab][cursors[lab]]
        cursors[lab] += 1
    return out


@pytest.mark.parametrize("sizes", [[10], [5, 7], [64, 1, 33], [100, 100, 100, 3]])
def test_interleave_scatter_matches_reference_cursor(sizes):
    streams = [
        random_addresses(m, 1 << 16, stable_rng("st", i)) for i, m in enumerate(sizes)
    ]
    a = _interleave([s.copy() for s in streams], stable_rng("il", tuple(sizes)))
    b = _interleave_reference([s.copy() for s in streams], stable_rng("il", tuple(sizes)))
    np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------------
# cache replay
# ---------------------------------------------------------------------------


def _mixed_stream(seed, n=3000, ws=1 << 17):
    rng = stable_rng("cache-stream", seed)
    unit = np.arange(n // 2, dtype=np.int64) * 8 % ws
    rand = random_addresses(n - n // 2, ws, rng)
    return _interleave([unit, rand], rng)


@pytest.mark.parametrize("ways", [1, 2, 4])
def test_batched_cache_replay_matches_per_access_walk(ways):
    addrs = _mixed_stream(ways)
    fast = SetAssociativeCache(64 * 1024, line_bytes=64, ways=ways)
    slow = SetAssociativeCache(64 * 1024, line_bytes=64, ways=ways)
    mask = fast.simulate(addrs)
    ref_mask = np.array([slow.access(int(a)) for a in addrs])
    np.testing.assert_array_equal(mask, ref_mask)
    assert (fast.hits, fast.misses) == (slow.hits, slow.misses)
    np.testing.assert_array_equal(fast._tags, slow._tags)
    np.testing.assert_array_equal(fast._stamp, slow._stamp)
    assert fast._clock == slow._clock


def test_batched_cache_replay_exact_when_warm():
    # A second batch must start from the exact LRU state the first one left.
    first, second = _mixed_stream("warm-a"), _mixed_stream("warm-b")
    fast = SetAssociativeCache(32 * 1024, line_bytes=64, ways=4)
    slow = SetAssociativeCache(32 * 1024, line_bytes=64, ways=4)
    fast.simulate(first)
    for a in first:
        slow.access(int(a))
    mask = fast.simulate(second)
    ref_mask = np.array([slow.access(int(a)) for a in second])
    np.testing.assert_array_equal(mask, ref_mask)
    np.testing.assert_array_equal(fast._tags, slow._tags)
    np.testing.assert_array_equal(fast._stamp, slow._stamp)


def test_multilevel_batched_replay_matches_per_reference_walk(base_machine):
    addrs = _mixed_stream("multi", n=4000, ws=1 << 21)
    fast = MultiLevelCache.of(base_machine)
    slow = MultiLevelCache.of(base_machine)
    stats = fast.simulate(addrs)

    ref_hits = [0] * len(slow.levels)
    ref_mem = 0
    for a in addrs:
        for i, level in enumerate(slow.levels):
            if level.access(int(a)):
                ref_hits[i] += 1
                break
        else:
            ref_mem += 1
    assert stats.hits == ref_hits
    assert stats.memory_accesses == ref_mem
    assert stats.total == len(addrs)
    for f, s in zip(fast.levels, slow.levels):
        np.testing.assert_array_equal(f._tags, s._tags)


# ---------------------------------------------------------------------------
# batched convolution
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def trace_and_probes(base_machine, avus):
    trace = trace_application(avus, 64, base_machine)
    targets = [
        probe_machine(make_machine(name=f"BATCH_{i}", clock_ghz=1.0 + 0.5 * i, mem_bw=1.0 + i))
        for i in range(4)
    ]
    return trace, targets


@pytest.mark.parametrize("model", list(MemoryModel))
def test_predict_batch_bitwise_equals_scalar_predict(trace_and_probes, model):
    trace, targets = trace_and_probes
    conv = Convolver(model, network=model in (MemoryModel.MAPS, MemoryModel.MAPS_DEP))
    batched = conv.predict_batch(trace, targets)
    for probes, ct in zip(targets, batched):
        blocks = tuple(conv.predict_block(b, probes) for b in trace.blocks)
        assert ct.blocks == blocks  # exact float equality via dataclass eq
        scalar_compute = float(np.sum(np.array([b.seconds for b in blocks]))) * trace.timesteps
        assert ct.compute_seconds == scalar_compute


@pytest.mark.parametrize("model", list(MemoryModel))
def test_total_seconds_batch_equals_predict(trace_and_probes, model):
    trace, targets = trace_and_probes
    conv = Convolver(model, network=True)
    totals = conv.total_seconds_batch(trace, targets)
    for probes, total in zip(targets, totals):
        assert total == conv.predict(trace, probes).total_seconds


def test_lookup_many_equals_scalar_lookup(base_probes):
    curve = base_probes.maps.unit
    sizes = np.array([1e3, 4e4, 2e6, 8e8, curve.sizes[0], curve.sizes[-1]])
    batched = curve.lookup_many(sizes)
    for ws, bw in zip(sizes, batched):
        assert bw == curve.lookup(float(ws))
    with pytest.raises(ValueError):
        curve.lookup_many(np.array([0.0, 1e3]))
