"""Property-style tests for the circuit breaker state machine.

The two load-bearing invariants, asserted directly and under a seeded
random walk:

* **open ⇒ no backend calls** — while open, ``allow()`` always raises and
  the wrapped callable is never entered;
* **half-open admits exactly the probe quota** — no matter how many
  callers race the window, precisely ``half_open_quota`` calls pass.
"""

import threading

import pytest

from repro.core.errors import CircuitOpenError
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker
from repro.util.rng import stable_rng


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(clock, **kw):
    defaults = dict(
        failure_threshold=3,
        window_seconds=10.0,
        cooldown_seconds=5.0,
        half_open_quota=1,
    )
    defaults.update(kw)
    return CircuitBreaker("trace", clock=clock, **defaults)


# ----------------------------------------------------------------------
# transitions
# ----------------------------------------------------------------------
def test_starts_closed_and_allows():
    b = make_breaker(FakeClock())
    assert b.state == CLOSED
    b.allow()


def test_trips_open_at_threshold():
    clock = FakeClock()
    b = make_breaker(clock, failure_threshold=3)
    for _ in range(2):
        b.record_failure()
    assert b.state == CLOSED
    b.record_failure()
    assert b.state == OPEN


def test_open_refuses_with_retry_after():
    clock = FakeClock()
    b = make_breaker(clock, failure_threshold=1, cooldown_seconds=5.0)
    b.record_failure()
    clock.advance(1.0)
    with pytest.raises(CircuitOpenError) as exc_info:
        b.allow()
    assert exc_info.value.stage == "trace"
    assert exc_info.value.retry_after == pytest.approx(4.0)
    assert b.retry_after() == pytest.approx(4.0)


def test_failures_outside_window_age_out():
    clock = FakeClock()
    b = make_breaker(clock, failure_threshold=3, window_seconds=10.0)
    b.record_failure()
    b.record_failure()
    clock.advance(11.0)  # both aged out
    b.record_failure()
    assert b.state == CLOSED


def test_cooldown_elapses_to_half_open_then_success_closes():
    clock = FakeClock()
    b = make_breaker(clock, failure_threshold=1, cooldown_seconds=5.0)
    b.record_failure()
    assert b.state == OPEN
    clock.advance(5.0)
    assert b.state == HALF_OPEN
    b.allow()  # the probe
    b.record_success()
    assert b.state == CLOSED
    assert b.retry_after() == 0.0


def test_half_open_failure_reopens_with_longer_cooldown():
    clock = FakeClock()
    b = make_breaker(clock, failure_threshold=1, cooldown_seconds=5.0)
    b.record_failure()
    clock.advance(5.0)
    b.allow()
    b.record_failure()  # probe failed
    assert b.state == OPEN
    first_retry = b.retry_after()
    assert first_retry > 5.0 * 0.5  # backoff round 1: nominal 10s, jitter >= 0.5x
    # cooldowns keep growing while probes keep failing
    clock.advance(first_retry)
    b.allow()
    b.record_failure()
    assert b.retry_after() > first_retry * 0.5
    # a success anywhere resets the schedule
    clock.advance(b.retry_after())
    b.allow()
    b.record_success()
    assert b.state == CLOSED
    b.record_failure()
    assert b.state == OPEN
    assert b.retry_after() == pytest.approx(5.0)


def test_record_failure_while_open_is_noop():
    clock = FakeClock()
    b = make_breaker(clock, failure_threshold=1, cooldown_seconds=5.0)
    b.record_failure()
    opened_retry = b.retry_after()
    b.record_failure()  # late failure from a pre-open call
    assert b.state == OPEN
    assert b.retry_after() == pytest.approx(opened_retry)


# ----------------------------------------------------------------------
# invariant: open => the backend is never called
# ----------------------------------------------------------------------
def test_open_implies_no_backend_calls():
    clock = FakeClock()
    b = make_breaker(clock, failure_threshold=1, cooldown_seconds=100.0)
    calls = []

    def backend():
        calls.append(1)
        raise RuntimeError("backend down")

    with pytest.raises(RuntimeError):
        b.call(backend)
    assert b.state == OPEN
    for _ in range(50):
        clock.advance(1.0)  # stays within cooldown
        with pytest.raises(CircuitOpenError):
            b.call(backend)
    assert len(calls) == 1  # only the call that tripped it


# ----------------------------------------------------------------------
# invariant: half-open admits exactly the quota
# ----------------------------------------------------------------------
@pytest.mark.parametrize("quota", [1, 3])
def test_half_open_admits_exactly_quota(quota):
    clock = FakeClock()
    b = make_breaker(clock, failure_threshold=1, half_open_quota=quota)
    b.record_failure()
    clock.advance(5.0)
    assert b.state == HALF_OPEN
    admitted = 0
    for _ in range(quota + 10):
        try:
            b.allow()
            admitted += 1
        except CircuitOpenError:
            pass
    assert admitted == quota


def test_half_open_quota_holds_across_threads():
    clock = FakeClock()
    b = make_breaker(clock, failure_threshold=1, half_open_quota=2)
    b.record_failure()
    clock.advance(5.0)
    admitted = []
    barrier = threading.Barrier(16)

    def worker():
        barrier.wait()
        try:
            b.allow()
            admitted.append(1)
        except CircuitOpenError:
            pass

    threads = [threading.Thread(target=worker) for _ in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(admitted) == 2


# ----------------------------------------------------------------------
# property: seeded random walk never violates the invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_random_walk_invariants(seed):
    clock = FakeClock()
    b = make_breaker(
        clock, failure_threshold=2, window_seconds=5.0, cooldown_seconds=3.0
    )
    rng = stable_rng("breaker-walk", seed)
    backend_calls = 0
    for _ in range(400):
        op = rng.integers(0, 4)
        if op == 0:
            clock.advance(float(rng.random()) * 2.0)
        elif op == 1:
            state_before = b.state
            try:
                b.allow()
                admitted = True
            except CircuitOpenError:
                admitted = False
            # open never admits; closed always admits
            if state_before == OPEN and b.state == OPEN:
                assert not admitted
            if state_before == CLOSED:
                assert admitted
            if admitted:
                backend_calls += 1
                if rng.random() < 0.5:
                    b.record_failure()
                else:
                    b.record_success()
        elif op == 2:
            b.record_success()
        else:
            # a late failure report (allowed in any state; open ignores it)
            b.record_failure()
        assert b.state in (CLOSED, OPEN, HALF_OPEN)
        snap = b.snapshot()
        assert snap["recent_failures"] <= b.failure_threshold
        assert snap["retry_after_seconds"] >= 0.0
    assert backend_calls > 0  # the walk exercised admissions


# ----------------------------------------------------------------------
# board
# ----------------------------------------------------------------------
def test_board_snapshot_and_any_open():
    clock = FakeClock()
    board = BreakerBoard(clock=clock, failure_threshold=1)
    assert not board.any_open()
    board["convolve"].record_failure()
    assert board.any_open()
    snap = board.snapshot()
    assert set(snap) == {"probe", "trace", "convolve"}
    assert snap["convolve"]["state"] == OPEN
    assert snap["probe"]["state"] == CLOSED
    assert snap["convolve"]["times_opened"] == 1


def test_breaker_validates_parameters():
    with pytest.raises(ValueError):
        CircuitBreaker("s", failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker("s", window_seconds=0.0)
    with pytest.raises(ValueError):
        CircuitBreaker("s", cooldown_seconds=0.0)
    with pytest.raises(ValueError):
        CircuitBreaker("s", half_open_quota=0)
