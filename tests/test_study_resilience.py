"""Fault-tolerant study engine: checkpoint/resume, retries, quarantine, chaos.

Every test here uses the deterministic fault harness
(:class:`repro.util.faults.FaultPlan`): a seeded plan injects crashes,
stalls, aborts and store corruption in exactly the same places every run,
so the recovery paths can be asserted *byte-identical* to a fault-free
study rather than merely "it didn't crash".
"""

import json

import pytest

from repro.core.errors import (
    ChunkTimeoutError,
    ReproError,
    StudyAbortedError,
    WorkerCrashError,
)
from repro.study.resilience import (
    CellFailure,
    StudyCheckpoint,
    backoff_seconds,
    classify_failure,
    config_digest,
)
from repro.study.runner import StudyConfig, run_study
from repro.util.faults import FaultPlan

REDUCED = StudyConfig(
    applications=("RFCTH-standard", "HYCOM-standard", "AVUS-standard"),
    systems=("ARL_Opteron", "NAVO_P3", "NAVO_655"),
)


@pytest.fixture(scope="module")
def clean():
    """Fault-free reference run of the reduced matrix."""
    return run_study(REDUCED)


def assert_bit_identical(a, b):
    assert a.records == b.records
    assert a.observed == b.observed
    assert all(
        x.predicted_seconds.hex() == y.predicted_seconds.hex()
        and x.actual_seconds.hex() == y.actual_seconds.hex()
        for x, y in zip(a.records, b.records)
    )


# ---------------------------------------------------------------------------
# fault plan determinism
# ---------------------------------------------------------------------------


def test_fault_plan_is_deterministic():
    a, b = FaultPlan(seed=7, crash_rate=0.4), FaultPlan(seed=7, crash_rate=0.4)
    decisions = [(l, k) for l in ("x", "y", "z") for k in range(6)]
    assert [a.should_crash(l, k) for l, k in decisions] == [
        b.should_crash(l, k) for l, k in decisions
    ]
    assert any(a.should_crash(l, k) for l, k in decisions)
    assert not all(a.should_crash(l, k) for l, k in decisions)


def test_fault_plan_parse_round_trip():
    plan = FaultPlan.parse("crash=0.25,stall=0.1,corrupt=0.5,seed=7,hard=1,abort_after=2")
    assert plan == FaultPlan(
        seed=7, crash_rate=0.25, stall_rate=0.1, corrupt_rate=0.5,
        hard_crashes=True, abort_after=2,
    )
    with pytest.raises(ValueError, match="bad fault spec"):
        FaultPlan.parse("crash=0.25,bogus=1")
    with pytest.raises(ValueError, match="crash_rate"):
        FaultPlan(crash_rate=1.5)


def test_backoff_is_seeded_capped_exponential():
    assert backoff_seconds(1, "k") == backoff_seconds(1, "k")
    assert backoff_seconds(1, "k") != backoff_seconds(2, "k")
    assert backoff_seconds(30, "k") <= 2.0 * 1.5  # cap * max jitter


def test_classify_failure_taxonomy():
    assert classify_failure(WorkerCrashError("x"))[0] == "WorkerCrashError"
    assert classify_failure(ChunkTimeoutError("x"))[0] == "ChunkTimeoutError"
    assert classify_failure(RuntimeError("boom")) == ("RuntimeError", "boom")


# ---------------------------------------------------------------------------
# retry: crashes up to heavy rates still complete, byte-identically
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rate", [0.25, 0.5])
def test_serial_study_survives_injected_crashes(clean, rate):
    result = run_study(
        REDUCED, faults=FaultPlan(seed=3, crash_rate=rate), max_retries=8
    )
    assert result.failures == []
    assert_bit_identical(result, clean)


def test_serial_study_survives_injected_stalls(clean):
    plan = FaultPlan(seed=5, stall_rate=0.25, stall_seconds=0.01)
    result = run_study(REDUCED, faults=plan, max_retries=8)
    assert result.failures == []
    assert_bit_identical(result, clean)


def test_pool_study_survives_soft_crashes(clean):
    result = run_study(
        REDUCED,
        workers=2,
        min_parallel_cells=0,
        faults=FaultPlan(seed=3, crash_rate=0.25),
        max_retries=8,
    )
    assert result.failures == []
    assert_bit_identical(result, clean)


def test_pool_study_survives_hard_worker_deaths(clean):
    """os._exit in a worker breaks the pool; it must be rebuilt and retried."""
    result = run_study(
        REDUCED,
        workers=2,
        min_parallel_cells=0,
        faults=FaultPlan(seed=5, crash_rate=0.4, hard_crashes=True),
        max_retries=8,
    )
    assert result.failures == []
    assert_bit_identical(result, clean)


def test_broken_pool_does_not_poison_later_studies(clean):
    """Regression: a BrokenProcessPool used to fail every later run_study."""
    # Break the pool hard (crash rate 1 exhausts retries instantly)...
    broken = run_study(
        REDUCED,
        workers=2,
        min_parallel_cells=0,
        faults=FaultPlan(seed=1, crash_rate=1.0, hard_crashes=True),
        max_retries=0,
    )
    assert len(broken.failures) == len(REDUCED.applications)
    # ...then a plain parallel study on the same key must transparently rebuild.
    after = run_study(REDUCED, workers=2, min_parallel_cells=0)
    assert_bit_identical(after, clean)


# ---------------------------------------------------------------------------
# quarantine: exhausted retries degrade to partial results
# ---------------------------------------------------------------------------


def test_exhausted_retries_quarantine_with_taxonomy(clean):
    result = run_study(
        REDUCED, faults=FaultPlan(seed=1, crash_rate=1.0), max_retries=2
    )
    assert [f.application for f in result.failures] == list(REDUCED.applications)
    for failure in result.failures:
        assert failure.error == "WorkerCrashError"
        assert failure.attempts == 3  # 1 try + 2 retries
    assert result.records == [] and result.n_predictions == 0


def test_partial_study_keeps_surviving_chunks_identical(clean):
    # Crash only HYCOM, always: the other two rows must come through intact.
    class OneAppPlan(FaultPlan):
        def should_crash(self, label, attempt):
            return label == "HYCOM-standard"

    result = run_study(REDUCED, faults=OneAppPlan(), max_retries=1)
    assert [f.application for f in result.failures] == ["HYCOM-standard"]
    survivors = [r for r in clean.records if r.application != "HYCOM-standard"]
    assert result.records == survivors
    # aggregations over the partial matrix must not raise
    table = result.overall_table()
    assert all(s.count > 0 for s in table.values())
    assert result.system_table() and result.app_case_errors("RFCTH-standard")


def test_chunk_timeout_quarantines_as_timeout():
    plan = FaultPlan(seed=2, stall_rate=1.0, stall_seconds=0.05)
    result = run_study(REDUCED, faults=plan, max_retries=1, chunk_timeout=0.02)
    assert [f.error for f in result.failures] == ["ChunkTimeoutError"] * 3
    assert result.n_predictions == 0


def test_timeout_generous_enough_passes(clean):
    result = run_study(REDUCED, chunk_timeout=120.0)
    assert result.failures == []
    assert_bit_identical(result, clean)


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------


def test_killed_study_resumes_byte_identical(tmp_path, clean):
    ck = tmp_path / "study.ckpt"
    with pytest.raises(StudyAbortedError):
        run_study(REDUCED, checkpoint=ck, faults=FaultPlan(abort_after=1))
    assert ck.is_dir()
    # the journal holds the identity event + exactly one completed chunk
    from repro.events import replay_dir

    kinds = [type(ev).kind for _, _, ev in replay_dir(ck)]
    assert kinds == ["study-started", "chunk-completed"]
    resumed = run_study(REDUCED, checkpoint=ck)
    assert resumed.failures == []
    assert_bit_identical(resumed, clean)


def test_resume_skips_completed_chunks(tmp_path, clean, monkeypatch):
    import repro.study.runner as runner_mod

    ck = tmp_path / "study.ckpt"
    with pytest.raises(StudyAbortedError):
        run_study(REDUCED, checkpoint=ck, faults=FaultPlan(abort_after=2))

    computed = []
    original = runner_mod._run_submatrix

    def spy(cfg, labels, systems, store, timer=None):
        computed.extend(labels)
        return original(cfg, labels, systems, store, timer)

    monkeypatch.setattr(runner_mod, "_run_submatrix", spy)
    resumed = run_study(REDUCED, checkpoint=ck)
    assert len(computed) == 1  # only the one chunk the kill left unfinished
    assert_bit_identical(resumed, clean)


def test_completed_checkpoint_resumes_without_recompute(tmp_path, clean, monkeypatch):
    import repro.study.runner as runner_mod

    ck = tmp_path / "study.ckpt"
    run_study(REDUCED, checkpoint=ck)
    monkeypatch.setattr(
        runner_mod, "_run_submatrix",
        lambda *a, **k: pytest.fail("complete checkpoint must not recompute"),
    )
    replayed = run_study(REDUCED, checkpoint=ck)
    assert_bit_identical(replayed, clean)


def test_checkpoint_of_other_config_is_restarted(tmp_path, clean):
    ck = tmp_path / "study.ckpt"
    other = REDUCED.variant(noise=False)
    run_study(other, checkpoint=ck)
    # different identity -> journal ignored and rewritten, result still clean
    result = run_study(REDUCED, checkpoint=ck)
    assert_bit_identical(result, clean)
    from repro.events import replay_dir

    started = next(ev for _, _, ev in replay_dir(ck) if type(ev).kind == "study-started")
    assert started.config_digest == config_digest(REDUCED)


def test_checkpoint_torn_tail_is_dropped_and_compacted(tmp_path, clean):
    ck = tmp_path / "study.ckpt"
    with pytest.raises(StudyAbortedError):
        run_study(REDUCED, checkpoint=ck, faults=FaultPlan(abort_after=2))
    segment = max(ck.glob("events-*.jsonl"))
    with open(segment, "a") as fh:
        fh.write('{"seq": 99, "event": {"kind": "chunk-comp')  # torn append
    resumed = run_study(REDUCED, checkpoint=ck)
    assert_bit_identical(resumed, clean)


def test_legacy_single_file_checkpoint_migrates(tmp_path, clean, monkeypatch):
    """A schema-v1 single-file journal loads transparently, resumes the
    study byte-identically, and is migrated into an event-log directory."""
    import repro.study.runner as runner_mod
    from repro.events import replay_dir
    from repro.study.resilience import _entry_checksum

    # Capture two real chunk documents from an aborted event-log run...
    src = tmp_path / "src.ckpt"
    with pytest.raises(StudyAbortedError):
        run_study(REDUCED, checkpoint=src, faults=FaultPlan(abort_after=2))
    chunks = [
        ev for _, _, ev in replay_dir(src) if type(ev).kind == "chunk-completed"
    ]
    assert len(chunks) == 2

    # ...and rewrite them in the legacy v1 single-file format.
    ck = tmp_path / "legacy.ckpt"
    lines = [
        json.dumps(
            {
                "kind": "study-checkpoint",
                "schema_version": 1,
                "config_digest": config_digest(REDUCED),
            }
        )
    ]
    for ev in chunks:
        doc = {
            "label": ev.label,
            "records": ev.records,
            "observed": ev.observed,
            "stages": ev.stages,
        }
        doc["checksum"] = _entry_checksum(dict(doc))
        lines.append(json.dumps(doc, sort_keys=True))
    ck.write_text("\n".join(lines) + "\n")

    computed = []
    original = runner_mod._run_submatrix

    def spy(cfg, labels, systems, store, timer=None):
        computed.extend(labels)
        return original(cfg, labels, systems, store, timer)

    monkeypatch.setattr(runner_mod, "_run_submatrix", spy)
    resumed = run_study(REDUCED, checkpoint=ck)
    assert len(computed) == 1  # only the chunk the legacy journal lacked
    assert_bit_identical(resumed, clean)
    # The single file became an event-log directory holding everything.
    assert ck.is_dir()
    kinds = [type(ev).kind for _, _, ev in replay_dir(ck)]
    assert kinds == ["study-started"] + ["chunk-completed"] * 3


def test_quarantined_chunks_leave_audit_events(tmp_path):
    from repro.events import replay_dir

    ck = StudyCheckpoint(str(tmp_path / "j"), "d" * 32)
    ck.record("chunk", [], {}, {})
    ck.record_failure(CellFailure("app", "WorkerCrashError", "boom", 3))
    kinds = [type(ev).kind for _, _, ev in replay_dir(tmp_path / "j")]
    assert kinds == ["study-started", "chunk-completed", "cell-failed"]


def test_checkpoint_engine_knobs_do_not_invalidate():
    # max_retries / chunk_timeout are identity-neutral by design
    assert config_digest(REDUCED) == config_digest(REDUCED.variant(max_retries=9))
    assert config_digest(REDUCED) != config_digest(REDUCED.variant(noise=False))


def test_checkpoint_under_crash_faults_resumes(tmp_path, clean):
    """Chaos + checkpoint together: crash-heavy run, killed, then resumed."""
    ck = tmp_path / "study.ckpt"
    plan = FaultPlan(seed=3, crash_rate=0.5, abort_after=1)
    with pytest.raises(StudyAbortedError):
        run_study(REDUCED, checkpoint=ck, faults=plan, max_retries=8)
    resumed = run_study(
        REDUCED, checkpoint=ck, faults=FaultPlan(seed=3, crash_rate=0.5), max_retries=8
    )
    assert resumed.failures == []
    assert_bit_identical(resumed, clean)


def test_pool_study_with_checkpoint_resumes(tmp_path, clean):
    ck = tmp_path / "study.ckpt"
    with pytest.raises(StudyAbortedError):
        run_study(
            REDUCED, workers=2, min_parallel_cells=0,
            checkpoint=ck, faults=FaultPlan(abort_after=1),
        )
    resumed = run_study(REDUCED, workers=2, min_parallel_cells=0, checkpoint=ck)
    assert_bit_identical(resumed, clean)


# ---------------------------------------------------------------------------
# checkpoint unit behaviour
# ---------------------------------------------------------------------------


def test_checkpoint_float_round_trip_is_exact(tmp_path):
    ck = StudyCheckpoint(str(tmp_path / "c.ckpt"), "digest")
    records = [["app", 4, "sys", 1, 0.1 + 0.2, 1e-17, -3.25]]
    ck.record("app", records, {("app", "sys", 4): 0.30000000000000004}, {"trace": 0.5})
    loaded = StudyCheckpoint(str(tmp_path / "c.ckpt"), "digest").load()
    row = loaded["app"]["records"][0]
    assert row[4].hex() == (0.1 + 0.2).hex()
    assert row[5].hex() == (1e-17).hex()
    assert loaded["app"]["observed"][0][3].hex() == (0.30000000000000004).hex()


def test_checkpoint_rejects_wrong_digest(tmp_path):
    path = str(tmp_path / "c.ckpt")
    ck = StudyCheckpoint(path, "digest-a")
    ck.record("app", [], {}, {})
    assert StudyCheckpoint(path, "digest-b").load() == {}
    assert StudyCheckpoint(path, "digest-a").load().keys() == {"app"}


def test_cell_failure_is_structured():
    f = CellFailure("app", "WorkerCrashError", "boom", 3)
    assert f.application == "app" and f.attempts == 3
    assert isinstance(f, tuple)
    assert issubclass(WorkerCrashError, ReproError)
