"""Unit tests for the single-flight request coalescer.

Exactly-once execution per key, follower stamping, leader-failure
propagation (then a clean slate for the next caller), and cancellation
isolation — all on a plain event loop via ``asyncio.run`` (the fleet
front end is single-loop, and so are these tests).
"""

import asyncio

import pytest

from repro.serve.coalesce import SingleFlight


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# exactly-once
# ---------------------------------------------------------------------------
def test_concurrent_duplicates_run_factory_once():
    async def scenario():
        sf = SingleFlight()
        calls = 0
        release = asyncio.Event()

        async def factory():
            nonlocal calls
            calls += 1
            await release.wait()
            return {"answer": 42}

        async def request():
            return await sf.run("key", factory)

        tasks = [asyncio.ensure_future(request()) for _ in range(8)]
        await asyncio.sleep(0)  # all eight enter run(); one becomes leader
        assert sf.in_flight() == 1
        release.set()
        results = await asyncio.gather(*tasks)
        return calls, results, sf

    calls, results, sf = run(scenario())
    assert calls == 1
    assert [r[0] for r in results] == [{"answer": 42}] * 8
    flags = [coalesced for _, coalesced in results]
    assert flags.count(False) == 1  # exactly one leader
    assert flags.count(True) == 7
    assert sf.counters() == {
        "in_flight": 0,
        "leaders_total": 1,
        "followers_total": 7,
        "failed_flights_total": 0,
    }


def test_distinct_keys_do_not_coalesce():
    async def scenario():
        sf = SingleFlight()
        release = asyncio.Event()

        async def factory(value):
            await release.wait()
            return value

        tasks = [
            asyncio.ensure_future(sf.run(key, lambda key=key: factory(key)))
            for key in ("a", "b", "c")
        ]
        await asyncio.sleep(0)
        assert sf.in_flight() == 3
        release.set()
        return await asyncio.gather(*tasks), sf

    results, sf = run(scenario())
    assert results == [("a", False), ("b", False), ("c", False)]
    assert sf.followers_total == 0


def test_sequential_calls_each_lead():
    async def scenario():
        sf = SingleFlight()

        async def factory():
            return "value"

        first = await sf.run("key", factory)
        second = await sf.run("key", factory)
        return first, second, sf

    first, second, sf = run(scenario())
    assert first == ("value", False)
    assert second == ("value", False)  # flight cleared; no stale cache
    assert sf.leaders_total == 2


# ---------------------------------------------------------------------------
# failure semantics
# ---------------------------------------------------------------------------
def test_leader_failure_propagates_to_followers_then_clears():
    async def scenario():
        sf = SingleFlight()
        release = asyncio.Event()

        async def failing():
            await release.wait()
            raise RuntimeError("backend exploded")

        tasks = [
            asyncio.ensure_future(sf.run("key", failing)) for _ in range(4)
        ]
        await asyncio.sleep(0)
        release.set()
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)

        # The key cleared with the failure: a retry is a *fresh* leader,
        # not an inheritor of the poisoned future.
        async def healthy():
            return "recovered"

        retry = await sf.run("key", healthy)
        return outcomes, retry, sf

    outcomes, retry, sf = run(scenario())
    assert len(outcomes) == 4
    for outcome in outcomes:
        assert isinstance(outcome, RuntimeError)
        assert "backend exploded" in str(outcome)
    assert retry == ("recovered", False)
    assert sf.failed_flights_total == 1
    assert sf.in_flight() == 0


def test_leader_failure_with_no_followers_is_clean():
    async def scenario():
        sf = SingleFlight()

        async def failing():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            await sf.run("key", failing)
        return sf

    sf = run(scenario())
    assert sf.failed_flights_total == 1
    assert sf.in_flight() == 0


# ---------------------------------------------------------------------------
# cancellation isolation
# ---------------------------------------------------------------------------
def test_cancelling_a_follower_does_not_kill_the_flight():
    async def scenario():
        sf = SingleFlight()
        release = asyncio.Event()

        async def factory():
            await release.wait()
            return "shared"

        leader = asyncio.ensure_future(sf.run("key", factory))
        follower_a = asyncio.ensure_future(sf.run("key", factory))
        follower_b = asyncio.ensure_future(sf.run("key", factory))
        await asyncio.sleep(0)
        follower_a.cancel()
        await asyncio.sleep(0)
        release.set()
        leader_result = await leader
        follower_result = await follower_b
        return leader_result, follower_result, follower_a.cancelled()

    leader_result, follower_result, a_cancelled = run(scenario())
    assert a_cancelled  # the cancelled follower is gone...
    assert leader_result == ("shared", False)  # ...but the flight survived
    assert follower_result == ("shared", True)
