"""The eleven HPCMP systems of the study (Tables 1, 2 and 5 of the paper).

The ten *target* systems are the rows of the paper's Table 5; the eleventh,
``NAVO_690`` (an IBM p690 1.3 GHz), is the base system on which applications
are traced and whose measured runtime anchors Equation 1.

Parameter values are per-processor models tuned to the published
characteristics of each architecture (clock, peak issue width, cache sizes,
STREAM-class memory bandwidth, memory latency, interconnect latency and
bandwidth).  They stand in for hardware we do not have; see DESIGN.md §2.
The values matter only through the *diversity* they induce — e.g. the Xeon's
high clock with a weak shared front-side bus, the Opteron's integrated
memory controller (low latency, high bandwidth), the Altix's large fast L3
with high NUMA main-memory latency — because that diversity is what makes
single-number metrics mispredict, which is the phenomenon under study.
"""

from __future__ import annotations

from repro.machines.spec import (
    MachineSpec,
    MemoryLevelSpec,
    NetworkSpec,
    ProcessorSpec,
)
from repro.util.units import GB, KIB, MIB

__all__ = ["MACHINES", "TARGET_SYSTEMS", "BASE_SYSTEM", "get_machine", "list_machines"]

_INF = float("inf")


def _lvl(
    name: str,
    size: float,
    bw_gbs: float,
    lat_ns: float,
    line: int,
    mlp: float = 4.0,
    dep: float = 0.4,
) -> MemoryLevelSpec:
    """Shorthand constructor using GB/s and nanoseconds."""
    return MemoryLevelSpec(
        name=name,
        size_bytes=size,
        bandwidth=bw_gbs * GB,
        latency=lat_ns * 1e-9,
        line_bytes=line,
        mlp=mlp,
        dependent_stream_factor=dep,
    )


def _net(
    name: str, lat_us: float, bw_gbs: float, coll: float, cont: float
) -> NetworkSpec:
    """Shorthand constructor using microseconds and GB/s."""
    return NetworkSpec(
        name=name,
        latency=lat_us * 1e-6,
        bandwidth=bw_gbs * GB,
        collective_efficiency=coll,
        contention_factor=cont,
    )


# --- interconnect families -------------------------------------------------

_NUMALINK3 = _net("NUMALink3", lat_us=2.5, bw_gbs=1.00, coll=0.90, cont=1.10)
_NUMALINK4 = _net("NUMALink4", lat_us=1.3, bw_gbs=3.00, coll=0.90, cont=1.08)
_COLONY_P3 = _net("Colony", lat_us=20.0, bw_gbs=0.35, coll=0.70, cont=1.20)
_COLONY_690 = _net("Colony", lat_us=17.0, bw_gbs=0.50, coll=0.70, cont=1.20)
_FEDERATION = _net("Federation", lat_us=6.0, bw_gbs=1.50, coll=0.80, cont=1.15)
_QUADRICS = _net("Quadrics", lat_us=4.5, bw_gbs=0.30, coll=0.85, cont=1.15)
_MYRINET_XEON = _net("Myrinet", lat_us=8.5, bw_gbs=0.23, coll=0.70, cont=1.20)
_MYRINET_OPT = _net("Myrinet", lat_us=7.5, bw_gbs=0.24, coll=0.70, cont=1.20)


def _power3(name: str, cpus: int, description: str) -> MachineSpec:
    return MachineSpec(
        name=name,
        architecture="IBM_P3_375MHz_COL",
        vendor="IBM",
        model="Power 3",
        cpus=cpus,
        processor=ProcessorSpec(
            clock_ghz=0.375,
            flops_per_cycle=4.0,
            ilp_efficiency=0.78,
            dependent_fp_efficiency=0.14,
        ),
        memory_levels=(
            _lvl("L1", 64 * KIB, 6.0, 8.0, 128, mlp=2.0, dep=0.55),
            _lvl("L2", 8 * MIB, 2.2, 35.0, 128, mlp=3.0, dep=0.55),
            _lvl("MEM", _INF, 0.65, 350.0, 128, mlp=3.0, dep=0.50),
        ),
        network=_COLONY_P3,
        overlap_factor=0.65,
        noise_level=0.07,
        description=description,
    )


def _power4(
    name: str,
    clock: float,
    network: NetworkSpec,
    cpus: int,
    mem_bw: float,
    description: str,
    l3_bw: float = 4.5,
    mem_lat: float = 210.0,
    mem_mlp: float = 5.0,
) -> MachineSpec:
    scale = clock / 1.3
    return MachineSpec(
        name=name,
        architecture=f"IBM_690_{clock}GHz_{'FED' if network is _FEDERATION else 'COL'}"
        if "690" in name
        else "IBM_655_1.7GHz_FED",
        vendor="IBM",
        model="p690" if "690" in name else "p655",
        cpus=cpus,
        processor=ProcessorSpec(
            clock_ghz=clock,
            flops_per_cycle=4.0,
            ilp_efficiency=0.65,
            dependent_fp_efficiency=0.10,
        ),
        memory_levels=(
            _lvl("L1", 32 * KIB, 20.0 * scale, 3.0 / scale, 128, mlp=4.0, dep=0.45),
            _lvl("L2", 1.5 * MIB, 10.0 * scale, 9.0 / scale, 128, mlp=5.0, dep=0.45),
            _lvl("L3", 16 * MIB, l3_bw * scale, 80.0, 512, mlp=mem_mlp, dep=0.40),
            _lvl("MEM", _INF, mem_bw, mem_lat, 128, mlp=mem_mlp, dep=0.40),
        ),
        network=network,
        overlap_factor=0.75,
        noise_level=0.08,
        description=description,
    )


MACHINES: dict[str, MachineSpec] = {}


def _register(spec: MachineSpec) -> MachineSpec:
    if spec.name in MACHINES:
        raise ValueError(f"duplicate machine name {spec.name!r}")
    MACHINES[spec.name] = spec
    return spec


_register(
    MachineSpec(
        name="ERDC_O3800",
        architecture="SGI_O3800_400MHz_NUMA",
        vendor="SGI",
        model="Origin 3800",
        cpus=504,
        processor=ProcessorSpec(
            clock_ghz=0.400,
            flops_per_cycle=2.0,
            ilp_efficiency=0.75,
            dependent_fp_efficiency=0.15,
        ),
        memory_levels=(
            _lvl("L1", 32 * KIB, 3.2, 5.0, 32, mlp=2.0, dep=0.55),
            _lvl("L2", 8 * MIB, 2.8, 25.0, 128, mlp=4.0, dep=0.55),
            _lvl("MEM", _INF, 0.70, 280.0, 128, mlp=6.0, dep=0.45),
        ),
        network=_NUMALINK3,
        overlap_factor=0.60,
        noise_level=0.07,
        description="SGI Origin 3800, 400 MHz MIPS R14000, NUMAlink ccNUMA",
    )
)

_register(_power3("MHPCC_P3", cpus=736, description="IBM SP Power3-II 375 MHz, Colony switch (MHPCC)"))
_register(_power3("NAVO_P3", cpus=928, description="IBM SP Power3-II 375 MHz, Colony switch (NAVO)"))

_register(
    MachineSpec(
        name="ASC_SC45",
        architecture="HP_SC45_1GHz_QUAD",
        vendor="HP",
        model="SC45",
        cpus=472,
        processor=ProcessorSpec(
            clock_ghz=1.000,
            flops_per_cycle=2.0,
            ilp_efficiency=0.80,
            dependent_fp_efficiency=0.15,
        ),
        memory_levels=(
            _lvl("L1", 64 * KIB, 16.0, 2.0, 64, mlp=4.0, dep=0.50),
            _lvl("L2", 8 * MIB, 4.8, 18.0, 64, mlp=5.0, dep=0.50),
            _lvl("MEM", _INF, 1.30, 130.0, 64, mlp=6.0, dep=0.45),
        ),
        network=_QUADRICS,
        overlap_factor=0.75,
        noise_level=0.07,
        description="HP AlphaServer SC45, 1 GHz EV68, Quadrics QsNet",
    )
)

_register(
    _power4(
        "NAVO_690",
        clock=1.3,
        network=_COLONY_690,
        cpus=1408,
        mem_bw=1.9,
        description="IBM p690 1.3 GHz Power4, Colony switch (NAVO) — base system",
    )
)
_register(
    _power4(
        "MHPCC_690_1.3",
        clock=1.3,
        network=_COLONY_690,
        cpus=320,
        mem_bw=1.9,
        description="IBM p690 1.3 GHz Power4, Colony switch (MHPCC)",
    )
)
_register(
    _power4(
        "ARL_690_1.7",
        clock=1.7,
        network=_FEDERATION,
        cpus=128,
        mem_bw=2.1,
        l3_bw=5.2,
        mem_lat=240.0,
        description="IBM p690 1.7 GHz Power4+, Federation switch (ARL)",
    )
)

_register(
    MachineSpec(
        name="ARL_Xeon",
        architecture="LNX_Xeon_3.06GHz_MNET",
        vendor="LNX",
        model="Xeon",
        cpus=256,
        processor=ProcessorSpec(
            clock_ghz=3.060,
            flops_per_cycle=2.0,
            ilp_efficiency=0.55,
            dependent_fp_efficiency=0.08,
        ),
        memory_levels=(
            _lvl("L1", 8 * KIB, 24.0, 1.3, 64, mlp=4.0, dep=0.35),
            _lvl("L2", 512 * KIB, 12.0, 6.0, 64, mlp=6.0, dep=0.35),
            _lvl("MEM", _INF, 1.50, 140.0, 64, mlp=4.0, dep=0.35),
        ),
        network=_MYRINET_XEON,
        overlap_factor=0.60,
        noise_level=0.10,
        description="Linux Networx Xeon 3.06 GHz cluster, shared FSB, Myrinet",
    )
)

_register(
    MachineSpec(
        name="ARL_Altix",
        architecture="SGI_Altix_1.5GHz_NUMA",
        vendor="SGI",
        model="Altix",
        cpus=256,
        processor=ProcessorSpec(
            clock_ghz=1.500,
            flops_per_cycle=4.0,
            ilp_efficiency=0.85,
            dependent_fp_efficiency=0.10,
        ),
        memory_levels=(
            # FP loads bypass the Itanium2 L1; L2 is the first FP level.
            _lvl("L2", 256 * KIB, 24.0, 4.0, 128, mlp=8.0, dep=0.45),
            _lvl("L3", 6 * MIB, 16.0, 10.0, 128, mlp=10.0, dep=0.45),
            _lvl("MEM", _INF, 2.10, 180.0, 128, mlp=12.0, dep=0.45),
        ),
        network=_NUMALINK4,
        overlap_factor=0.80,
        noise_level=0.08,
        description="SGI Altix 3700, 1.5 GHz Itanium2, NUMAlink4 ccNUMA",
    )
)

_register(
    _power4(
        "NAVO_655",
        clock=1.7,
        network=_FEDERATION,
        cpus=2832,
        mem_bw=2.6,
        l3_bw=6.5,
        mem_lat=180.0,
        mem_mlp=8.0,
        description="IBM p655 1.7 GHz Power4+, Federation switch (NAVO)",
    )
)

_register(
    MachineSpec(
        name="ARL_Opteron",
        architecture="IBM_Opteron_2.2GHz_MNET",
        vendor="IBM",
        model="Opteron",
        cpus=2304,
        processor=ProcessorSpec(
            clock_ghz=2.200,
            flops_per_cycle=2.0,
            ilp_efficiency=0.80,
            dependent_fp_efficiency=0.16,
        ),
        memory_levels=(
            _lvl("L1", 64 * KIB, 17.0, 1.4, 64, mlp=4.0, dep=0.55),
            _lvl("L2", 1 * MIB, 8.0, 5.5, 64, mlp=6.0, dep=0.55),
            _lvl("MEM", _INF, 3.00, 90.0, 64, mlp=8.0, dep=0.50),
        ),
        network=_MYRINET_OPT,
        overlap_factor=0.75,
        noise_level=0.08,
        description="IBM e325 Opteron 2.2 GHz cluster, on-die memory controller, Myrinet",
    )
)

#: Name of the base system used for tracing and as X0 in Equation 1.
BASE_SYSTEM = "NAVO_690"

#: The ten prediction-target systems, in the row order of the paper's Table 5.
TARGET_SYSTEMS: tuple[str, ...] = (
    "ERDC_O3800",
    "MHPCC_P3",
    "NAVO_P3",
    "ASC_SC45",
    "MHPCC_690_1.3",
    "ARL_690_1.7",
    "ARL_Xeon",
    "ARL_Altix",
    "NAVO_655",
    "ARL_Opteron",
)


def get_machine(name: str) -> MachineSpec:
    """Return the registered machine called ``name``.

    Raises
    ------
    KeyError
        With the list of known systems if ``name`` is not registered.
    """
    try:
        return MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(MACHINES))
        raise KeyError(f"unknown machine {name!r}; known systems: {known}") from None


def list_machines() -> list[str]:
    """Names of all registered systems (targets + base), registry order."""
    return list(MACHINES)
