"""Machine models: parameterised descriptions of the HPCMP systems.

A :class:`~repro.machines.spec.MachineSpec` captures everything the
reproduction knows about a system: processor (clock, peak FP issue, ILP
efficiency), the cache/memory hierarchy (per-level size, streaming bandwidth,
latency, line size, memory-level parallelism, dependent-access throughput),
and the interconnect (latency, bandwidth, collective behaviour).

The registry (:mod:`repro.machines.registry`) instantiates the eleven
systems of the paper's Tables 1 and 2 — the ten prediction targets plus the
NAVO p690 base system used for tracing and as the reference of Equation 1.
Parameters are tuned to the published characteristics of each architecture;
they are *models*, standing in for hardware we do not have (see DESIGN.md §2).

Id resolution lives in the scenario catalog (:mod:`repro.scenarios`):
:func:`get_machine` / :func:`list_machines` here delegate to it, so a
mounted universe's machines resolve through this module too.  The
module-level ``MACHINES`` dict is deprecated — accessing it warns and
returns a catalog snapshot; new code should import the catalog directly.
"""

from __future__ import annotations

import warnings

from repro.machines.registry import BASE_SYSTEM, TARGET_SYSTEMS
from repro.machines.spec import (
    MachineSpec,
    MemoryLevelSpec,
    NetworkSpec,
    ProcessorSpec,
)

__all__ = [
    "MachineSpec",
    "MemoryLevelSpec",
    "NetworkSpec",
    "ProcessorSpec",
    "MACHINES",
    "TARGET_SYSTEMS",
    "BASE_SYSTEM",
    "get_machine",
    "list_machines",
]


def get_machine(name: str) -> MachineSpec:
    """Resolve ``name`` through the scenario catalog (built-ins + universe)."""
    from repro.scenarios import get_machine as resolve

    return resolve(name)


def list_machines() -> list[str]:
    """Names of every loaded system, catalog order (built-ins first)."""
    from repro.scenarios import list_machines as loaded

    return list(loaded())


def __getattr__(name: str):
    if name == "MACHINES":
        warnings.warn(
            "repro.machines.MACHINES is deprecated: resolve ids through "
            "repro.scenarios (get_machine / CATALOG.machine_map()), which "
            "also sees mounted universes",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.scenarios import CATALOG

        return CATALOG.machine_map()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
