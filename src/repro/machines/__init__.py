"""Machine models: parameterised descriptions of the HPCMP systems.

A :class:`~repro.machines.spec.MachineSpec` captures everything the
reproduction knows about a system: processor (clock, peak FP issue, ILP
efficiency), the cache/memory hierarchy (per-level size, streaming bandwidth,
latency, line size, memory-level parallelism, dependent-access throughput),
and the interconnect (latency, bandwidth, collective behaviour).

The registry (:mod:`repro.machines.registry`) instantiates the eleven
systems of the paper's Tables 1 and 2 — the ten prediction targets plus the
NAVO p690 base system used for tracing and as the reference of Equation 1.
Parameters are tuned to the published characteristics of each architecture;
they are *models*, standing in for hardware we do not have (see DESIGN.md §2).
"""

from repro.machines.spec import (
    MachineSpec,
    MemoryLevelSpec,
    NetworkSpec,
    ProcessorSpec,
)
from repro.machines.registry import (
    BASE_SYSTEM,
    MACHINES,
    TARGET_SYSTEMS,
    get_machine,
    list_machines,
)

__all__ = [
    "MachineSpec",
    "MemoryLevelSpec",
    "NetworkSpec",
    "ProcessorSpec",
    "MACHINES",
    "TARGET_SYSTEMS",
    "BASE_SYSTEM",
    "get_machine",
    "list_machines",
]
