"""Dataclass specifications of processors, memory hierarchies and networks.

These specs are pure data: the behavioural models that interpret them live
in :mod:`repro.memory.hierarchy` and :mod:`repro.network.model`.  Keeping
data and behaviour separate lets probes, the ground-truth executor and tests
share one description of each machine.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.util.validation import check_fraction, check_positive

__all__ = ["ProcessorSpec", "MemoryLevelSpec", "NetworkSpec", "MachineSpec"]


@dataclass(frozen=True)
class ProcessorSpec:
    """Floating-point execution characteristics of one processor.

    Attributes
    ----------
    clock_ghz:
        Core clock in GHz.
    flops_per_cycle:
        Peak FP operations retired per cycle (FMA counted as 2).
    ilp_efficiency:
        Fraction of peak sustainable by a perfectly pipelined, high-ILP
        dense kernel (what HPL's DGEMM achieves).  Real Rmax/Rpeak ratios
        for the era's systems ranged roughly 0.45-0.9.
    dependent_fp_efficiency:
        Fraction of peak sustainable when FP operations form a serial
        dependence chain (recurrences); bounded by the FPU pipeline depth.
    """

    clock_ghz: float
    flops_per_cycle: float
    ilp_efficiency: float
    dependent_fp_efficiency: float = 0.12

    def __post_init__(self) -> None:
        check_positive("clock_ghz", self.clock_ghz)
        check_positive("flops_per_cycle", self.flops_per_cycle)
        check_fraction("ilp_efficiency", self.ilp_efficiency)
        check_fraction("dependent_fp_efficiency", self.dependent_fp_efficiency)

    @property
    def peak_flops(self) -> float:
        """Peak FP rate in FLOP/s."""
        return self.clock_ghz * 1e9 * self.flops_per_cycle


@dataclass(frozen=True)
class MemoryLevelSpec:
    """One level of the cache/memory hierarchy, per processor.

    Attributes
    ----------
    name:
        Level label ("L1", "L2", "L3", "MEM").
    size_bytes:
        Capacity visible to one processor.  Use ``float('inf')`` for main
        memory.
    bandwidth:
        Sustained unit-stride streaming bandwidth from this level, B/s.
    latency:
        Load-to-use latency for an access served by this level, seconds.
    line_bytes:
        Transfer granularity (cache line size).
    mlp:
        Memory-level parallelism: number of independent outstanding misses
        the processor can sustain to this level.
    dependent_stream_factor:
        Fraction of ``bandwidth`` achievable for *unit-stride* accesses that
        carry a loop-carried dependence (prefetchers help but the consumer
        serialises).
    """

    name: str
    size_bytes: float
    bandwidth: float
    latency: float
    line_bytes: int = 64
    mlp: float = 4.0
    dependent_stream_factor: float = 0.4

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        check_positive("bandwidth", self.bandwidth)
        check_positive("latency", self.latency)
        check_positive("line_bytes", self.line_bytes)
        check_positive("mlp", self.mlp)
        check_fraction("dependent_stream_factor", self.dependent_stream_factor)


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect characteristics as seen by MPI point-to-point traffic.

    Attributes
    ----------
    name:
        Interconnect family (NUMALink, Colony, Federation, Quadrics, Myrinet).
    latency:
        Small-message one-way MPI latency, seconds.
    bandwidth:
        Large-message sustained point-to-point bandwidth, B/s.
    collective_efficiency:
        Quality factor of the MPI library's collective algorithms relative
        to an ideal log2(P) tree (1.0 = ideal, smaller = slower).
    contention_factor:
        Multiplier applied to application traffic (but not to the pairwise
        NETBENCH probe) representing shared-link contention under full-system
        communication phases.
    """

    name: str
    latency: float
    bandwidth: float
    collective_efficiency: float = 0.75
    contention_factor: float = 1.3

    def __post_init__(self) -> None:
        check_positive("latency", self.latency)
        check_positive("bandwidth", self.bandwidth)
        check_positive("collective_efficiency", self.collective_efficiency)
        if self.contention_factor < 1.0:
            raise ValueError(
                f"contention_factor must be >= 1, got {self.contention_factor!r}"
            )


@dataclass(frozen=True)
class MachineSpec:
    """Complete description of one HPC system.

    Attributes
    ----------
    name:
        Short site_system identifier used throughout the study
        (e.g. ``"ARL_Opteron"``), matching the paper's Table 5 rows.
    architecture:
        Long architecture string matching the paper's Table 2
        (e.g. ``"IBM_Opteron_2.2GHz_MNET"``).
    vendor, model:
        Manufacturer and model from Table 1.
    cpus:
        Number of compute processors in the installed system (Table 2).
    processor:
        FP execution spec.
    memory_levels:
        Hierarchy levels ordered from closest (L1) to farthest (MEM); the
        last level must be main memory (``size_bytes == inf``).
    network:
        Interconnect spec.
    overlap_factor:
        Fraction of the shorter of (FP time, memory time) hidden under the
        longer within a basic block; out-of-order machines overlap more.
    noise_level:
        Relative magnitude of run-to-run variability (OS jitter, placement)
        applied by the ground-truth executor.
    """

    name: str
    architecture: str
    vendor: str
    model: str
    cpus: int
    processor: ProcessorSpec
    memory_levels: tuple[MemoryLevelSpec, ...]
    network: NetworkSpec
    overlap_factor: float = 0.7
    noise_level: float = 0.08
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        check_positive("cpus", self.cpus)
        check_fraction("overlap_factor", self.overlap_factor)
        check_fraction("noise_level", self.noise_level)
        if not self.memory_levels:
            raise ValueError("memory_levels must contain at least one level")
        sizes = [lvl.size_bytes for lvl in self.memory_levels]
        if sorted(sizes) != sizes:
            raise ValueError("memory_levels must be ordered smallest to largest")
        if self.memory_levels[-1].size_bytes != float("inf"):
            raise ValueError("the last memory level must be main memory (size=inf)")

    def fingerprint(self) -> str:
        """Stable content hash of the full spec.

        Caches key probe results by *what the machine is*, not what it is
        called, so mutated variants sharing a name can never alias.  The
        hash covers every field (the nested dataclass ``repr`` is
        deterministic) and is stable across processes, unlike ``hash()``.
        """
        digest = hashlib.blake2b(repr(self).encode("utf-8"), digest_size=16)
        return digest.hexdigest()

    @property
    def peak_flops(self) -> float:
        """Per-processor peak FP rate in FLOP/s."""
        return self.processor.peak_flops

    @property
    def main_memory(self) -> MemoryLevelSpec:
        """The main-memory level (always last)."""
        return self.memory_levels[-1]

    @property
    def caches(self) -> tuple[MemoryLevelSpec, ...]:
        """All on-chip/off-chip cache levels (everything but main memory)."""
        return self.memory_levels[:-1]

    def level(self, name: str) -> MemoryLevelSpec:
        """Return the hierarchy level called ``name`` (e.g. ``"L2"``)."""
        for lvl in self.memory_levels:
            if lvl.name == name:
                return lvl
        raise KeyError(f"{self.name} has no memory level named {name!r}")
