"""Persistent on-disk cache of traces and probe results.

Tracing is the methodology's non-recurring cost ("it is only required once
per application on the base system" — paper Section 3) and probing ten
production systems is a scheduling exercise, yet every fresh process pays
both again because the in-memory caches die with it.  A :class:`TraceStore`
makes the caches durable: repeated studies, ablation sweeps and CLI
invocations skip re-tracing and re-probing entirely, and parallel study
workers share one warm store instead of each re-deriving the same traces.

Artifacts are the JSON documents of :mod:`repro.tracing.serialize`, written
atomically (temp file + rename) so concurrent workers can race on the same
entry without corrupting it; both sides of such a race produce identical
bytes, because everything upstream is seed-stable.  Entries are keyed by a
BLAKE2b digest of their full identity — for probes that includes the
machine spec's content :meth:`~repro.machines.spec.MachineSpec.fingerprint`,
so editing a spec invalidates its cached probes automatically.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path

from repro.machines.spec import MachineSpec
from repro.probes.results import MachineProbes
from repro.tracing.serialize import (
    SCHEMA_VERSION,
    probes_from_json,
    probes_to_json,
    trace_from_json,
    trace_to_json,
)
from repro.tracing.trace import ApplicationTrace

__all__ = ["TraceStore"]


def _digest(*keys: object) -> str:
    h = hashlib.blake2b(digest_size=16)
    for key in keys:
        h.update(repr(key).encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


class TraceStore:
    """Directory-backed cache of serialised traces and probe bundles.

    Parameters
    ----------
    root:
        Cache directory; created (with parents) on first use.  Safe to share
        between processes and to delete wholesale at any time.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.traces_dir = self.root / "traces"
        self.probes_dir = self.root / "probes"
        self.traces_dir.mkdir(parents=True, exist_ok=True)
        self.probes_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _trace_path(
        self,
        application: str,
        cpus: int,
        base_machine: str,
        sample_size: int,
        cache_sim: bool,
        cache_model: str | None,
    ) -> Path:
        # cache_model only shapes the artifact when cache accounting ran.
        model = cache_model if cache_sim else None
        name = _digest(
            "trace",
            SCHEMA_VERSION,
            application,
            cpus,
            base_machine,
            sample_size,
            cache_sim,
            model,
        )
        return self.traces_dir / f"{name}.json"

    def _probes_path(self, machine: MachineSpec) -> Path:
        name = _digest("probes", SCHEMA_VERSION, machine.name, machine.fingerprint())
        return self.probes_dir / f"{name}.json"

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @staticmethod
    def _read(path: Path) -> str | None:
        try:
            return path.read_text()
        except OSError:
            return None

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------
    def has_trace(
        self,
        application: str,
        cpus: int,
        base_machine: str,
        sample_size: int,
        cache_sim: bool = False,
        cache_model: str = "analytic",
    ) -> bool:
        """Whether an entry exists for this identity (it may still be corrupt)."""
        return self._trace_path(
            application, cpus, base_machine, sample_size, cache_sim, cache_model
        ).exists()

    def load_trace(
        self,
        application: str,
        cpus: int,
        base_machine: str,
        sample_size: int,
        cache_sim: bool = False,
        cache_model: str = "analytic",
    ) -> ApplicationTrace | None:
        """The cached trace for this identity, or None if absent/unreadable."""
        text = self._read(
            self._trace_path(
                application, cpus, base_machine, sample_size, cache_sim, cache_model
            )
        )
        if text is None:
            return None
        try:
            return trace_from_json(text)
        except (ValueError, KeyError):
            return None  # corrupt or stale-schema entry: recompute

    def save_trace(
        self,
        trace: ApplicationTrace,
        *,
        cache_sim: bool = False,
        cache_model: str = "analytic",
    ) -> None:
        """Persist ``trace`` under its identity key."""
        path = self._trace_path(
            trace.application,
            trace.cpus,
            trace.base_machine,
            trace.sample_size,
            cache_sim,
            cache_model,
        )
        self._write_atomic(path, trace_to_json(trace))

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def has_probes(self, machine: MachineSpec) -> bool:
        """Whether an entry exists for this exact spec."""
        return self._probes_path(machine).exists()

    def load_probes(self, machine: MachineSpec) -> MachineProbes | None:
        """Cached probe bundle for this exact spec, or None."""
        text = self._read(self._probes_path(machine))
        if text is None:
            return None
        try:
            return probes_from_json(text)
        except (ValueError, KeyError):
            return None

    def save_probes(self, machine: MachineSpec, probes: MachineProbes) -> None:
        """Persist ``probes`` keyed by the spec's content fingerprint."""
        self._write_atomic(self._probes_path(machine), probes_to_json(probes))
