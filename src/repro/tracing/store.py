"""Persistent on-disk cache of traces and probe results — self-healing.

Tracing is the methodology's non-recurring cost ("it is only required once
per application on the base system" — paper Section 3) and probing ten
production systems is a scheduling exercise, yet every fresh process pays
both again because the in-memory caches die with it.  A :class:`TraceStore`
makes the caches durable: repeated studies, ablation sweeps and CLI
invocations skip re-tracing and re-probing entirely, and parallel study
workers share one warm store instead of each re-deriving the same traces.

Entries are the binary records of :mod:`repro.tracing.binfmt` —
``<digest>.rpb`` files whose NumPy sections load zero-copy via
``np.memmap`` straight into the tensorised execute/convolve pipeline (no
per-block Python object reconstruction), with a BLAKE2b checksum and a
format version in the prelude.  Writes are atomic (temp file + rename) so
concurrent workers can race on the same entry without corrupting it, and
*deferred*: a save just records the entry (even the encode is lazy) and a
background writer drains the backlog in batches on its own poll cadence,
overlapping the study's compute — batching matters because waking the
writer once per save costs more in GIL convoys than the writes
themselves.  Reads of an entry whose write is still in flight
synchronise first, and :meth:`TraceStore.flush` blocks until the backlog
is written (the study runner flushes before returning), so the deferral
is observable only as lower wall-clock.
Entries are keyed by a BLAKE2b digest of their full identity — for probes
that includes the machine spec's content
:meth:`~repro.machines.spec.MachineSpec.fingerprint`, so editing a spec
invalidates its cached probes automatically.

**Legacy format:** stores written by earlier builds hold ``<digest>.json``
entries (the :mod:`repro.tracing.serialize` documents inside a checksummed
JSON envelope).  These stay readable: a load that only finds the legacy
file decodes it, rewrites the entry in binary form and removes the JSON
original — migration on first touch.  ``repro-study store migrate``
converts a whole cache directory eagerly; mixed directories are fine at
every point in between.

**Self-healing:** a load that fails *any* validation step — unreadable
file, bad magic, foreign format version, length mismatch (truncation,
torn write), checksum mismatch (bit rot), malformed header, stale payload
schema — logs a warning, deletes the entry, counts it in
:attr:`TraceStore.invalidated` and returns ``None``, so the caller
transparently re-traces and re-saves.  A corrupt cache can therefore
never fail a study, only slow it down.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import logging
import os
import threading
import weakref
from collections.abc import Callable
from pathlib import Path

from repro.core.errors import TraceCorruptError
from repro.events.types import Event, ProbeCompleted, StoreInvalidated, TraceCaptured
from repro.machines.spec import MachineSpec
from repro.probes.results import MachineProbes
from repro.tracing import binfmt
from repro.tracing.serialize import (
    SCHEMA_VERSION,
    probes_from_json,
    probes_to_json,  # noqa: F401  (legacy writer, kept importable for tests)
    trace_from_json,
    trace_to_json,  # noqa: F401
)
from repro.tracing.trace import ApplicationTrace
from repro.util.clock import as_clock
from repro.util.io import write_atomic_bytes
from repro.util.options import CacheModel

__all__ = ["TraceStore", "STORE_SCHEMA_VERSION", "trace_key", "probes_key"]

log = logging.getLogger(__name__)

#: Version of the *legacy* JSON envelope layout (independent of the
#: payload's :data:`~repro.tracing.serialize.SCHEMA_VERSION`).  New
#: entries carry :data:`repro.tracing.binfmt.FORMAT_VERSION` instead.
STORE_SCHEMA_VERSION = 1

#: Suffix of current (binary) and legacy (JSON envelope) entries.
BINARY_SUFFIX = ".rpb"
LEGACY_SUFFIX = ".json"


#: Live stores with write-behind backlogs; the atexit hook drains them so
#: an interpreter exit between runner flush points (Ctrl-C, sys.exit from
#: a script) cannot drop encoded-but-unwritten entries.
_LIVE_STORES: "weakref.WeakSet[TraceStore]" = weakref.WeakSet()


def _flush_stores_at_exit() -> None:
    for store in list(_LIVE_STORES):
        try:
            store._drain_inline()
        except Exception:  # pragma: no cover - last-ditch, never raise at exit
            log.exception("trace store flush at interpreter exit failed")


atexit.register(_flush_stores_at_exit)


def _digest(*keys: object) -> str:
    h = hashlib.blake2b(digest_size=16)
    for key in keys:
        h.update(repr(key).encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


def _checksum(payload: str) -> str:
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def trace_key(
    application: str,
    cpus: int,
    base_machine: str,
    sample_size: int,
    cache_sim: bool = False,
    cache_model: str | None = "analytic",
) -> str:
    """The content digest naming a trace identity in every store.

    This is the public form of the digest that stems ``<digest>.rpb``
    entries on disk; the serve fleet reuses it as the consistent-hashing
    shard key, so "which worker owns this trace" and "which file holds
    it" are the same question.  ``cache_model`` only shapes the artifact
    when cache accounting ran, mirroring the tracer's own identity rule.
    """
    model = str(CacheModel.coerce(cache_model)) if cache_sim else None
    return _digest(
        "trace",
        SCHEMA_VERSION,
        application,
        int(cpus),
        base_machine,
        int(sample_size),
        bool(cache_sim),
        model,
    )


def probes_key(machine: MachineSpec) -> str:
    """The content digest naming a machine's probe bundle in every store."""
    return _digest("probes", SCHEMA_VERSION, machine.name, machine.fingerprint())


class TraceStore:
    """Directory-backed cache of serialised traces and probe bundles.

    Parameters
    ----------
    root:
        Cache directory; created (with parents) on first use.  Safe to share
        between processes and to delete wholesale at any time.
    faults:
        Optional :class:`~repro.util.faults.FaultPlan`; when its
        ``corrupt_rate`` fires, a save writes deterministically damaged
        bytes — the chaos harness's way of proving the checksummed load
        path heals instead of raising.
    events:
        Optional :class:`~repro.events.log.EventLog` (or anything with an
        ``append(event)``) the store's durability events are appended to:
        ``trace-captured``/``probe-completed`` on save,
        ``store-invalidated`` on self-heal.  Event-log trouble never
        fails the store — emission is best-effort by design.

    Attributes
    ----------
    invalidated:
        Count of entries this instance deleted because they failed
        validation (diagnostic; the chaos tests assert it moves and the
        service's ``/healthz`` reports it).  Since the durability core
        landed this is a read-only projection over the store's own
        ``store-invalidated`` events, so the number on ``/healthz``, in
        ``store info`` and in an attached event log are one fact.
    """

    #: Idle seconds after which a store's background writer thread exits
    #: (it restarts on the next save, so short-lived stores — one per
    #: study chunk in pool workers — never accumulate threads).
    WRITER_IDLE_SECONDS = 1.0

    #: Seconds the writer sleeps between drain rounds.  Saves do *not*
    #: wake it (only :meth:`flush` does): letting entries accumulate and
    #: draining them in batches keeps the thread to a handful of wakeups
    #: per study instead of one GIL convoy per save — on a single core
    #: the per-item wakeups cost several times the writes themselves.
    WRITER_POLL_SECONDS = 0.02

    def __init__(
        self, root: str | os.PathLike, *, faults=None, events=None, clock=None
    ):
        self.root = Path(root)
        self.traces_dir = self.root / "traces"
        self.probes_dir = self.root / "probes"
        self.traces_dir.mkdir(parents=True, exist_ok=True)
        self.probes_dir.mkdir(parents=True, exist_ok=True)
        self.faults = faults
        self.events = events
        # Paces the background writer (poll waits + idle-exit timing).
        # Note the writer thread only *reads* a virtual clock — it never
        # advances one — so under simulation it keeps draining promptly
        # (Clock.wait maps to a tiny real wait) without perturbing the
        # episode's deterministic timeline.
        self._clock = as_clock(clock)
        self._invalidated = 0
        self._lock = threading.Lock()
        # Write-behind state: saves enqueue encoded bytes (or zero-arg
        # encoders) here and a daemon thread drains them to disk in
        # batches while the study computes on.  The condition (sharing
        # the store lock) lets flush() wait for "pending empty and no
        # batch in flight"; the kick event lets flush skip the writer's
        # batching sleep.
        self._pending: dict[Path, "bytes | Callable[[], bytes]"] = {}
        self._cond = threading.Condition(self._lock)
        self._kick = threading.Event()
        self._in_flight = False
        self._writer: threading.Thread | None = None
        # Identity -> (binary, legacy) path memo.  A cold study resolves
        # every cell's identity twice (miss-check, then save); hashing the
        # key tuple is ~10x cheaper than re-deriving the blake2b stem and
        # two suffixed Paths each time.  Bounded by the number of distinct
        # identities a process touches (apps x cpu counts x machines).
        self._trace_paths_memo: dict[tuple, tuple[Path, Path]] = {}
        self._probes_paths_memo: dict[tuple, tuple[Path, Path]] = {}
        _LIVE_STORES.add(self)

    # ------------------------------------------------------------------
    # durability events
    # ------------------------------------------------------------------
    @property
    def invalidated(self) -> int:
        """Entries this instance self-healed (fold of its invalidation events)."""
        with self._lock:
            return self._invalidated

    def _emit(self, event: Event) -> None:
        """Fold ``event`` into local accounting and the attached log.

        Called outside :attr:`_lock` — the event log has its own lock and
        doing file I/O inside the store's critical section would stall
        every reader behind an fsync.
        """
        if isinstance(event, StoreInvalidated):
            with self._lock:
                self._invalidated += 1
        if self.events is None:
            return
        try:
            self.events.append(event)
        except (OSError, ValueError) as exc:
            log.warning("could not append %s event to event log: %s",
                        type(event).kind, exc)

    # ------------------------------------------------------------------
    def _trace_stem(
        self,
        application: str,
        cpus: int,
        base_machine: str,
        sample_size: int,
        cache_sim: bool,
        cache_model: str | None,
    ) -> Path:
        return self.traces_dir / trace_key(
            application, cpus, base_machine, sample_size, cache_sim, cache_model
        )

    def _probes_stem(self, machine: MachineSpec) -> Path:
        return self.probes_dir / probes_key(machine)

    def _trace_paths(
        self,
        application: str,
        cpus: int,
        base_machine: str,
        sample_size: int,
        cache_sim: bool,
        cache_model: str | None,
    ) -> tuple[Path, Path]:
        """Memoized ``(binary, legacy)`` entry paths for one trace identity."""
        key = (application, cpus, base_machine, sample_size, cache_sim, cache_model)
        paths = self._trace_paths_memo.get(key)
        if paths is None:
            stem = self._trace_stem(
                application, cpus, base_machine, sample_size, cache_sim, cache_model
            )
            paths = (stem.with_suffix(BINARY_SUFFIX), stem.with_suffix(LEGACY_SUFFIX))
            self._trace_paths_memo[key] = paths
        return paths

    def _probes_paths(self, machine: MachineSpec) -> tuple[Path, Path]:
        """Memoized ``(binary, legacy)`` entry paths for one probe identity."""
        key = (machine.name, machine.fingerprint())
        paths = self._probes_paths_memo.get(key)
        if paths is None:
            stem = self._probes_stem(machine)
            paths = (stem.with_suffix(BINARY_SUFFIX), stem.with_suffix(LEGACY_SUFFIX))
            self._probes_paths_memo[key] = paths
        return paths

    # ------------------------------------------------------------------
    # binary entries
    # ------------------------------------------------------------------
    def _save_entry(self, path: Path, data: bytes) -> None:
        if self.faults is not None and self.faults.should_corrupt(path.name):
            data = self.faults.corrupt_bytes(data, path.name)
        # durable=False: entries are checksummed and self-healing, so a
        # machine crash that tears one costs a re-trace, not correctness;
        # skipping the per-file fsync keeps the store tax on a cold study
        # to a few percent instead of ~40%.
        write_atomic_bytes(path, data, durable=False)

    def _enqueue_entry(self, path: Path, data) -> None:
        """Queue one entry for the background writer (write-behind).

        ``data`` is either the encoded bytes or a zero-argument callable
        producing them: deferring the encode keeps even the serialisation
        cost off the compute path (the writer thread encodes on another
        core).  Fault corruption is applied by the writer, keyed on the
        entry name, so the bytes on disk match what a synchronous save
        would have produced.  Loads of a pending path flush first (see
        :meth:`_sync_pending`), so deferral is invisible to every reader.

        A save deliberately does *not* wake the writer: it drains on its
        own poll cadence so a burst of saves costs one thread wakeup, not
        one per entry.
        """
        _LIVE_STORES.add(self)
        with self._lock:
            self._pending[path] = data
            if self._writer is None:
                self._writer = threading.Thread(
                    target=self._drain_writes,
                    name="trace-store-writer",
                    daemon=True,
                )
                self._writer.start()

    def _write_one(self, path: Path, data) -> None:
        """Encode (if deferred), fault-corrupt and write one entry."""
        try:
            payload = data() if callable(data) else data
            if self.faults is not None and self.faults.should_corrupt(path.name):
                payload = self.faults.corrupt_bytes(payload, path.name)
            write_atomic_bytes(path, payload, durable=False)
        except (OSError, ValueError) as exc:
            log.warning(
                "deferred write of store entry %s failed (%s); "
                "it will be recomputed next time",
                path.name,
                exc,
            )

    def _drain_writes(self) -> None:
        try:
            last_work = self._clock.monotonic()
            while True:
                self._clock.wait(self._kick, self.WRITER_POLL_SECONDS)
                self._kick.clear()
                with self._cond:
                    batch = list(self._pending.items())
                    if not batch:
                        if (
                            self._clock.monotonic() - last_work
                            >= self.WRITER_IDLE_SECONDS
                        ):
                            return
                        continue
                    self._in_flight = True
                try:
                    for path, data in batch:
                        self._write_one(path, data)
                finally:
                    last_work = self._clock.monotonic()
                    with self._cond:
                        for path, data in batch:
                            # A newer save of the same path may have
                            # replaced the bytes we just wrote; the next
                            # batch picks it up.
                            if self._pending.get(path) is data:
                                del self._pending[path]
                        self._in_flight = False
                        self._cond.notify_all()
        finally:
            # Normal idle exit and a crashed thread look the same to
            # flush(): the slot is free, a later save (or flush itself)
            # starts a fresh writer rather than waiting forever.
            with self._cond:
                if self._writer is threading.current_thread():
                    self._writer = None
                self._cond.notify_all()

    def flush(self) -> None:
        """Block until every pending write has reached the filesystem."""
        with self._cond:
            while self._pending or self._in_flight:
                if self._writer is None:
                    # Defensive: a writer can only be absent here if it
                    # crashed mid-batch; restart rather than wait forever.
                    self._writer = threading.Thread(
                        target=self._drain_writes,
                        name="trace-store-writer",
                        daemon=True,
                    )
                    self._writer.start()
                self._kick.set()
                self._cond.wait(timeout=1.0)

    def _drain_inline(self) -> None:
        """Write the backlog in the calling thread (no writer involved).

        The interpreter-exit path: at shutdown the daemon writer may
        already be dead and new threads cannot start, so the atexit hook
        (and :meth:`close`) drain synchronously.  Racing an in-flight
        writer batch is harmless — entry writes are atomic renames of
        identical content, so double-writing is idempotent.
        """
        with self._cond:
            batch = list(self._pending.items())
        for path, data in batch:
            self._write_one(path, data)
        with self._cond:
            for path, data in batch:
                if self._pending.get(path) is data:
                    del self._pending[path]
            self._cond.notify_all()

    def close(self) -> None:
        """Drain the backlog and detach from the interpreter-exit hook.

        The store stays usable after ``close()`` (a later save re-enrolls
        it); closing is about making "everything saved so far is on disk"
        explicit at the end of a store's life.
        """
        self._drain_inline()
        _LIVE_STORES.discard(self)

    def _sync_pending(self, *paths: Path) -> None:
        """Complete any in-flight write of ``paths`` before a read."""
        if self._pending and any(p in self._pending for p in paths):
            self.flush()

    def _invalidate(self, path: Path, kind: str, reason: Exception) -> None:
        # The critical section covers the unlink so concurrent service
        # threads healing the same entry serialise and the delete/re-trace
        # sequence is not interleaved mid-heal; the count folds in via the
        # invalidation event (under the same lock, in _emit).
        with self._lock:
            log.warning(
                "invalidating corrupt %s entry %s (%s); it will be recomputed",
                kind,
                path.name,
                reason,
            )
            try:
                path.unlink()
            except OSError:  # already gone (concurrent healer) — fine
                pass
        self._emit(
            StoreInvalidated(entry_kind=kind, entry=path.name, reason=str(reason))
        )

    # ------------------------------------------------------------------
    # legacy JSON envelope
    # ------------------------------------------------------------------
    def _load_legacy_payload(self, path: Path, kind: str) -> str | None:
        """Validated payload text of the legacy entry at ``path``, or None.

        Every failure mode self-heals: the entry is logged, deleted and
        reported absent so the caller recomputes it.
        """
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            try:
                envelope = json.loads(text)
            except json.JSONDecodeError as exc:
                raise TraceCorruptError(f"unparseable store entry: {exc}") from exc
            if not isinstance(envelope, dict) or envelope.get("kind") != "store-entry":
                raise TraceCorruptError(
                    "not a store entry envelope (pre-envelope or foreign file)"
                )
            if envelope.get("store_schema") != STORE_SCHEMA_VERSION:
                raise TraceCorruptError(
                    f"stale store schema {envelope.get('store_schema')!r} "
                    f"(this build reads {STORE_SCHEMA_VERSION})"
                )
            payload = envelope.get("payload")
            if not isinstance(payload, str):
                raise TraceCorruptError("envelope payload missing")
            if _checksum(payload) != envelope.get("checksum"):
                raise TraceCorruptError("checksum mismatch (corrupt or torn entry)")
            return payload
        except TraceCorruptError as exc:
            self._invalidate(path, kind, exc)
            return None

    def _load_legacy(self, path: Path, kind: str, from_json):
        payload = self._load_legacy_payload(path, kind)
        if payload is None:
            return None
        try:
            return from_json(payload)
        except (ValueError, KeyError, TypeError) as exc:
            self._invalidate(path, kind, exc)
            return None

    def _migrate_entry(self, legacy: Path, binary: Path, data: bytes) -> None:
        """Rewrite one validated legacy entry in binary form, atomically.

        The binary file lands first (atomic rename), then the legacy file
        goes; a crash in between leaves both, and every reader prefers
        the binary one — migration is idempotent and resumable.
        """
        self._save_entry(binary, data)
        try:
            legacy.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------
    def has_trace(
        self,
        application: str,
        cpus: int,
        base_machine: str,
        sample_size: int,
        cache_sim: bool = False,
        cache_model: str = "analytic",
    ) -> bool:
        """Whether an entry exists for this identity (it may still be corrupt)."""
        binary, legacy = self._trace_paths(
            application, cpus, base_machine, sample_size, cache_sim, cache_model
        )
        self._sync_pending(binary)
        return binary.exists() or legacy.exists()

    def load_trace(
        self,
        application: str,
        cpus: int,
        base_machine: str,
        sample_size: int,
        cache_sim: bool = False,
        cache_model: str = "analytic",
    ) -> ApplicationTrace | binfmt.MappedTrace | None:
        """The cached trace for this identity, or None if absent/invalid.

        Binary entries come back as zero-copy
        :class:`~repro.tracing.binfmt.MappedTrace` views of the mapped
        file; a legacy JSON entry decodes to a full
        :class:`ApplicationTrace` and is migrated to binary in passing.
        """
        binary, legacy = self._trace_paths(
            application, cpus, base_machine, sample_size, cache_sim, cache_model
        )
        self._sync_pending(binary)
        if binary.exists():
            try:
                return binfmt.load_trace(binary)
            except TraceCorruptError as exc:
                self._invalidate(binary, "trace", exc)
                return None
        if legacy.exists():
            trace = self._load_legacy(legacy, "trace", trace_from_json)
            if trace is None:
                return None
            self._migrate_entry(legacy, binary, binfmt.trace_to_bytes(trace))
            return trace
        return None

    def save_trace(
        self,
        trace,
        *,
        cache_sim: bool = False,
        cache_model: str = "analytic",
    ) -> None:
        """Persist ``trace`` under its identity key (binary format)."""
        binary, _ = self._trace_paths(
            trace.application,
            trace.cpus,
            trace.base_machine,
            trace.sample_size,
            cache_sim,
            cache_model,
        )
        # The callable defers the encode to the writer thread: a cold
        # study's foreground cost per save is one dict insert + queue put.
        self._enqueue_entry(binary, lambda: binfmt.trace_to_bytes(trace))
        self._emit(
            TraceCaptured(
                application=trace.application,
                cpus=int(trace.cpus),
                base_machine=trace.base_machine,
                key=binary.stem,
            )
        )

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def has_probes(self, machine: MachineSpec) -> bool:
        """Whether an entry exists for this exact spec."""
        binary, legacy = self._probes_paths(machine)
        self._sync_pending(binary)
        return binary.exists() or legacy.exists()

    def load_probes(self, machine: MachineSpec) -> MachineProbes | None:
        """Cached probe bundle for this exact spec, or None.

        Binary entries keep their curve arrays as zero-copy views of the
        mapped file; legacy JSON entries migrate to binary in passing.
        """
        binary, legacy = self._probes_paths(machine)
        self._sync_pending(binary)
        if binary.exists():
            try:
                return binfmt.load_probes(binary)
            except TraceCorruptError as exc:
                self._invalidate(binary, "probes", exc)
                return None
        if legacy.exists():
            probes = self._load_legacy(legacy, "probes", probes_from_json)
            if probes is None:
                return None
            self._migrate_entry(legacy, binary, binfmt.probes_to_bytes(probes))
            return probes
        return None

    def save_probes(self, machine: MachineSpec, probes: MachineProbes) -> None:
        """Persist ``probes`` keyed by the spec's content fingerprint."""
        binary, _ = self._probes_paths(machine)
        self._enqueue_entry(binary, lambda: binfmt.probes_to_bytes(probes))
        self._emit(ProbeCompleted(machine=machine.name, key=binary.stem))

    # ------------------------------------------------------------------
    # maintenance (``repro-study store ...``)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Format versions, entry counts and byte totals, per kind."""
        self.flush()

        def scan(directory: Path) -> dict:
            counts = {"binary": 0, "legacy_json": 0, "bytes": 0}
            for path in sorted(directory.iterdir()):
                if path.suffix == BINARY_SUFFIX:
                    counts["binary"] += 1
                elif path.suffix == LEGACY_SUFFIX:
                    counts["legacy_json"] += 1
                else:
                    continue
                try:
                    counts["bytes"] += path.stat().st_size
                except OSError:
                    pass
            return counts

        return {
            "root": str(self.root),
            "binary_format_version": binfmt.FORMAT_VERSION,
            "payload_schema_version": SCHEMA_VERSION,
            "legacy_store_schema": STORE_SCHEMA_VERSION,
            "traces": scan(self.traces_dir),
            "probes": scan(self.probes_dir),
            "invalidated": self.invalidated,
        }

    def migrate(self) -> dict:
        """Rewrite every legacy JSON entry in binary form, in place.

        Each entry converts independently and atomically (binary written,
        then legacy removed), so an interrupted migration resumes where
        it stopped: already-converted entries are skipped, leftover
        legacy twins of existing binaries are just cleaned up, and
        corrupt legacy entries are invalidated exactly as a load would.
        Returns counts per outcome.
        """
        self.flush()
        report = {"migrated": 0, "cleaned": 0, "invalidated": 0}
        plans = (
            (self.traces_dir, "trace", trace_from_json, binfmt.trace_to_bytes),
            (self.probes_dir, "probes", probes_from_json, binfmt.probes_to_bytes),
        )
        for directory, kind, from_json, to_bytes in plans:
            for legacy in sorted(directory.glob(f"*{LEGACY_SUFFIX}")):
                binary = legacy.with_suffix(BINARY_SUFFIX)
                if binary.exists():
                    try:
                        legacy.unlink()
                    except OSError:
                        pass
                    report["cleaned"] += 1
                    continue
                before = self.invalidated
                obj = self._load_legacy(legacy, kind, from_json)
                if obj is None:
                    report["invalidated"] += self.invalidated - before
                    continue
                self._migrate_entry(legacy, binary, to_bytes(obj))
                report["migrated"] += 1
        return report
