"""Persistent on-disk cache of traces and probe results — self-healing.

Tracing is the methodology's non-recurring cost ("it is only required once
per application on the base system" — paper Section 3) and probing ten
production systems is a scheduling exercise, yet every fresh process pays
both again because the in-memory caches die with it.  A :class:`TraceStore`
makes the caches durable: repeated studies, ablation sweeps and CLI
invocations skip re-tracing and re-probing entirely, and parallel study
workers share one warm store instead of each re-deriving the same traces.

Artifacts are the JSON documents of :mod:`repro.tracing.serialize` wrapped
in a checksummed envelope::

    {"kind": "store-entry", "store_schema": 1,
     "checksum": "<blake2b of payload>", "payload": "<serialized JSON>"}

written atomically (temp file + rename) so concurrent workers can race on
the same entry without corrupting it.  Entries are keyed by a BLAKE2b
digest of their full identity — for probes that includes the machine
spec's content :meth:`~repro.machines.spec.MachineSpec.fingerprint`, so
editing a spec invalidates its cached probes automatically.

**Self-healing:** a load that fails *any* validation step — unreadable
file, non-envelope bytes, checksum mismatch (truncation, bit rot, torn
concurrent write), stale schema version, malformed payload — logs a
warning, deletes the entry, counts it in :attr:`TraceStore.invalidated`
and returns ``None``, so the caller transparently re-traces and re-saves.
A corrupt cache can therefore never fail a study, only slow it down.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from pathlib import Path

from repro.core.errors import TraceCorruptError
from repro.machines.spec import MachineSpec
from repro.probes.results import MachineProbes
from repro.tracing.serialize import (
    SCHEMA_VERSION,
    probes_from_json,
    probes_to_json,
    trace_from_json,
    trace_to_json,
)
from repro.tracing.trace import ApplicationTrace
from repro.util.io import write_atomic
from repro.util.options import CacheModel

__all__ = ["TraceStore", "STORE_SCHEMA_VERSION"]

log = logging.getLogger(__name__)

#: Version of the envelope layout (independent of the payload's
#: :data:`~repro.tracing.serialize.SCHEMA_VERSION`).
STORE_SCHEMA_VERSION = 1


def _digest(*keys: object) -> str:
    h = hashlib.blake2b(digest_size=16)
    for key in keys:
        h.update(repr(key).encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


def _checksum(payload: str) -> str:
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


class TraceStore:
    """Directory-backed cache of serialised traces and probe bundles.

    Parameters
    ----------
    root:
        Cache directory; created (with parents) on first use.  Safe to share
        between processes and to delete wholesale at any time.
    faults:
        Optional :class:`~repro.util.faults.FaultPlan`; when its
        ``corrupt_rate`` fires, a save writes deterministically damaged
        bytes — the chaos harness's way of proving the checksummed load
        path heals instead of raising.

    Attributes
    ----------
    invalidated:
        Count of entries this instance deleted because they failed
        validation (diagnostic; the chaos tests assert it moves and the
        service's ``/healthz`` reports it).  Guarded by an internal lock:
        one store instance is shared by every thread of the prediction
        service, and an unguarded ``+= 1`` under concurrent invalidations
        loses counts (and could double-unlink a healing entry).
    """

    def __init__(self, root: str | os.PathLike, *, faults=None):
        self.root = Path(root)
        self.traces_dir = self.root / "traces"
        self.probes_dir = self.root / "probes"
        self.traces_dir.mkdir(parents=True, exist_ok=True)
        self.probes_dir.mkdir(parents=True, exist_ok=True)
        self.faults = faults
        self.invalidated = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _trace_path(
        self,
        application: str,
        cpus: int,
        base_machine: str,
        sample_size: int,
        cache_sim: bool,
        cache_model: str | None,
    ) -> Path:
        # cache_model only shapes the artifact when cache accounting ran;
        # coercing through the shared enum rejects a typo before it mints
        # a digest no reader would ever look up.
        model = str(CacheModel.coerce(cache_model)) if cache_sim else None
        name = _digest(
            "trace",
            SCHEMA_VERSION,
            application,
            cpus,
            base_machine,
            sample_size,
            cache_sim,
            model,
        )
        return self.traces_dir / f"{name}.json"

    def _probes_path(self, machine: MachineSpec) -> Path:
        name = _digest("probes", SCHEMA_VERSION, machine.name, machine.fingerprint())
        return self.probes_dir / f"{name}.json"

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        write_atomic(path, text)

    @staticmethod
    def _read(path: Path) -> str | None:
        try:
            return path.read_text()
        except OSError:
            return None

    # ------------------------------------------------------------------
    # envelope
    # ------------------------------------------------------------------
    def _save_entry(self, path: Path, payload: str) -> None:
        if self.faults is not None and self.faults.should_corrupt(path.name):
            payload = self.faults.corrupt_text(payload, path.name)
        envelope = {
            "kind": "store-entry",
            "store_schema": STORE_SCHEMA_VERSION,
            "checksum": _checksum(payload),
            "payload": payload,
        }
        write_atomic(path, json.dumps(envelope))

    def _load_entry(self, path: Path, kind: str) -> str | None:
        """Validated payload text of the entry at ``path``, or None.

        Every failure mode self-heals: the entry is logged, deleted and
        reported absent so the caller recomputes it.
        """
        text = self._read(path)
        if text is None:
            return None
        try:
            try:
                envelope = json.loads(text)
            except json.JSONDecodeError as exc:
                raise TraceCorruptError(f"unparseable store entry: {exc}") from exc
            if not isinstance(envelope, dict) or envelope.get("kind") != "store-entry":
                raise TraceCorruptError(
                    "not a store entry envelope (pre-envelope or foreign file)"
                )
            if envelope.get("store_schema") != STORE_SCHEMA_VERSION:
                raise TraceCorruptError(
                    f"stale store schema {envelope.get('store_schema')!r} "
                    f"(this build reads {STORE_SCHEMA_VERSION})"
                )
            payload = envelope.get("payload")
            if not isinstance(payload, str):
                raise TraceCorruptError("envelope payload missing")
            if _checksum(payload) != envelope.get("checksum"):
                raise TraceCorruptError("checksum mismatch (corrupt or torn entry)")
            return payload
        except TraceCorruptError as exc:
            self._invalidate(path, kind, exc)
            return None

    def _invalidate(self, path: Path, kind: str, reason: Exception) -> None:
        # One critical section covers the count *and* the unlink so
        # concurrent service threads healing the same entry serialise:
        # the counter never loses an increment and the delete/re-trace
        # sequence is not interleaved mid-heal.
        with self._lock:
            self.invalidated += 1
            log.warning(
                "invalidating corrupt %s entry %s (%s); it will be recomputed",
                kind,
                path.name,
                reason,
            )
            try:
                path.unlink()
            except OSError:  # already gone (concurrent healer) — fine
                pass

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------
    def has_trace(
        self,
        application: str,
        cpus: int,
        base_machine: str,
        sample_size: int,
        cache_sim: bool = False,
        cache_model: str = "analytic",
    ) -> bool:
        """Whether an entry exists for this identity (it may still be corrupt)."""
        return self._trace_path(
            application, cpus, base_machine, sample_size, cache_sim, cache_model
        ).exists()

    def load_trace(
        self,
        application: str,
        cpus: int,
        base_machine: str,
        sample_size: int,
        cache_sim: bool = False,
        cache_model: str = "analytic",
    ) -> ApplicationTrace | None:
        """The cached trace for this identity, or None if absent/invalid."""
        path = self._trace_path(
            application, cpus, base_machine, sample_size, cache_sim, cache_model
        )
        payload = self._load_entry(path, "trace")
        if payload is None:
            return None
        try:
            return trace_from_json(payload)
        except (ValueError, KeyError, TypeError) as exc:
            self._invalidate(path, "trace", exc)
            return None

    def save_trace(
        self,
        trace: ApplicationTrace,
        *,
        cache_sim: bool = False,
        cache_model: str = "analytic",
    ) -> None:
        """Persist ``trace`` under its identity key."""
        path = self._trace_path(
            trace.application,
            trace.cpus,
            trace.base_machine,
            trace.sample_size,
            cache_sim,
            cache_model,
        )
        self._save_entry(path, trace_to_json(trace))

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def has_probes(self, machine: MachineSpec) -> bool:
        """Whether an entry exists for this exact spec."""
        return self._probes_path(machine).exists()

    def load_probes(self, machine: MachineSpec) -> MachineProbes | None:
        """Cached probe bundle for this exact spec, or None."""
        path = self._probes_path(machine)
        payload = self._load_entry(path, "probes")
        if payload is None:
            return None
        try:
            return probes_from_json(payload)
        except (ValueError, KeyError, TypeError) as exc:
            self._invalidate(path, "probes", exc)
            return None

    def save_probes(self, machine: MachineSpec, probes: MachineProbes) -> None:
        """Persist ``probes`` keyed by the spec's content fingerprint."""
        self._save_entry(self._probes_path(machine), probes_to_json(probes))
