"""Versioned, checksummed, memory-mappable binary trace/probe format.

The JSON archive (:mod:`repro.tracing.serialize`) round-trips every trace
and probe record through ``json.dumps``/``json.loads`` and a per-block
Python object rebuild — ~40% overhead on a store-backed study.  This
module stores the same payloads as contiguous NumPy dtype sections that
:class:`~repro.tracing.store.TraceStore` loads zero-copy via ``np.memmap``
straight into the tensorised execute/convolve pipeline.

On-disk layout (little-endian)::

    offset  size  field
    0       4     magic  b"RPBF"
    4       2     format version (uint16) — this build reads 1
    6       1     kind   (1 = application trace, 2 = machine probes)
    7       1     reserved (0)
    8       4     header length in bytes (uint32)
    12      8     payload length in bytes (uint64)
    20      16    BLAKE2b-16 digest of everything after the prelude
    36      ...   header: compact JSON (identity fields, section table,
                  small ragged metadata such as MPI event records)
    ...     ...   zero padding to a 64-byte payload boundary
    ...     ...   payload: concatenated sections, each 16-byte aligned

Scalars that must survive exactly live either in float64 sections (block
tables) or in the JSON header (``repr``-based float round-tripping is
exact), so a decoded entry is bit-identical to what was stored — the
byte-identity contract of the golden study capture extends through the
store.  Every validation failure — bad magic, foreign version, length
mismatch (truncation / torn write), digest mismatch (bit rot), malformed
header, stale payload schema — raises
:class:`~repro.core.errors.TraceCorruptError`, which the store's
self-healing load path converts into invalidate-and-recompute.

Traces load as :class:`MappedTrace`: identity fields plus zero-copy
:class:`~repro.tracing.trace.BlockArrays` views for the convolver's hot
path; per-block :class:`~repro.tracing.trace.BlockTrace` objects are only
materialised if someone actually asks for ``trace.blocks``.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from typing import Any

import numpy as np

from repro.core.errors import TraceCorruptError
from repro.memory.patterns import StrideHistogram
from repro.network.model import CollectiveKind
from repro.probes.results import (
    GupsResult,
    HplResult,
    MachineProbes,
    MapsCurve,
    MapsResult,
    NetbenchResult,
    StreamResult,
)
from repro.tracing.serialize import SCHEMA_VERSION
from repro.tracing.trace import (
    ApplicationTrace,
    BlockArrays,
    BlockTrace,
    CommRecord,
    ReuseHistogram,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "MappedTrace",
    "trace_to_bytes",
    "trace_from_bytes",
    "load_trace",
    "probes_to_bytes",
    "probes_from_bytes",
    "load_probes",
]

MAGIC = b"RPBF"
#: Bumped whenever the binary layout changes incompatibly.
FORMAT_VERSION = 1

KIND_TRACE = 1
KIND_PROBES = 2
_KIND_NAMES = {KIND_TRACE: "application_trace", KIND_PROBES: "machine_probes"}

_PRELUDE = struct.Struct("<4sHBBIQ16s")
_HEADER_OFFSET = _PRELUDE.size  # 36
_PAYLOAD_ALIGN = 64
_SECTION_ALIGN = 16

#: dtypes a section table may name; anything else is treated as corruption
#: (a flipped byte in the header must not turn into an arbitrary np.dtype).
_ALLOWED_DTYPES = {"<f8", "<i8", "|u1"}


def _align(n: int, to: int) -> int:
    return (n + to - 1) // to * to


# ---------------------------------------------------------------------------
# generic envelope
# ---------------------------------------------------------------------------


def _encode(kind: int, meta: dict[str, Any], sections: dict[str, np.ndarray]) -> bytes:
    """Assemble one binary entry from header metadata + named arrays."""
    table: dict[str, dict] = {}
    blobs: list[tuple[int, np.ndarray]] = []
    offset = 0
    for name, arr in sections.items():
        arr = np.ascontiguousarray(arr)
        if arr.dtype.str not in _ALLOWED_DTYPES:
            raise ValueError(f"section {name!r} has unsupported dtype {arr.dtype}")
        pad = (-offset) % _SECTION_ALIGN
        offset += pad
        blobs.append((pad, arr))
        table[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
        }
        offset += arr.nbytes
    payload_len = offset

    header = dict(meta)
    header["sections"] = table
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    payload_offset = _align(_HEADER_OFFSET + len(header_bytes), _PAYLOAD_ALIGN)

    body = bytearray(header_bytes)
    body += b"\x00" * (payload_offset - _HEADER_OFFSET - len(header_bytes))
    for pad, arr in blobs:
        body += b"\x00" * pad
        body += arr.tobytes()
    digest = hashlib.blake2b(body, digest_size=16).digest()
    prelude = _PRELUDE.pack(
        MAGIC, FORMAT_VERSION, kind, 0, len(header_bytes), payload_len, digest
    )
    return prelude + bytes(body)


class _Entry:
    """One validated binary entry: header dict + typed section views."""

    __slots__ = ("kind", "header", "_raw", "_payload_offset", "_payload_len")

    def __init__(self, raw: np.ndarray, expect_kind: int):
        if raw.ndim != 1 or raw.dtype != np.uint8:  # pragma: no cover - internal
            raise AssertionError("entry buffer must be a 1-D uint8 array")
        if raw.size < _PRELUDE.size:
            raise TraceCorruptError("binary entry shorter than its prelude")
        magic, version, kind, _flags, header_len, payload_len, digest = _PRELUDE.unpack(
            raw[:_HEADER_OFFSET].tobytes()
        )
        if magic != MAGIC:
            raise TraceCorruptError("not a repro binary entry (bad magic)")
        if version != FORMAT_VERSION:
            raise TraceCorruptError(
                f"unsupported binary format version {version} "
                f"(this build reads {FORMAT_VERSION})"
            )
        if kind not in _KIND_NAMES:
            raise TraceCorruptError(f"unknown binary entry kind {kind}")
        payload_offset = _align(_HEADER_OFFSET + header_len, _PAYLOAD_ALIGN)
        if raw.size != payload_offset + payload_len:
            raise TraceCorruptError(
                "binary entry length mismatch (truncated or torn write)"
            )
        if (
            hashlib.blake2b(memoryview(raw[_HEADER_OFFSET:]), digest_size=16).digest()
            != digest
        ):
            raise TraceCorruptError("checksum mismatch (corrupt binary entry)")
        try:
            header = json.loads(raw[_HEADER_OFFSET : _HEADER_OFFSET + header_len].tobytes())
        except (ValueError, UnicodeDecodeError) as exc:
            raise TraceCorruptError(f"malformed binary header: {exc}") from exc
        if not isinstance(header, dict) or not isinstance(header.get("sections"), dict):
            raise TraceCorruptError("binary header is not a section-table document")
        if header.get("schema_version") != SCHEMA_VERSION:
            raise TraceCorruptError(
                f"unsupported payload schema version {header.get('schema_version')!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        if kind != expect_kind:
            raise TraceCorruptError(
                f"not a {_KIND_NAMES[expect_kind]} entry: {_KIND_NAMES[kind]!r}"
            )
        self.kind = kind
        self.header = header
        self._raw = raw
        self._payload_offset = payload_offset
        self._payload_len = payload_len

    def section(self, name: str) -> np.ndarray:
        """Zero-copy typed view of one payload section."""
        meta = self.header["sections"].get(name)
        if not isinstance(meta, dict):
            raise TraceCorruptError(f"binary entry is missing section {name!r}")
        try:
            dtype_str = meta["dtype"]
            shape = tuple(int(n) for n in meta["shape"])
            offset = int(meta["offset"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceCorruptError(f"malformed section table entry {name!r}") from exc
        if dtype_str not in _ALLOWED_DTYPES:
            raise TraceCorruptError(f"section {name!r} has foreign dtype {dtype_str!r}")
        dtype = np.dtype(dtype_str)
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
        if offset < 0 or offset + nbytes > self._payload_len:
            raise TraceCorruptError(f"section {name!r} exceeds the payload")
        start = self._payload_offset + offset
        return self._raw[start : start + nbytes].view(dtype).reshape(shape)


def _entry_from_bytes(data: bytes, expect_kind: int) -> _Entry:
    return _Entry(np.frombuffer(data, dtype=np.uint8), expect_kind)


def _entry_from_path(path: str | os.PathLike, expect_kind: int) -> _Entry:
    try:
        raw = np.memmap(path, dtype=np.uint8, mode="r")
    except (OSError, ValueError) as exc:  # unreadable or empty file
        raise TraceCorruptError(f"unmappable binary entry: {exc}") from exc
    return _Entry(raw, expect_kind)


# ---------------------------------------------------------------------------
# traces
# ---------------------------------------------------------------------------


def trace_to_bytes(trace) -> bytes:
    """Serialise an :class:`ApplicationTrace` (or :class:`MappedTrace`)."""
    if isinstance(trace, MappedTrace):
        trace = trace.materialize()
    blocks = trace.blocks
    arrays = BlockArrays.of_blocks(blocks)
    sections: dict[str, np.ndarray] = {
        "fp_ops": arrays.fp_ops,
        "loads": arrays.loads,
        "stores": arrays.stores,
        "unit": arrays.unit,
        "short": arrays.short,
        "random": arrays.random,
        "stride_elems": arrays.stride_elems,
        "working_set": arrays.working_set,
        "dependency_weight": arrays.dependency_weight,
    }
    if any(b.reuse is not None for b in blocks):
        flags = np.array([b.reuse is not None for b in blocks], dtype=np.uint8)
        lengths = [len(b.reuse.distances) if b.reuse is not None else 0 for b in blocks]
        offsets = np.zeros(len(blocks) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        sections["reuse_flags"] = flags
        sections["reuse_offsets"] = offsets
        sections["reuse_distances"] = np.array(
            [d for b in blocks if b.reuse is not None for d in b.reuse.distances],
            dtype=np.int64,
        )
        sections["reuse_counts"] = np.array(
            [c for b in blocks if b.reuse is not None for c in b.reuse.counts],
            dtype=np.int64,
        )
        sections["reuse_scalars"] = np.array(
            [
                (b.reuse.cold, b.reuse.total, b.reuse.line_bytes)
                if b.reuse is not None
                else (0, 0, 0)
                for b in blocks
            ],
            dtype=np.int64,
        )
    meta = {
        "schema_version": SCHEMA_VERSION,
        "kind": "application_trace",
        "application": trace.application,
        "cpus": trace.cpus,
        "base_machine": trace.base_machine,
        "timesteps": trace.timesteps,
        "sample_size": trace.sample_size,
        "block_names": [b.name for b in blocks],
        "l_service": [b.l_service for b in blocks],
        "comm": [
            {
                "name": rec.name,
                "kind": rec.kind if isinstance(rec.kind, str) else rec.kind.value,
                "count": rec.count,
                "size_bytes": rec.size_bytes,
                "neighbors": rec.neighbors,
            }
            for rec in trace.comm
        ],
    }
    return _encode(KIND_TRACE, meta, sections)


class MappedTrace:
    """A trace decoded lazily from a binary entry.

    Duck-typed stand-in for :class:`~repro.tracing.trace.ApplicationTrace`:
    identity fields and :attr:`block_arrays` are available immediately
    (the arrays are zero-copy views into the underlying buffer — for a
    store entry, an ``np.memmap`` of the file); ``blocks``/``comm`` and
    the derived totals materialise genuine trace objects on first use, so
    the convolver's tensorised path never pays per-block Python
    reconstruction.  Equality and hashing delegate to the materialised
    :class:`ApplicationTrace`, in both comparison directions (the frozen
    dataclass returns ``NotImplemented`` for a foreign class, which makes
    Python fall back to this class's reflected ``__eq__``).
    """

    __slots__ = (
        "application",
        "cpus",
        "base_machine",
        "timesteps",
        "sample_size",
        "block_arrays",
        "_entry",
        "_materialized",
    )

    def __init__(self, entry: _Entry):
        header = entry.header
        try:
            self.application = str(header["application"])
            self.cpus = int(header["cpus"])
            self.base_machine = str(header["base_machine"])
            self.timesteps = int(header["timesteps"])
            self.sample_size = int(header["sample_size"])
            names = header["block_names"]
            self.block_arrays = BlockArrays(
                fp_ops=entry.section("fp_ops"),
                loads=entry.section("loads"),
                stores=entry.section("stores"),
                unit=entry.section("unit"),
                short=entry.section("short"),
                random=entry.section("random"),
                stride_elems=entry.section("stride_elems"),
                working_set=entry.section("working_set"),
                dependency_weight=entry.section("dependency_weight"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceCorruptError(f"malformed trace header: {exc}") from exc
        n = self.block_arrays.fp_ops.shape[0]
        if not isinstance(names, list) or len(names) != n or any(
            a.shape != (n,) for a in self.block_arrays[:9]
        ):
            raise TraceCorruptError("trace block sections disagree on block count")
        self._entry = entry
        self._materialized: ApplicationTrace | None = None

    # -- lazy materialisation -----------------------------------------
    def _reuse(self, i: int) -> ReuseHistogram | None:
        entry = self._entry
        if "reuse_flags" not in entry.header["sections"]:
            return None
        try:
            if not entry.section("reuse_flags")[i]:
                return None
            offsets = entry.section("reuse_offsets")
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            cold, total, line_bytes = (
                int(v) for v in entry.section("reuse_scalars")[i]
            )
            return ReuseHistogram(
                distances=tuple(int(d) for d in entry.section("reuse_distances")[lo:hi]),
                counts=tuple(int(c) for c in entry.section("reuse_counts")[lo:hi]),
                cold=cold,
                total=total,
                line_bytes=line_bytes,
            )
        except (IndexError, ValueError) as exc:
            raise TraceCorruptError(f"malformed reuse sections: {exc}") from exc

    def materialize(self) -> ApplicationTrace:
        """The equivalent fully-materialised :class:`ApplicationTrace`."""
        cached = self._materialized
        if cached is not None:
            return cached
        header = self._entry.header
        a = self.block_arrays
        try:
            blocks = tuple(
                BlockTrace(
                    name=str(name),
                    fp_ops=float(a.fp_ops[i]),
                    loads=float(a.loads[i]),
                    stores=float(a.stores[i]),
                    stride=StrideHistogram(
                        unit=float(a.unit[i]),
                        short=float(a.short[i]),
                        random=float(a.random[i]),
                        short_stride_elems=int(a.stride_elems[i]),
                    ),
                    working_set=float(a.working_set[i]),
                    dependency_weight=float(a.dependency_weight[i]),
                    l_service=header["l_service"][i],
                    reuse=self._reuse(i),
                )
                for i, name in enumerate(header["block_names"])
            )
            comm = tuple(
                CommRecord(
                    name=str(doc["name"]),
                    kind=doc["kind"] if doc["kind"] == "p2p" else CollectiveKind(doc["kind"]),
                    count=doc["count"],
                    size_bytes=doc["size_bytes"],
                    neighbors=doc["neighbors"],
                )
                for doc in header["comm"]
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise TraceCorruptError(f"malformed trace payload: {exc}") from exc
        cached = ApplicationTrace(
            application=self.application,
            cpus=self.cpus,
            base_machine=self.base_machine,
            timesteps=self.timesteps,
            blocks=blocks,
            comm=comm,
            sample_size=self.sample_size,
        )
        self._materialized = cached
        return cached

    # -- ApplicationTrace surface --------------------------------------
    @property
    def block_names(self) -> tuple[str, ...]:
        return tuple(str(n) for n in self._entry.header["block_names"])

    @property
    def blocks(self) -> tuple[BlockTrace, ...]:
        return self.materialize().blocks

    @property
    def comm(self) -> tuple[CommRecord, ...]:
        return self.materialize().comm

    @property
    def total_fp(self) -> float:
        return self.materialize().total_fp

    @property
    def total_refs(self) -> float:
        return self.materialize().total_refs

    def block(self, name: str) -> BlockTrace:
        return self.materialize().block(name)

    def __eq__(self, other) -> bool:
        if isinstance(other, MappedTrace):
            return self.materialize() == other.materialize()
        if isinstance(other, ApplicationTrace):
            return self.materialize() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.materialize())

    def __repr__(self) -> str:  # pragma: no cover - diagnostic
        return (
            f"MappedTrace({self.application!r}, cpus={self.cpus}, "
            f"base_machine={self.base_machine!r})"
        )


def trace_from_bytes(data: bytes) -> MappedTrace:
    """Decode a :func:`trace_to_bytes` buffer (validates the envelope)."""
    return MappedTrace(_entry_from_bytes(data, KIND_TRACE))


def load_trace(path: str | os.PathLike) -> MappedTrace:
    """Memory-map and validate the trace entry at ``path``."""
    return MappedTrace(_entry_from_path(path, KIND_TRACE))


# ---------------------------------------------------------------------------
# probes
# ---------------------------------------------------------------------------

_MAPS_KINDS = ("unit", "random", "unit_dep", "random_dep")


def probes_to_bytes(probes: MachineProbes) -> bytes:
    """Serialise a :class:`MachineProbes` bundle."""
    sections: dict[str, np.ndarray] = {}
    for kind in _MAPS_KINDS:
        curve = probes.maps.curve(kind)
        sections[f"maps_{kind}_sizes"] = np.asarray(curve.sizes, dtype=np.float64)
        sections[f"maps_{kind}_bandwidths"] = np.asarray(
            curve.bandwidths, dtype=np.float64
        )
    nb = probes.netbench
    sections["pingpong_sizes"] = np.asarray(nb.pingpong_sizes, dtype=np.float64)
    sections["pingpong_seconds"] = np.asarray(nb.pingpong_seconds, dtype=np.float64)
    sections["allreduce_ranks"] = np.asarray(nb.allreduce_ranks, dtype=np.float64)
    sections["allreduce_seconds"] = np.asarray(nb.allreduce_seconds, dtype=np.float64)
    meta = {
        "schema_version": SCHEMA_VERSION,
        "kind": "machine_probes",
        "machine": probes.machine,
        "hpl": {
            "rmax_flops": probes.hpl.rmax_flops,
            "rpeak_flops": probes.hpl.rpeak_flops,
            "n": probes.hpl.n,
            "seconds": probes.hpl.seconds,
        },
        "stream": {
            "copy": probes.stream.copy,
            "scale": probes.stream.scale,
            "add": probes.stream.add,
            "triad": probes.stream.triad,
            "array_bytes": probes.stream.array_bytes,
        },
        "gups": {
            "gups": probes.gups.gups,
            "random_bandwidth": probes.gups.random_bandwidth,
            "table_bytes": probes.gups.table_bytes,
        },
        "netbench": {"latency": nb.latency, "bandwidth": nb.bandwidth},
    }
    return _encode(KIND_PROBES, meta, sections)


def _probes_from_entry(entry: _Entry) -> MachineProbes:
    header = entry.header
    try:
        return MachineProbes(
            machine=str(header["machine"]),
            hpl=HplResult(**header["hpl"]),
            stream=StreamResult(**header["stream"]),
            gups=GupsResult(**header["gups"]),
            maps=MapsResult(
                **{
                    kind: MapsCurve(
                        sizes=entry.section(f"maps_{kind}_sizes"),
                        bandwidths=entry.section(f"maps_{kind}_bandwidths"),
                    )
                    for kind in _MAPS_KINDS
                }
            ),
            netbench=NetbenchResult(
                latency=header["netbench"]["latency"],
                bandwidth=header["netbench"]["bandwidth"],
                pingpong_sizes=entry.section("pingpong_sizes"),
                pingpong_seconds=entry.section("pingpong_seconds"),
                allreduce_ranks=entry.section("allreduce_ranks"),
                allreduce_seconds=entry.section("allreduce_seconds"),
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceCorruptError(f"malformed probes entry: {exc}") from exc


def probes_from_bytes(data: bytes) -> MachineProbes:
    """Decode a :func:`probes_to_bytes` buffer (validates the envelope)."""
    return _probes_from_entry(_entry_from_bytes(data, KIND_PROBES))


def load_probes(path: str | os.PathLike) -> MachineProbes:
    """Memory-map and validate the probes entry at ``path``.

    The curve and netbench arrays stay zero-copy views of the mapped
    file; the scalar results are rebuilt from the header (exact floats).
    """
    return _probes_from_entry(_entry_from_path(path, KIND_PROBES))
