"""JSON serialisation of traces and probe results.

Tracing is the expensive, non-recurring step of the methodology ("it is
only required once per application on the base system" — paper Section 3),
and probing ten production systems is a scheduling exercise.  Persisting
both lets a downstream user ship trace/probe archives with their study, as
the PMaC group did.

The format is plain JSON with a schema version; loaders validate the
version and reconstruct the frozen dataclasses.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.core.errors import TraceCorruptError
from repro.memory.patterns import StrideHistogram
from repro.network.model import CollectiveKind
from repro.probes.results import (
    GupsResult,
    HplResult,
    MachineProbes,
    MapsCurve,
    MapsResult,
    NetbenchResult,
    StreamResult,
)
from repro.tracing.trace import (
    ApplicationTrace,
    BlockTrace,
    CommRecord,
    ReuseHistogram,
)

__all__ = [
    "trace_to_json",
    "trace_from_json",
    "probes_to_json",
    "probes_from_json",
]

#: Bumped whenever the on-disk layout changes incompatibly.
SCHEMA_VERSION = 2


def _check_version(doc: dict, kind: str) -> None:
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        # TraceCorruptError is also a ValueError, so pre-taxonomy callers
        # that catch ValueError keep working.
        raise TraceCorruptError(
            f"unsupported {kind} schema version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )


# ---------------------------------------------------------------------------
# traces
# ---------------------------------------------------------------------------


def _block_to_dict(block: BlockTrace) -> dict[str, Any]:
    return {
        "name": block.name,
        "fp_ops": block.fp_ops,
        "loads": block.loads,
        "stores": block.stores,
        "stride": {
            "unit": block.stride.unit,
            "short": block.stride.short,
            "random": block.stride.random,
            "short_stride_elems": block.stride.short_stride_elems,
        },
        "working_set": block.working_set,
        "dependency_weight": block.dependency_weight,
        "l_service": block.l_service,
        "reuse": None
        if block.reuse is None
        else {
            "distances": list(block.reuse.distances),
            "counts": list(block.reuse.counts),
            "cold": block.reuse.cold,
            "total": block.reuse.total,
            "line_bytes": block.reuse.line_bytes,
        },
    }


def _block_from_dict(doc: dict[str, Any]) -> BlockTrace:
    stride = doc["stride"]
    reuse_doc = doc.get("reuse")
    reuse = None
    if reuse_doc is not None:
        reuse = ReuseHistogram(
            distances=tuple(reuse_doc["distances"]),
            counts=tuple(reuse_doc["counts"]),
            cold=reuse_doc["cold"],
            total=reuse_doc["total"],
            line_bytes=reuse_doc["line_bytes"],
        )
    return BlockTrace(
        name=doc["name"],
        fp_ops=doc["fp_ops"],
        loads=doc["loads"],
        stores=doc["stores"],
        stride=StrideHistogram(
            unit=stride["unit"],
            short=stride["short"],
            random=stride["random"],
            short_stride_elems=stride["short_stride_elems"],
        ),
        working_set=doc["working_set"],
        dependency_weight=doc["dependency_weight"],
        l_service=doc.get("l_service"),
        reuse=reuse,
    )


def _comm_to_dict(rec: CommRecord) -> dict[str, Any]:
    kind = rec.kind if isinstance(rec.kind, str) else rec.kind.value
    return {
        "name": rec.name,
        "kind": kind,
        "count": rec.count,
        "size_bytes": rec.size_bytes,
        "neighbors": rec.neighbors,
    }


def _comm_from_dict(doc: dict[str, Any]) -> CommRecord:
    kind: str | CollectiveKind = doc["kind"]
    if kind != "p2p":
        kind = CollectiveKind(kind)
    return CommRecord(
        name=doc["name"],
        kind=kind,
        count=doc["count"],
        size_bytes=doc["size_bytes"],
        neighbors=doc["neighbors"],
    )


def trace_to_json(trace: ApplicationTrace) -> str:
    """Serialise an :class:`ApplicationTrace` to a JSON string."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "kind": "application_trace",
        "application": trace.application,
        "cpus": trace.cpus,
        "base_machine": trace.base_machine,
        "timesteps": trace.timesteps,
        "sample_size": trace.sample_size,
        "blocks": [_block_to_dict(b) for b in trace.blocks],
        "comm": [_comm_to_dict(c) for c in trace.comm],
    }
    return json.dumps(doc, indent=2)


def trace_from_json(text: str) -> ApplicationTrace:
    """Reconstruct an :class:`ApplicationTrace` from :func:`trace_to_json` output."""
    doc = json.loads(text)
    _check_version(doc, "trace")
    if doc.get("kind") != "application_trace":
        raise TraceCorruptError(
            f"not an application trace document: {doc.get('kind')!r}"
        )
    return ApplicationTrace(
        application=doc["application"],
        cpus=doc["cpus"],
        base_machine=doc["base_machine"],
        timesteps=doc["timesteps"],
        sample_size=doc["sample_size"],
        blocks=tuple(_block_from_dict(b) for b in doc["blocks"]),
        comm=tuple(_comm_from_dict(c) for c in doc["comm"]),
    )


# ---------------------------------------------------------------------------
# probes
# ---------------------------------------------------------------------------


def _curve_to_dict(curve: MapsCurve) -> dict[str, Any]:
    return {
        "sizes": curve.sizes.tolist(),
        "bandwidths": curve.bandwidths.tolist(),
    }


def _curve_from_dict(doc: dict[str, Any]) -> MapsCurve:
    return MapsCurve(
        sizes=np.asarray(doc["sizes"], dtype=float),
        bandwidths=np.asarray(doc["bandwidths"], dtype=float),
    )


def probes_to_json(probes: MachineProbes) -> str:
    """Serialise a :class:`MachineProbes` bundle to a JSON string."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "kind": "machine_probes",
        "machine": probes.machine,
        "hpl": {
            "rmax_flops": probes.hpl.rmax_flops,
            "rpeak_flops": probes.hpl.rpeak_flops,
            "n": probes.hpl.n,
            "seconds": probes.hpl.seconds,
        },
        "stream": {
            "copy": probes.stream.copy,
            "scale": probes.stream.scale,
            "add": probes.stream.add,
            "triad": probes.stream.triad,
            "array_bytes": probes.stream.array_bytes,
        },
        "gups": {
            "gups": probes.gups.gups,
            "random_bandwidth": probes.gups.random_bandwidth,
            "table_bytes": probes.gups.table_bytes,
        },
        "maps": {
            kind: _curve_to_dict(probes.maps.curve(kind))
            for kind in ("unit", "random", "unit_dep", "random_dep")
        },
        "netbench": {
            "latency": probes.netbench.latency,
            "bandwidth": probes.netbench.bandwidth,
            "pingpong_sizes": probes.netbench.pingpong_sizes.tolist(),
            "pingpong_seconds": probes.netbench.pingpong_seconds.tolist(),
            "allreduce_ranks": probes.netbench.allreduce_ranks.tolist(),
            "allreduce_seconds": probes.netbench.allreduce_seconds.tolist(),
        },
    }
    return json.dumps(doc, indent=2)


def probes_from_json(text: str) -> MachineProbes:
    """Reconstruct a :class:`MachineProbes` from :func:`probes_to_json` output."""
    doc = json.loads(text)
    _check_version(doc, "probes")
    if doc.get("kind") != "machine_probes":
        raise TraceCorruptError(
            f"not a machine probes document: {doc.get('kind')!r}"
        )
    nb = doc["netbench"]
    return MachineProbes(
        machine=doc["machine"],
        hpl=HplResult(**doc["hpl"]),
        stream=StreamResult(**doc["stream"]),
        gups=GupsResult(**doc["gups"]),
        maps=MapsResult(
            unit=_curve_from_dict(doc["maps"]["unit"]),
            random=_curve_from_dict(doc["maps"]["random"]),
            unit_dep=_curve_from_dict(doc["maps"]["unit_dep"]),
            random_dep=_curve_from_dict(doc["maps"]["random_dep"]),
        ),
        netbench=NetbenchResult(
            latency=nb["latency"],
            bandwidth=nb["bandwidth"],
            pingpong_sizes=np.asarray(nb["pingpong_sizes"], dtype=float),
            pingpong_seconds=np.asarray(nb["pingpong_seconds"], dtype=float),
            allreduce_ranks=np.asarray(nb["allreduce_ranks"], dtype=float),
            allreduce_seconds=np.asarray(nb["allreduce_seconds"], dtype=float),
        ),
    )
