"""Hardware-counter style operation totals.

For Metrics #4 and #5 the paper notes that full MetaSim tracing is
overkill: "performance counters provide a more expeditious result" when
only total FP and load/store counts are needed.  This module is that cheap
path — exact totals, no per-reference information.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.model import ApplicationModel

__all__ = ["CounterTotals", "count_operations"]


@dataclass(frozen=True)
class CounterTotals:
    """Whole-run per-rank totals from hardware counters.

    Attributes
    ----------
    application, cpus:
        What was measured.
    fp_ops:
        Floating-point operations per rank.
    loads, stores:
        8-byte memory references per rank.
    """

    application: str
    cpus: int
    fp_ops: float
    loads: float
    stores: float

    @property
    def memory_refs(self) -> float:
        """Total load/store references."""
        return self.loads + self.stores

    @property
    def memory_bytes(self) -> float:
        """Useful memory traffic in bytes."""
        return self.memory_refs * 8.0


def count_operations(app: ApplicationModel, cpus: int) -> CounterTotals:
    """Read the counters for one run of ``app`` at ``cpus`` processors."""
    rank_cells = app.rank_cells(cpus)
    steps = app.timesteps
    return CounterTotals(
        application=app.label,
        cpus=cpus,
        fp_ops=sum(b.fp_per_cell for b in app.blocks) * rank_cells * steps,
        loads=sum(b.loads_per_cell for b in app.blocks) * rank_cells * steps,
        stores=sum(b.stores_per_cell for b in app.blocks) * rank_cells * steps,
    )
