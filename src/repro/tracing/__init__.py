"""Tracing substrate: the application "transfer function" extractors.

* :mod:`repro.tracing.trace` — the trace data model (per-block operation
  counts and memory signatures, plus the communication trace).
* :mod:`repro.tracing.metasim` — MetaSim Tracer: samples per-block address
  streams on the *base* machine, classifies them with the stride detector,
  replays them through a cache simulator, and emits
  :class:`~repro.tracing.trace.ApplicationTrace` records.
* :mod:`repro.tracing.counters` — hardware-counter style exact totals (the
  cheap path the paper uses for Metrics #4/#5).
* :mod:`repro.tracing.mpidtrace` — MPIDTRACE: records MPI events.
* :mod:`repro.tracing.static_analysis` — binary static analysis standing in
  for the paper's ILP/dependency block classifier (feeds Metric #9).

Tracing happens once per (application, processor count) on the base system
and is cached, mirroring the paper's "non-recurring cost" observation.
"""

from repro.tracing.trace import ApplicationTrace, BlockTrace, CommRecord
from repro.tracing.metasim import MetaSimTracer, clear_trace_cache, trace_application
from repro.tracing.counters import CounterTotals, count_operations
from repro.tracing.mpidtrace import trace_communication
from repro.tracing.static_analysis import DependencyClass, classify_blocks
from repro.tracing.serialize import (
    probes_from_json,
    probes_to_json,
    trace_from_json,
    trace_to_json,
)

__all__ = [
    "trace_to_json",
    "trace_from_json",
    "probes_to_json",
    "probes_from_json",
    "ApplicationTrace",
    "BlockTrace",
    "CommRecord",
    "MetaSimTracer",
    "trace_application",
    "clear_trace_cache",
    "CounterTotals",
    "count_operations",
    "trace_communication",
    "DependencyClass",
    "classify_blocks",
]
