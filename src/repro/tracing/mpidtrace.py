"""MPIDTRACE analogue: record an application's MPI events.

The paper used MPIDTRACE "to count MPI communications events in
applications"; here the events are read off the application model at the
traced processor count, with sizes resolved (message sizes depend on the
domain decomposition, so the trace is per processor count, exactly as a
real MPI trace is).
"""

from __future__ import annotations

from repro.apps.model import ApplicationModel
from repro.tracing.trace import CommRecord

__all__ = ["trace_communication"]


def trace_communication(app: ApplicationModel, cpus: int) -> tuple[CommRecord, ...]:
    """Trace one timestep's MPI events of ``app`` at ``cpus`` processors."""
    if cpus <= 0:
        raise ValueError(f"cpus must be > 0, got {cpus}")
    rank_bytes = app.rank_bytes(cpus)
    records = []
    for event in app.comms:
        records.append(
            CommRecord(
                name=event.name,
                kind=event.kind,
                count=event.count,
                size_bytes=event.size_bytes(rank_bytes),
                neighbors=event.neighbors if event.is_p2p else 1,
            )
        )
    return tuple(records)
