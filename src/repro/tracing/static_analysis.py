"""Static binary analysis stand-in: dependency classification of blocks.

The paper applied static analysis to each application binary "so ILP
limited basic blocks could be identified", feeding Metric #9's dependency
term.  Our analogue inspects a block's loop structure (its model) and bins
it into three coarse classes — a deliberately blunt instrument, because a
real static analyser cannot recover the exact dynamic dependence fraction:

* ``INDEPENDENT`` (weight 0.0) — no performance-limiting dependence found;
* ``MIXED``       (weight 0.5) — some inner-loop dependence or branching;
* ``BOUND``       (weight 1.0) — dominated by recurrences / pointer chasing.

The quantisation error (a block with true fraction 0.25 is priced as 0.5)
is one of Metric #9's residual error sources.
"""

from __future__ import annotations

import enum

from repro.apps.model import ApplicationModel, BasicBlock

__all__ = ["DependencyClass", "classify_block", "classify_blocks"]

#: Blocks below this true dependence fraction look clean to the analyser.
_INDEPENDENT_BELOW = 0.15
#: Blocks at or above this look fully bound.
_BOUND_FROM = 0.45


class DependencyClass(enum.Enum):
    """Coarse dependency classification with its pricing weight."""

    INDEPENDENT = 0.0
    MIXED = 0.5
    BOUND = 1.0

    @property
    def weight(self) -> float:
        """Fraction of references priced with dependent MAPS curves."""
        return self.value


def classify_block(block: BasicBlock) -> DependencyClass:
    """Classify one basic block from its (statically visible) structure."""
    if block.dependency_fraction < _INDEPENDENT_BELOW:
        return DependencyClass.INDEPENDENT
    if block.dependency_fraction < _BOUND_FROM:
        return DependencyClass.MIXED
    return DependencyClass.BOUND


def classify_blocks(app: ApplicationModel) -> dict[str, DependencyClass]:
    """Classify every block of ``app``; keyed by block name."""
    return {block.name: classify_block(block) for block in app.blocks}
