"""Trace data model.

An :class:`ApplicationTrace` is everything the predictive metrics may know
about an application: per-basic-block operation counts binned by stride
class, estimated working sets, dependency classifications, and the MPI
event trace.  It is gathered on the *base* system and reused for every
target — the paper's machine-independent "transfer function".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.memory.patterns import StrideHistogram
from repro.network.model import CollectiveKind

__all__ = [
    "ReuseHistogram",
    "BlockTrace",
    "CommRecord",
    "ApplicationTrace",
    "BlockArrays",
]


class BlockArrays(NamedTuple):
    """Block-axis float64 views of a trace — the convolver's operands.

    One array per :class:`BlockTrace` field the tensorised pipeline
    consumes, each of shape ``(n_blocks,)``.  For a trace loaded from the
    binary store these are zero-copy ``np.memmap`` views; for an
    in-memory trace they are built once and cached on the trace object.
    Values are bit-identical either way (float64 storage is exact), so
    the convolver's fast path never moves a prediction.
    """

    fp_ops: np.ndarray
    loads: np.ndarray
    stores: np.ndarray
    unit: np.ndarray
    short: np.ndarray
    random: np.ndarray
    stride_elems: np.ndarray
    working_set: np.ndarray
    dependency_weight: np.ndarray

    @classmethod
    def of_blocks(cls, blocks: "tuple[BlockTrace, ...]") -> "BlockArrays":
        """Extract the arrays from materialised block objects."""
        as_f8 = lambda values: np.array(values, dtype=np.float64)  # noqa: E731
        return cls(
            fp_ops=as_f8([b.fp_ops for b in blocks]),
            loads=as_f8([b.loads for b in blocks]),
            stores=as_f8([b.stores for b in blocks]),
            unit=as_f8([b.stride.unit for b in blocks]),
            short=as_f8([b.stride.short for b in blocks]),
            random=as_f8([b.stride.random for b in blocks]),
            stride_elems=np.array(
                [b.stride.short_stride_elems for b in blocks], dtype=np.int64
            ),
            working_set=as_f8([b.working_set for b in blocks]),
            dependency_weight=as_f8([b.dependency_weight for b in blocks]),
        )


@dataclass(frozen=True)
class ReuseHistogram:
    """Machine-independent stack-distance histogram of a block's stream.

    A serialisable mirror of :class:`repro.memory.reuse.ReuseProfile`
    (tuples instead of arrays, so traces stay hashable/comparable): from
    this one histogram the analytic cache engine derives hit rates for any
    cache geometry without replaying the stream.

    Attributes
    ----------
    distances, counts:
        Sorted distinct finite LRU stack distances and reference counts.
    cold:
        First-touch references (miss at any capacity).
    total:
        Total references profiled.
    line_bytes:
        Line granularity of the profile.
    """

    distances: tuple[int, ...]
    counts: tuple[int, ...]
    cold: int
    total: int
    line_bytes: int

    @classmethod
    def of(cls, profile) -> "ReuseHistogram":
        """Freeze a :class:`~repro.memory.reuse.ReuseProfile`."""
        return cls(
            distances=tuple(int(d) for d in profile.distances),
            counts=tuple(int(c) for c in profile.counts),
            cold=profile.cold,
            total=profile.total,
            line_bytes=profile.line_bytes,
        )

    def profile(self):
        """Thaw back into a :class:`~repro.memory.reuse.ReuseProfile`."""
        import numpy as np

        from repro.memory.reuse import ReuseProfile

        return ReuseProfile(
            distances=np.asarray(self.distances, dtype=np.int64),
            counts=np.asarray(self.counts, dtype=np.int64),
            cold=self.cold,
            total=self.total,
            line_bytes=self.line_bytes,
        )


@dataclass(frozen=True)
class BlockTrace:
    """Measured signature of one basic block (per rank, per timestep).

    Attributes
    ----------
    name:
        Block identifier.
    fp_ops:
        Floating-point operations (exact — from hardware counters).
    loads, stores:
        8-byte references (exact — from hardware counters).
    stride:
        Stride histogram *measured* by the detector on sampled streams.
    working_set:
        Working set (bytes) estimated from the sampled address span.
    dependency_weight:
        Static-analysis dependency class as a weight in {0, 0.5, 1}:
        the fraction of references Metric #9 prices with dependent curves.
    l_service:
        Optional per-level service fractions observed by the cache
        simulator on the base machine (diagnostic; not used by metrics).
    reuse:
        Optional machine-independent reuse-distance histogram of the
        block's sampled stream (recorded when the tracer's cache
        accounting is on) — prices any cache geometry without the stream.
    """

    name: str
    fp_ops: float
    loads: float
    stores: float
    stride: StrideHistogram
    working_set: float
    dependency_weight: float
    l_service: dict[str, float] | None = None
    reuse: ReuseHistogram | None = None

    @property
    def refs(self) -> float:
        """Total 8-byte references."""
        return self.loads + self.stores

    @property
    def bytes(self) -> float:
        """Useful memory traffic in bytes."""
        return self.refs * 8.0


@dataclass(frozen=True)
class CommRecord:
    """One class of MPI traffic observed by MPIDTRACE (per rank, per step).

    Attributes
    ----------
    name:
        Event identifier.
    kind:
        ``"p2p"`` or a :class:`~repro.network.model.CollectiveKind`.
    count:
        Occurrences per timestep.
    size_bytes:
        Message payload at the traced processor count.
    neighbors:
        Partners per occurrence (p2p only; 1 for collectives).
    """

    name: str
    kind: CollectiveKind | str
    count: float
    size_bytes: float
    neighbors: int = 1

    @property
    def is_p2p(self) -> bool:
        """True for point-to-point traffic."""
        return self.kind == "p2p"


@dataclass(frozen=True)
class ApplicationTrace:
    """Complete transfer function of one (application, processor count).

    Attributes
    ----------
    application:
        Application label (``"AVUS-standard"``).
    cpus:
        Processor count the trace was taken at.
    base_machine:
        System the tracer ran on.
    timesteps:
        Timesteps of the test case (per-step counts scale by this).
    blocks:
        Per-block signatures.
    comm:
        MPI event records.
    sample_size:
        References sampled per block by the tracer.
    """

    application: str
    cpus: int
    base_machine: str
    timesteps: int
    blocks: tuple[BlockTrace, ...]
    comm: tuple[CommRecord, ...]
    sample_size: int

    @property
    def block_arrays(self) -> BlockArrays:
        """Block-axis float64 views (built lazily, cached on the trace).

        The convolver's rate table reads these instead of looping block
        objects; a trace that recurs across study rows (the in-memory
        cache guarantees it does) pays the extraction exactly once.
        """
        cached = getattr(self, "_block_arrays", None)
        if cached is None:
            cached = BlockArrays.of_blocks(self.blocks)
            # Frozen dataclass: the cache slot bypasses the field guard.
            object.__setattr__(self, "_block_arrays", cached)
        return cached

    @property
    def block_names(self) -> tuple[str, ...]:
        """Block identifiers, in trace order."""
        return tuple(b.name for b in self.blocks)

    @property
    def total_fp(self) -> float:
        """FP operations per rank over the whole run."""
        return sum(b.fp_ops for b in self.blocks) * self.timesteps

    @property
    def total_refs(self) -> float:
        """Memory references per rank over the whole run."""
        return sum(b.refs for b in self.blocks) * self.timesteps

    def block(self, name: str) -> BlockTrace:
        """Return the traced block called ``name``."""
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(f"trace of {self.application} has no block {name!r}")
