"""Event-sourced durability core.

One append-only, checksummed event log (:mod:`repro.events.log`) under
the study journal, the trace store's accounting, and the serve fleet's
audit trail; typed domain events (:mod:`repro.events.types`); compaction
snapshots (:mod:`repro.events.snapshot`); and live materialized views
(:mod:`repro.events.projections`).
"""

from repro.events.log import EventLog, replay_dir, verify_dir, writers_in
from repro.events.projections import ProjectionEngine
from repro.events.types import (
    EVENT_KINDS,
    BreakerTripped,
    CellFailed,
    ChunkCompleted,
    Event,
    PredictionEmitted,
    ProbeCompleted,
    SnapshotTaken,
    StoreInvalidated,
    StudyStarted,
    TraceCaptured,
    UnknownEvent,
    WorkerDied,
    WorkerRespawned,
    from_doc,
)

__all__ = [
    "EventLog",
    "ProjectionEngine",
    "replay_dir",
    "verify_dir",
    "writers_in",
    "EVENT_KINDS",
    "Event",
    "UnknownEvent",
    "from_doc",
    "StudyStarted",
    "ChunkCompleted",
    "CellFailed",
    "ProbeCompleted",
    "TraceCaptured",
    "PredictionEmitted",
    "BreakerTripped",
    "WorkerDied",
    "WorkerRespawned",
    "StoreInvalidated",
    "SnapshotTaken",
]
