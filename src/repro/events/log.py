"""Checksummed, segmented, append-only event log.

This is the durability substrate under the study journal, the trace
store's accounting and the serve fleet's audit trail.  One *log
directory* holds any number of *writer streams*; each stream is a chain
of JSONL segment files::

    events-<writer>-<first_seq:020d>.jsonl

Every line is one BLAKE2b-framed record::

    {"check": "<blake2b-16 hex>", "event": {"kind": ..., ...}, "seq": N}

where ``check`` is computed over the canonical (``sort_keys=True``) JSON
of the frame without it — the same self-validating-line idiom the study
checkpoint pioneered, so a reader can always tell a complete frame from
a torn one.  Sequence numbers are per-writer, contiguous from 1, and the
pair ``(writer, seq)`` is the global event identity.

Durability levers
-----------------
* ``fsync="always"`` — every append is fsynced (journal semantics).
* ``fsync="commit"`` — appends are flushed to the OS (live followers see
  them) but only :meth:`EventLog.commit`/:meth:`EventLog.close` fsync.
* ``fsync="never"`` — flush only; for ephemeral serving logs and tests.

Crash recovery
--------------
Opening a stream for append scans its last segment and truncates any
torn tail in place: a frame that fails its checksum, a sequence break,
or trailing garbage marks the end of history, and everything before it
is kept.  A frame appended twice (retry after a partial fsync) is
deduplicated when the duplicate is byte-identical; a *conflicting*
reuse of a sequence number is damage.  Replay of a sealed chain stops
at the first damaged frame or gap, so every reader sees the same valid
prefix — deterministic replay is the contract projections build on.

Compaction
----------
:meth:`EventLog.compact` snapshots caller state at the current sequence
number (see :mod:`repro.events.snapshot`) and deletes segments wholly
covered by it; replay then starts from ``snapshot seq + 1``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections.abc import Callable, Iterator
from pathlib import Path
from typing import Any

from repro.events import snapshot as _snapshot
from repro.events.types import Event, SnapshotTaken, from_doc

__all__ = [
    "EventLog",
    "FSYNC_POLICIES",
    "DEFAULT_SEGMENT_BYTES",
    "frame_checksum",
    "replay_dir",
    "verify_dir",
    "writers_in",
]

FSYNC_POLICIES = ("always", "commit", "never")
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
SEGMENT_PREFIX = "events-"
SEGMENT_SUFFIX = ".jsonl"
_SEQ_WIDTH = 20


def frame_checksum(doc: dict[str, Any]) -> str:
    """BLAKE2b-16 of the canonical JSON of a frame (minus its ``check``)."""
    canon = json.dumps(doc, sort_keys=True)
    return hashlib.blake2b(canon.encode("utf-8"), digest_size=16).hexdigest()


def _encode_frame(seq: int, event: Event) -> str:
    body = {"seq": seq, "event": event.to_doc()}
    body["check"] = frame_checksum({"seq": seq, "event": body["event"]})
    return json.dumps(body, sort_keys=True)


def _segment_name(writer: str, first_seq: int) -> str:
    return f"{SEGMENT_PREFIX}{writer}-{first_seq:0{_SEQ_WIDTH}d}{SEGMENT_SUFFIX}"


def _parse_segment_name(name: str) -> tuple[str, int] | None:
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    stem = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    writer, _, seq_part = stem.rpartition("-")
    if not writer or not seq_part.isdigit():
        return None
    return writer, int(seq_part)


def _validate_writer(writer: str) -> str:
    if not writer or any(ch in writer for ch in "/\\\0\n") or writer != writer.strip():
        raise ValueError(f"invalid writer id {writer!r}")
    return writer


class _Scan:
    """Result of reading one segment file tolerantly."""

    __slots__ = ("frames", "good_end", "damaged", "duplicates", "damage_reason")

    def __init__(self) -> None:
        self.frames: list[tuple[int, dict[str, Any]]] = []  # (seq, event doc)
        self.good_end = 0  # byte offset past the last valid frame
        self.damaged = False
        self.duplicates = 0
        self.damage_reason: str | None = None


def _scan_segment(path: Path, expected_first: int | None) -> _Scan:
    """Read a segment, keeping the longest valid prefix.

    ``expected_first`` pins the sequence the segment must start at (its
    filename claim); ``None`` accepts whatever the first valid frame says.
    Never mutates the file — truncation is the owner's job.
    """
    scan = _Scan()
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return scan
    offset = 0
    expected = expected_first
    prev_line: bytes | None = None
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline == -1:
            scan.damaged = True
            scan.damage_reason = "torn tail (no newline)"
            break
        line = raw[offset:newline]
        try:
            frame = json.loads(line)
            check = frame.pop("check")
            seq = frame["seq"]
            event_doc = frame["event"]
            ok = (
                isinstance(seq, int)
                and isinstance(event_doc, dict)
                and set(frame) == {"seq", "event"}
                and check == frame_checksum(frame)
            )
        except (ValueError, KeyError, TypeError):
            ok = False
            seq = None
            event_doc = None
        if not ok:
            scan.damaged = True
            scan.damage_reason = f"invalid frame at byte {offset}"
            break
        if scan.frames and seq == scan.frames[-1][0] and line == prev_line:
            # byte-identical re-append after a partial fsync: drop quietly
            scan.duplicates += 1
            offset = newline + 1
            scan.good_end = offset
            continue
        if expected is not None and seq != expected:
            scan.damaged = True
            scan.damage_reason = f"sequence break at byte {offset}: expected {expected}, got {seq}"
            break
        scan.frames.append((seq, event_doc))
        expected = seq + 1
        prev_line = line
        offset = newline + 1
        scan.good_end = offset
    return scan


def _segments_for(root: Path, writer: str) -> list[tuple[int, Path]]:
    out = []
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return out
    for name in names:
        parsed = _parse_segment_name(name)
        if parsed and parsed[0] == writer:
            out.append((parsed[1], root / name))
    out.sort()
    return out


def writers_in(root: str | os.PathLike) -> list[str]:
    """All writer streams present in a log directory (segments or snapshots)."""
    rootp = Path(root)
    found: set[str] = set()
    try:
        names = os.listdir(rootp)
    except FileNotFoundError:
        return []
    for name in names:
        parsed = _parse_segment_name(name)
        if parsed:
            found.add(parsed[0])
        else:
            writer = _snapshot.writer_of(name)
            if writer is not None:
                found.add(writer)
    return sorted(found)


class EventLog:
    """One writer stream of a log directory, open for append.

    Thread-safe: study workers' writer threads and serving threads may
    append concurrently through one instance.  Multi-*process* writers
    must use distinct ``writer`` ids — streams never share files.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        writer: str = "main",
        fsync: str = "commit",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if segment_bytes <= 0:
            raise ValueError(f"segment_bytes must be > 0, got {segment_bytes!r}")
        self.root = Path(root)
        self.writer = _validate_writer(writer)
        self.fsync_policy = fsync
        self.segment_bytes = segment_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._subscribers: list[Callable[[Event, int], None]] = []
        self._handle = None
        self._active_path: Path | None = None
        self._size = 0
        self._closed = False
        self._recover()

    # ------------------------------------------------------------------
    # open / recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        segments = _segments_for(self.root, self.writer)
        snap = _snapshot.load_snapshot(self.root, self.writer)
        base = snap[0] if snap else 0
        if not segments:
            self._next_seq = base + 1
            return
        first_seq, last_path = segments[-1]
        scan = _scan_segment(last_path, first_seq)
        if scan.damaged:
            # torn tail: keep the valid prefix, drop the suffix in place
            with open(last_path, "r+b") as handle:
                handle.truncate(scan.good_end)
        if scan.frames:
            self._next_seq = scan.frames[-1][0] + 1
        else:
            # every frame lost: the filename still pins where history resumes
            self._next_seq = first_seq
        self._active_path = last_path
        self._size = scan.good_end

    @property
    def last_seq(self) -> int:
        return self._next_seq - 1

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _ensure_handle(self):
        if self._handle is None:
            if self._active_path is None:
                self._active_path = self.root / _segment_name(self.writer, self._next_seq)
                self._size = 0
            self._handle = open(self._active_path, "ab")
        return self._handle

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.fsync_policy != "never":
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
        self._active_path = self.root / _segment_name(self.writer, self._next_seq)
        self._size = 0

    def append(self, event: Event) -> int:
        """Durably append one event; returns its sequence number."""
        if self._closed:
            raise ValueError("append on closed EventLog")
        with self._lock:
            if self._size >= self.segment_bytes and self._size > 0:
                self._rotate()
            seq = self._next_seq
            data = (_encode_frame(seq, event) + "\n").encode("utf-8")
            handle = self._ensure_handle()
            handle.write(data)
            handle.flush()
            if self.fsync_policy == "always":
                os.fsync(handle.fileno())
            self._next_seq = seq + 1
            self._size += len(data)
            subscribers = list(self._subscribers)
        for fn in subscribers:
            fn(event, seq)
        return seq

    def commit(self) -> None:
        """Fsync everything appended so far (the ``fsync="commit"`` barrier)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                if self.fsync_policy != "never":
                    os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self.commit()
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._closed = True

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, fn: Callable[[Event, int], None]) -> None:
        """Call ``fn(event, seq)`` after every durable append (live views)."""
        with self._lock:
            self._subscribers.append(fn)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[int, dict[str, Any]] | None:
        """The stream's compaction snapshot ``(seq, state)``, if any."""
        return _snapshot.load_snapshot(self.root, self.writer)

    def replay(self, start: int = 1) -> Iterator[tuple[int, Event]]:
        """Yield ``(seq, event)`` for this stream's valid prefix, seq >= start."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
        yield from _replay_stream(self.root, self.writer, start)

    def verify(self) -> dict[str, Any]:
        """Fsck this stream; see :func:`verify_dir` for the report shape."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
        return _verify_stream(self.root, self.writer)

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self, state: dict[str, Any]) -> int:
        """Snapshot ``state`` at the current seq and drop covered segments.

        ``state`` must let the caller reconstruct its view of every event
        up to (and including) ``last_seq`` — typically a
        :meth:`~repro.events.projections.ProjectionEngine.state` dump.
        Returns the snapshot sequence number.
        """
        with self._lock:
            upto = self.last_seq
            self.commit()
            _snapshot.save_snapshot(self.root, self.writer, upto, state)
            for first_seq, path in _segments_for(self.root, self.writer):
                last_in_segment = self._segment_last_seq(first_seq, path)
                if last_in_segment is None or last_in_segment > upto:
                    continue
                if path == self._active_path:
                    if self._handle is not None:
                        self._handle.close()
                        self._handle = None
                    self._active_path = None
                    self._size = 0
                path.unlink()
            self.append(SnapshotTaken(upto_seq=upto))
            return upto

    def _segment_last_seq(self, first_seq: int, path: Path) -> int | None:
        scan = _scan_segment(path, first_seq)
        if not scan.frames:
            return None
        return scan.frames[-1][0]


# ----------------------------------------------------------------------
# directory-level (multi-writer) reading
# ----------------------------------------------------------------------


def _replay_stream(root: Path, writer: str, start: int) -> Iterator[tuple[int, Event]]:
    snap = _snapshot.load_snapshot(root, writer)
    expected = (snap[0] if snap else 0) + 1
    for first_seq, path in _segments_for(root, writer):
        if first_seq != expected:
            return  # gap (lost or damaged segment): the prefix ends here
        scan = _scan_segment(path, first_seq)
        for seq, doc in scan.frames:
            if seq >= start:
                yield seq, from_doc(doc)
            expected = seq + 1
        if scan.damaged:
            return


def _verify_stream(root: Path, writer: str) -> dict[str, Any]:
    snap = _snapshot.load_snapshot(root, writer)
    report: dict[str, Any] = {
        "writer": writer,
        "snapshot_seq": snap[0] if snap else None,
        "segments": [],
        "frames": 0,
        "duplicates": 0,
        "errors": [],
    }
    expected = (snap[0] if snap else 0) + 1
    segments = _segments_for(root, writer)
    for index, (first_seq, path) in enumerate(segments):
        if first_seq != expected:
            report["errors"].append(
                f"{path.name}: starts at seq {first_seq}, expected {expected}"
            )
        scan = _scan_segment(path, first_seq)
        entry = {
            "file": path.name,
            "first_seq": first_seq,
            "frames": len(scan.frames),
            "last_seq": scan.frames[-1][0] if scan.frames else None,
            "duplicates": scan.duplicates,
            "damaged": scan.damaged,
        }
        if scan.damaged:
            is_active_tail = index == len(segments) - 1
            where = "torn tail of active segment" if is_active_tail else "sealed segment damage"
            report["errors"].append(f"{path.name}: {where}: {scan.damage_reason}")
        report["segments"].append(entry)
        report["frames"] += len(scan.frames)
        report["duplicates"] += scan.duplicates
        if scan.frames:
            expected = scan.frames[-1][0] + 1
    report["last_seq"] = expected - 1
    report["ok"] = not report["errors"]
    return report


def replay_dir(
    root: str | os.PathLike,
    *,
    after: dict[str, int] | None = None,
) -> Iterator[tuple[str, int, Event]]:
    """Replay every writer stream in a log directory, merged deterministically.

    Streams are yielded writer-by-writer in sorted order (sequence
    numbers are only ordered *within* a writer; there is no global
    clock).  Projections are therefore built commutative — keyed
    aggregates and counters — so the merge order cannot change a view.
    ``after`` maps writer → last seen seq, for incremental tailing.
    """
    after = after or {}
    for writer in writers_in(root):
        start = after.get(writer, 0) + 1
        for seq, event in _replay_stream(Path(root), writer, start):
            yield writer, seq, event


def verify_dir(root: str | os.PathLike) -> dict[str, Any]:
    """Fsck every stream in a log directory."""
    streams = [_verify_stream(Path(root), writer) for writer in writers_in(root)]
    return {
        "root": os.fspath(root),
        "streams": streams,
        "frames": sum(s["frames"] for s in streams),
        "ok": all(s["ok"] for s in streams),
    }
