"""Projections: materialized views computed incrementally from the log.

A :class:`Projection` folds events into a small state dict; the
:class:`ProjectionEngine` hosts a set of them and can be fed three ways,
all producing identical views:

* **live** — subscribed to an open :class:`~repro.events.log.EventLog`,
  applying each event as it is appended;
* **rebuild** — replaying a log directory from scratch
  (:meth:`ProjectionEngine.rebuild`), the path ``repro-study events
  rebuild`` exercises;
* **snapshot + tail** — restoring a compaction snapshot's state and
  applying only the events after it.

That three-way equivalence is the consistency guarantee: projection
state is a pure fold over the event prefix, and every state is
JSON-serializable so it can ride inside a snapshot.  Views are built
from *commutative* aggregates (keyed sums and counters) across writer
streams, because a multi-writer directory has no global event order —
only per-writer order is real.
"""

from __future__ import annotations

import os
from typing import Any

from repro.events.log import replay_dir, writers_in
from repro.events.snapshot import load_snapshot
from repro.events.types import (
    BreakerTripped,
    CellFailed,
    ChunkCompleted,
    Event,
    PredictionEmitted,
    ProbeCompleted,
    StoreInvalidated,
    TraceCaptured,
    WorkerDied,
    WorkerRespawned,
)

__all__ = [
    "Projection",
    "EventStats",
    "MachineLeaderboard",
    "ErrorVsObserved",
    "FailureHistory",
    "ProjectionEngine",
]

#: Row layout of :class:`repro.engine.plan.PredictionRecord` as serialized
#: inside ``ChunkCompleted`` events (field order is on-disk format).
_REC_SYSTEM = 2
_REC_METRIC = 3
_REC_ACTUAL = 4
_REC_ERROR = 6

FAILURE_HISTORY_LIMIT = 256


class Projection:
    """Base: a named, restorable fold over the event stream."""

    name = "projection"

    def apply(self, event: Event, *, writer: str = "main", seq: int = 0) -> None:
        raise NotImplementedError

    def view(self) -> Any:
        raise NotImplementedError

    def state(self) -> dict[str, Any]:
        raise NotImplementedError

    def restore(self, state: dict[str, Any]) -> None:
        raise NotImplementedError


class EventStats(Projection):
    """Counts by kind plus per-writer high-water marks."""

    name = "stats"

    def __init__(self) -> None:
        self._kinds: dict[str, int] = {}
        self._writers: dict[str, int] = {}
        self._total = 0

    def apply(self, event: Event, *, writer: str = "main", seq: int = 0) -> None:
        kind = type(event).kind
        if kind == "unknown":
            kind = getattr(event, "original_kind", kind)
        self._kinds[kind] = self._kinds.get(kind, 0) + 1
        self._total += 1
        if seq > self._writers.get(writer, 0):
            self._writers[writer] = seq

    def view(self) -> dict[str, Any]:
        return {
            "total": self._total,
            "by_kind": dict(sorted(self._kinds.items())),
            "writers": dict(sorted(self._writers.items())),
        }

    def state(self) -> dict[str, Any]:
        return {"kinds": self._kinds, "writers": self._writers, "total": self._total}

    def restore(self, state: dict[str, Any]) -> None:
        self._kinds = dict(state["kinds"])
        self._writers = dict(state["writers"])
        self._total = int(state["total"])


class MachineLeaderboard(Projection):
    """Per-machine prediction quality, ranked by mean absolute error.

    Study chunks contribute full error information; serve-path
    ``PredictionEmitted`` events (no observed runtime) contribute volume
    and degradation counts only.
    """

    name = "leaderboard"

    def __init__(self) -> None:
        self._machines: dict[str, dict[str, float]] = {}

    def _bucket(self, machine: str) -> dict[str, float]:
        return self._machines.setdefault(
            machine,
            {"predictions": 0, "served": 0, "degraded": 0, "sum_abs": 0.0, "sum_signed": 0.0},
        )

    def apply(self, event: Event, *, writer: str = "main", seq: int = 0) -> None:
        if isinstance(event, ChunkCompleted):
            for row in event.records or ():
                bucket = self._bucket(str(row[_REC_SYSTEM]))
                error = float(row[_REC_ERROR])
                bucket["predictions"] += 1
                bucket["sum_abs"] += abs(error)
                bucket["sum_signed"] += error
        elif isinstance(event, PredictionEmitted):
            bucket = self._bucket(event.machine)
            bucket["served"] += 1
            if event.degraded:
                bucket["degraded"] += 1

    def view(self) -> list[dict[str, Any]]:
        rows = []
        for machine, bucket in self._machines.items():
            n = int(bucket["predictions"])
            rows.append(
                {
                    "machine": machine,
                    "predictions": n,
                    "served": int(bucket["served"]),
                    "degraded": int(bucket["degraded"]),
                    "mean_abs_error": bucket["sum_abs"] / n if n else None,
                    "mean_signed_error": bucket["sum_signed"] / n if n else None,
                }
            )
        rows.sort(
            key=lambda row: (
                row["mean_abs_error"] is None,
                row["mean_abs_error"] if row["mean_abs_error"] is not None else 0.0,
                row["machine"],
            )
        )
        return rows

    def state(self) -> dict[str, Any]:
        return {"machines": self._machines}

    def restore(self, state: dict[str, Any]) -> None:
        self._machines = {k: dict(v) for k, v in state["machines"].items()}


class ErrorVsObserved(Projection):
    """Signed error vs observed runtime, keyed metric → machine.

    The per-cell rows of every ``ChunkCompleted`` fold into sums, so the
    view reads as: for each convolution metric, on each target machine,
    how biased the predictions are against the observed runtimes they
    were scored on.
    """

    name = "error_vs_observed"

    def __init__(self) -> None:
        self._cells: dict[str, dict[str, dict[str, float]]] = {}

    def apply(self, event: Event, *, writer: str = "main", seq: int = 0) -> None:
        if not isinstance(event, ChunkCompleted):
            return
        for row in event.records or ():
            metric = str(row[_REC_METRIC])
            machine = str(row[_REC_SYSTEM])
            cell = self._cells.setdefault(metric, {}).setdefault(
                machine,
                {"count": 0, "sum_signed": 0.0, "sum_abs": 0.0, "sum_observed": 0.0},
            )
            error = float(row[_REC_ERROR])
            cell["count"] += 1
            cell["sum_signed"] += error
            cell["sum_abs"] += abs(error)
            cell["sum_observed"] += float(row[_REC_ACTUAL])

    def view(self) -> dict[str, Any]:
        table: dict[str, Any] = {}
        for metric in sorted(self._cells):
            table[metric] = {}
            for machine in sorted(self._cells[metric]):
                cell = self._cells[metric][machine]
                n = int(cell["count"])
                table[metric][machine] = {
                    "count": n,
                    "mean_signed_error": cell["sum_signed"] / n,
                    "mean_abs_error": cell["sum_abs"] / n,
                    "mean_observed_seconds": cell["sum_observed"] / n,
                }
        return table

    def state(self) -> dict[str, Any]:
        return {"cells": self._cells}

    def restore(self, state: dict[str, Any]) -> None:
        self._cells = {
            metric: {machine: dict(cell) for machine, cell in machines.items()}
            for metric, machines in state["cells"].items()
        }


class FailureHistory(Projection):
    """Bounded chronological tail of everything that went wrong, plus totals."""

    name = "failures"

    _WATCHED = (
        CellFailed,
        BreakerTripped,
        WorkerDied,
        WorkerRespawned,
        StoreInvalidated,
        TraceCaptured,
        ProbeCompleted,
    )
    _COUNTED = ("cell-failed", "breaker-tripped", "worker-died", "worker-respawned", "store-invalidated")

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._recent: list[dict[str, Any]] = []

    def apply(self, event: Event, *, writer: str = "main", seq: int = 0) -> None:
        kind = type(event).kind
        if kind in ("trace-captured", "probe-completed"):
            # capture volume only; captures are not failures
            self._counts[kind] = self._counts.get(kind, 0) + 1
            return
        if kind not in self._COUNTED:
            return
        self._counts[kind] = self._counts.get(kind, 0) + 1
        entry = {"writer": writer, "seq": seq}
        entry.update(event.to_doc())
        self._recent.append(entry)
        if len(self._recent) > FAILURE_HISTORY_LIMIT:
            del self._recent[: len(self._recent) - FAILURE_HISTORY_LIMIT]

    def view(self) -> dict[str, Any]:
        return {"counts": dict(sorted(self._counts.items())), "recent": list(self._recent)}

    def state(self) -> dict[str, Any]:
        return {"counts": self._counts, "recent": self._recent}

    def restore(self, state: dict[str, Any]) -> None:
        self._counts = dict(state["counts"])
        self._recent = list(state["recent"])


def default_projections() -> list[Projection]:
    return [EventStats(), MachineLeaderboard(), ErrorVsObserved(), FailureHistory()]


class ProjectionEngine:
    """A set of projections fed from one event source."""

    def __init__(self, projections: list[Projection] | None = None) -> None:
        self._projections = projections if projections is not None else default_projections()
        self._by_name = {proj.name: proj for proj in self._projections}

    def apply(self, event: Event, *, writer: str = "main", seq: int = 0) -> None:
        for proj in self._projections:
            proj.apply(event, writer=writer, seq=seq)

    def views(self) -> dict[str, Any]:
        return {proj.name: proj.view() for proj in self._projections}

    def view(self, name: str) -> Any:
        return self._by_name[name].view()

    def state(self) -> dict[str, Any]:
        return {proj.name: proj.state() for proj in self._projections}

    def restore(self, state: dict[str, Any]) -> None:
        for proj in self._projections:
            if proj.name in state:
                proj.restore(state[proj.name])

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def attach(self, log) -> "ProjectionEngine":
        """Catch up on ``log``'s stream (snapshot first, if any) and follow live."""
        snap = log.snapshot()
        if snap is not None:
            self.restore(snap[1])
        for seq, event in log.replay():
            self.apply(event, writer=log.writer, seq=seq)
        log.subscribe(lambda event, seq: self.apply(event, writer=log.writer, seq=seq))
        return self

    @classmethod
    def rebuild(
        cls,
        root: str | os.PathLike,
        projections: list[Projection] | None = None,
    ) -> "ProjectionEngine":
        """Reconstruct views from a log directory alone.

        Single-writer directories may be compacted: the snapshot state is
        restored first, then the surviving tail replayed.  Multi-writer
        directories must be snapshot-free (only single-writer streams are
        ever compacted) — their segments are replayed in full.
        """
        engine = cls(projections)
        writers = writers_in(root)
        snapped = [w for w in writers if load_snapshot(root, w) is not None]
        if snapped:
            if len(writers) != 1:
                raise ValueError(
                    f"cannot rebuild {os.fspath(root)}: snapshots present for "
                    f"{snapped} in a multi-writer directory"
                )
            snap = load_snapshot(root, writers[0])
            assert snap is not None
            engine.restore(snap[1])
        for writer, seq, event in replay_dir(root):
            engine.apply(event, writer=writer, seq=seq)
        return engine
