"""Compaction snapshots for event-log streams.

A snapshot is the *only* non-append-only artifact of the durability
core: a single checksummed JSON document that summarizes every event of
one writer stream up to a sequence number, so the segments it covers can
be deleted.  Written atomically (temp + rename + fsync) — a crash leaves
either the old snapshot or the new one, never a torn file — and
validated on load; a damaged snapshot is treated as absent, which only
costs a longer replay when the covered segments still exist.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.util.io import write_atomic

__all__ = ["SNAPSHOT_VERSION", "snapshot_path", "save_snapshot", "load_snapshot", "writer_of"]

SNAPSHOT_VERSION = 1
_PREFIX = "snapshot-"
_SUFFIX = ".json"


def snapshot_path(root: str | os.PathLike, writer: str) -> Path:
    return Path(root) / f"{_PREFIX}{writer}{_SUFFIX}"


def writer_of(name: str) -> str | None:
    """Writer id a snapshot filename belongs to, or ``None``."""
    if name.startswith(_PREFIX) and name.endswith(_SUFFIX):
        writer = name[len(_PREFIX):-len(_SUFFIX)]
        return writer or None
    return None


def _checksum(doc: dict[str, Any]) -> str:
    canon = json.dumps(doc, sort_keys=True)
    return hashlib.blake2b(canon.encode("utf-8"), digest_size=16).hexdigest()


def save_snapshot(
    root: str | os.PathLike, writer: str, seq: int, state: dict[str, Any]
) -> Path:
    """Atomically persist ``state`` as the stream's summary through ``seq``."""
    doc = {
        "kind": "events-snapshot",
        "version": SNAPSHOT_VERSION,
        "writer": writer,
        "seq": seq,
        "state": state,
    }
    doc["check"] = _checksum({k: v for k, v in doc.items() if k != "check"})
    path = snapshot_path(root, writer)
    write_atomic(path, json.dumps(doc, sort_keys=True) + "\n")
    return path


def load_snapshot(
    root: str | os.PathLike, writer: str
) -> tuple[int, dict[str, Any]] | None:
    """Load and validate the stream's snapshot; damaged or absent → None."""
    path = snapshot_path(root, writer)
    try:
        doc = json.loads(path.read_text())
    except (FileNotFoundError, ValueError):
        return None
    if not isinstance(doc, dict):
        return None
    check = doc.pop("check", None)
    if (
        doc.get("kind") != "events-snapshot"
        or doc.get("version") != SNAPSHOT_VERSION
        or doc.get("writer") != writer
        or not isinstance(doc.get("seq"), int)
        or not isinstance(doc.get("state"), dict)
        or check != _checksum(doc)
    ):
        return None
    return doc["seq"], doc["state"]
