"""Typed domain events for the durability core.

Every durable fact the system produces — a chunk of study predictions, a
probe capture, an invalidated cache entry, a breaker trip, a worker death
— is modelled as a frozen dataclass here and appended to an
:class:`~repro.events.log.EventLog`.  Events are the *only* thing the log
stores; checkpoints, store accounting, and the serve fleet's
``/events/stats`` views are all derived from them by replay.

The wire form of an event is a plain JSON document ``{"kind": ..., field:
value, ...}`` produced by :meth:`Event.to_doc` and parsed back by
:func:`from_doc`.  Unknown kinds decode to :class:`UnknownEvent` instead
of raising, so an old reader can tail a log written by a newer build.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar

__all__ = [
    "Event",
    "UnknownEvent",
    "StudyStarted",
    "ChunkCompleted",
    "CellFailed",
    "ProbeCompleted",
    "TraceCaptured",
    "PredictionEmitted",
    "BreakerTripped",
    "WorkerDied",
    "WorkerRespawned",
    "StoreInvalidated",
    "SnapshotTaken",
    "EVENT_KINDS",
    "from_doc",
]


@dataclass(frozen=True)
class Event:
    """Base class: a frozen record with a class-level ``kind`` tag."""

    kind: ClassVar[str] = ""

    def to_doc(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": type(self).kind}
        for field in fields(self):
            doc[field.name] = getattr(self, field.name)
        return doc


@dataclass(frozen=True)
class UnknownEvent(Event):
    """Forward-compatibility envelope for kinds this build doesn't know."""

    kind: ClassVar[str] = "unknown"
    original_kind: str = ""
    data: dict[str, Any] | None = None

    def to_doc(self) -> dict[str, Any]:
        doc = dict(self.data or {})
        doc["kind"] = self.original_kind
        return doc


# ----------------------------------------------------------------------
# study journal events
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StudyStarted(Event):
    """First event of a study journal; pins the config identity."""

    kind: ClassVar[str] = "study-started"
    config_digest: str = ""
    schema_version: int = 0


@dataclass(frozen=True)
class ChunkCompleted(Event):
    """One study cell (application × base system) finished.

    ``records``/``observed`` are the row-tuples of
    :class:`repro.engine.plan.PredictionRecord`, JSON-serialized as lists;
    field order is part of the on-disk format.
    """

    kind: ClassVar[str] = "chunk-completed"
    label: str = ""
    records: list = None  # type: ignore[assignment]
    observed: list = None  # type: ignore[assignment]
    stages: dict = None  # type: ignore[assignment]


@dataclass(frozen=True)
class CellFailed(Event):
    """A study cell was quarantined after exhausting retries."""

    kind: ClassVar[str] = "cell-failed"
    application: str = ""
    error: str = ""
    message: str = ""
    attempts: int = 0


# ----------------------------------------------------------------------
# trace-store events
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ProbeCompleted(Event):
    kind: ClassVar[str] = "probe-completed"
    machine: str = ""
    key: str = ""


@dataclass(frozen=True)
class TraceCaptured(Event):
    kind: ClassVar[str] = "trace-captured"
    application: str = ""
    cpus: int = 0
    base_machine: str = ""
    key: str = ""


@dataclass(frozen=True)
class StoreInvalidated(Event):
    """A checksummed cache entry failed validation and was dropped."""

    kind: ClassVar[str] = "store-invalidated"
    entry_kind: str = ""
    entry: str = ""
    reason: str = ""


# ----------------------------------------------------------------------
# serving events
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PredictionEmitted(Event):
    kind: ClassVar[str] = "prediction-emitted"
    application: str = ""
    cpus: int = 0
    machine: str = ""
    metric: str = ""
    predicted_seconds: float = 0.0
    degraded: bool = False


@dataclass(frozen=True)
class BreakerTripped(Event):
    kind: ClassVar[str] = "breaker-tripped"
    stage: str = ""
    failures: int = 0
    cooldown_seconds: float = 0.0


@dataclass(frozen=True)
class WorkerDied(Event):
    kind: ClassVar[str] = "worker-died"
    worker: str = ""
    pid: int = 0


@dataclass(frozen=True)
class WorkerRespawned(Event):
    kind: ClassVar[str] = "worker-respawned"
    worker: str = ""
    pid: int = 0


# ----------------------------------------------------------------------
# log-infrastructure events
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SnapshotTaken(Event):
    """Marks a compaction point; events at or below ``upto_seq`` for this
    writer are summarized by the snapshot file."""

    kind: ClassVar[str] = "snapshot-taken"
    upto_seq: int = 0


EVENT_KINDS: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        StudyStarted,
        ChunkCompleted,
        CellFailed,
        ProbeCompleted,
        TraceCaptured,
        StoreInvalidated,
        PredictionEmitted,
        BreakerTripped,
        WorkerDied,
        WorkerRespawned,
        SnapshotTaken,
    )
}


def from_doc(doc: dict[str, Any]) -> Event:
    """Decode a wire document back into a typed event.

    Unknown kinds (or known kinds with an unexpected field set) decode to
    :class:`UnknownEvent` so replay never fails on schema skew.
    """
    kind = doc.get("kind")
    cls = EVENT_KINDS.get(kind) if isinstance(kind, str) else None
    if cls is None:
        return UnknownEvent(original_kind=str(kind), data={k: v for k, v in doc.items() if k != "kind"})
    names = {field.name for field in fields(cls)}
    payload = {k: v for k, v in doc.items() if k != "kind"}
    if set(payload) != names:
        return UnknownEvent(original_kind=str(kind), data=payload)
    return cls(**payload)
