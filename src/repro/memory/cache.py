"""Set-associative LRU cache simulator.

This is the tracing substrate: MetaSim Tracer replays sampled address
streams through a :class:`MultiLevelCache` configured from the *base*
machine's hierarchy to estimate per-block locality, exactly as the paper's
tracer observed address streams on the NAVO p690.

The simulator favours clarity over raw speed — streams are sampled (tens of
thousands of references per basic block), so an interpreted per-reference
loop is acceptable, and NumPy is used for the per-set tag search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machines.spec import MachineSpec
from repro.util.validation import check_positive

__all__ = ["SetAssociativeCache", "MultiLevelCache", "CacheStats"]


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class SetAssociativeCache:
    """One set-associative cache level with true-LRU replacement.

    Parameters
    ----------
    size_bytes:
        Total capacity; must be ``ways * line_bytes * 2**k`` for integer k.
    line_bytes:
        Line (block) size; must be a power of two.
    ways:
        Associativity.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 4):
        size_bytes = int(check_positive("size_bytes", size_bytes))
        line_bytes = int(check_positive("line_bytes", line_bytes))
        ways = int(check_positive("ways", ways))
        if not _is_power_of_two(line_bytes):
            raise ValueError(f"line_bytes must be a power of two, got {line_bytes}")
        n_sets, rem = divmod(size_bytes, line_bytes * ways)
        if rem or n_sets == 0:
            raise ValueError(
                f"size {size_bytes} is not divisible into sets of "
                f"{ways} ways x {line_bytes} B lines"
            )
        if not _is_power_of_two(n_sets):
            raise ValueError(f"number of sets must be a power of two, got {n_sets}")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        # tag -1 marks an empty way; _stamp holds a per-access LRU clock.
        self._tags = np.full((n_sets, ways), -1, dtype=np.int64)
        self._stamp = np.zeros((n_sets, ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        """Clear contents and statistics."""
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch ``address``; return True on hit, False on miss (line filled)."""
        line = int(address) >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> (self.n_sets.bit_length() - 1)
        self._clock += 1
        tags = self._tags[set_idx]
        hit_ways = np.nonzero(tags == tag)[0]
        if hit_ways.size:
            self._stamp[set_idx, hit_ways[0]] = self._clock
            self.hits += 1
            return True
        # miss: evict LRU way
        victim = int(np.argmin(self._stamp[set_idx]))
        tags[victim] = tag
        self._stamp[set_idx, victim] = self._clock
        self.misses += 1
        return False

    def simulate(self, addresses: np.ndarray) -> np.ndarray:
        """Replay ``addresses`` (int array); return a boolean hit mask."""
        addrs = np.asarray(addresses, dtype=np.int64)
        out = np.empty(addrs.shape[0], dtype=bool)
        for i, a in enumerate(addrs):
            out[i] = self.access(int(a))
        return out

    @property
    def accesses(self) -> int:
        """Total references simulated since the last reset."""
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Hit fraction since the last reset (0 when nothing simulated)."""
        total = self.accesses
        return self.hits / total if total else 0.0


@dataclass
class CacheStats:
    """Per-level outcome of a multi-level simulation.

    Attributes
    ----------
    level_names:
        Cache level names, nearest first (main memory excluded).
    hits:
        References that hit at each level (first level they hit).
    memory_accesses:
        References that missed every cache level.
    total:
        Total references replayed.
    """

    level_names: list[str]
    hits: list[int]
    memory_accesses: int
    total: int

    def service_fractions(self) -> dict[str, float]:
        """Fraction of references served per level, including ``"MEM"``."""
        if self.total == 0:
            return {name: 0.0 for name in self.level_names} | {"MEM": 0.0}
        out = {
            name: h / self.total for name, h in zip(self.level_names, self.hits)
        }
        out["MEM"] = self.memory_accesses / self.total
        return out


@dataclass
class MultiLevelCache:
    """An inclusive stack of :class:`SetAssociativeCache` levels.

    A reference is tried at each level in order; the first hit serves it and
    lower levels are still filled (inclusive allocation on miss).
    """

    levels: list[SetAssociativeCache]
    names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("MultiLevelCache requires at least one level")
        if not self.names:
            self.names = [f"L{i + 1}" for i in range(len(self.levels))]
        if len(self.names) != len(self.levels):
            raise ValueError("names and levels must have equal length")

    @classmethod
    def of(cls, machine: MachineSpec, ways: int = 4) -> "MultiLevelCache":
        """Configure a simulator matching ``machine``'s cache levels.

        Sizes are rounded down to the nearest simulable geometry (power-of-two
        set count).
        """
        levels: list[SetAssociativeCache] = []
        names: list[str] = []
        for spec in machine.caches:
            line = int(spec.line_bytes)
            target_sets = max(1, int(spec.size_bytes) // (line * ways))
            n_sets = 1 << (target_sets.bit_length() - 1)
            levels.append(
                SetAssociativeCache(n_sets * line * ways, line_bytes=line, ways=ways)
            )
            names.append(spec.name)
        return cls(levels=levels, names=names)

    def reset(self) -> None:
        """Clear all levels."""
        for level in self.levels:
            level.reset()

    def simulate(self, addresses: np.ndarray) -> CacheStats:
        """Replay ``addresses`` through the stack and tally per-level hits."""
        addrs = np.asarray(addresses, dtype=np.int64)
        hits = [0] * len(self.levels)
        mem = 0
        for a in addrs:
            address = int(a)
            for i, level in enumerate(self.levels):
                if level.access(address):
                    hits[i] += 1
                    break
            else:
                mem += 1
        return CacheStats(
            level_names=list(self.names),
            hits=hits,
            memory_accesses=mem,
            total=int(addrs.shape[0]),
        )
