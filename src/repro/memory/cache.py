"""Set-associative LRU cache simulator.

This is the tracing substrate: MetaSim Tracer replays sampled address
streams through a :class:`MultiLevelCache` configured from the *base*
machine's hierarchy to estimate per-block locality, exactly as the paper's
tracer observed address streams on the NAVO p690.

Replay is batched: :meth:`SetAssociativeCache.simulate` decomposes the whole
stream into (set, tag) pairs in one vectorised pass and replays each set's
subsequence with a short LRU scan, and :meth:`MultiLevelCache.simulate`
feeds each level only the references that missed every nearer level.  Both
are exact — same hit masks, counters and final tag state as the
per-reference :meth:`SetAssociativeCache.access` walk they replace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machines.spec import MachineSpec
from repro.util.validation import check_positive

__all__ = ["SetAssociativeCache", "MultiLevelCache", "CacheStats"]


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class SetAssociativeCache:
    """One set-associative cache level with true-LRU replacement.

    Parameters
    ----------
    size_bytes:
        Total capacity; must be ``ways * line_bytes * 2**k`` for integer k.
    line_bytes:
        Line (block) size; must be a power of two.
    ways:
        Associativity.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 4):
        size_bytes = int(check_positive("size_bytes", size_bytes))
        line_bytes = int(check_positive("line_bytes", line_bytes))
        ways = int(check_positive("ways", ways))
        if not _is_power_of_two(line_bytes):
            raise ValueError(f"line_bytes must be a power of two, got {line_bytes}")
        n_sets, rem = divmod(size_bytes, line_bytes * ways)
        if rem or n_sets == 0:
            raise ValueError(
                f"size {size_bytes} is not divisible into sets of "
                f"{ways} ways x {line_bytes} B lines"
            )
        if not _is_power_of_two(n_sets):
            raise ValueError(f"number of sets must be a power of two, got {n_sets}")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        # tag -1 marks an empty way; _stamp holds a per-access LRU clock.
        self._tags = np.full((n_sets, ways), -1, dtype=np.int64)
        self._stamp = np.zeros((n_sets, ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        """Clear contents and statistics."""
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch ``address``; return True on hit, False on miss (line filled)."""
        line = int(address) >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> (self.n_sets.bit_length() - 1)
        self._clock += 1
        tags = self._tags[set_idx]
        hit_ways = np.nonzero(tags == tag)[0]
        if hit_ways.size:
            self._stamp[set_idx, hit_ways[0]] = self._clock
            self.hits += 1
            return True
        # miss: evict LRU way
        victim = int(np.argmin(self._stamp[set_idx]))
        tags[victim] = tag
        self._stamp[set_idx, victim] = self._clock
        self.misses += 1
        return False

    def simulate(self, addresses: np.ndarray) -> np.ndarray:
        """Replay ``addresses`` (int array); return a boolean hit mask.

        Equivalent to calling :meth:`access` per reference — same hit mask,
        counters and final tag/LRU state — but the set/tag decomposition is
        one vectorised pass and references are replayed grouped by set.
        Accesses to different sets never interact (the LRU clock only orders
        accesses *within* a set), so grouping preserves the exact outcome
        while replacing two NumPy searches per reference with a short
        Python scan of at most ``ways`` entries.
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        n = int(addrs.shape[0])
        if n == 0:
            return np.empty(0, dtype=bool)
        lines = addrs >> self._line_shift
        set_idx = (lines & self._set_mask).astype(np.intp)
        tags = lines >> (self.n_sets.bit_length() - 1)
        hit_mask = np.empty(n, dtype=bool)
        clock0 = self._clock

        order = np.argsort(set_idx, kind="stable")
        sorted_sets = set_idx[order]
        starts = np.nonzero(np.diff(sorted_sets))[0] + 1
        groups = np.split(order, starts)
        for grp in groups:
            s = int(set_idx[grp[0]])
            way_tags = self._tags[s]
            way_stamp = self._stamp[s]
            # MRU->LRU order of ways; the victim (``argmin`` of stamps, ties
            # to the lowest index) sits at the end of the list.
            lru = [
                (int(way_tags[w]), w)
                for w in sorted(
                    range(self.ways),
                    key=lambda w: (int(way_stamp[w]), w),
                    reverse=True,
                )
            ]
            last_touch = {}
            for pos in grp:
                tag = int(tags[pos])
                for j, (resident, w) in enumerate(lru):
                    if resident == tag:
                        hit_mask[pos] = True
                        lru.insert(0, lru.pop(j))
                        last_touch[w] = int(pos)
                        break
                else:
                    hit_mask[pos] = False
                    _evicted, w = lru.pop()
                    lru.insert(0, (tag, w))
                    last_touch[w] = int(pos)
            for resident, w in lru:
                way_tags[w] = resident
            for w, pos in last_touch.items():
                way_stamp[w] = clock0 + pos + 1

        self._clock = clock0 + n
        n_hits = int(np.count_nonzero(hit_mask))
        self.hits += n_hits
        self.misses += n - n_hits
        return hit_mask

    @property
    def accesses(self) -> int:
        """Total references simulated since the last reset."""
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Hit fraction since the last reset (0 when nothing simulated)."""
        total = self.accesses
        return self.hits / total if total else 0.0


@dataclass
class CacheStats:
    """Per-level outcome of a multi-level simulation.

    Attributes
    ----------
    level_names:
        Cache level names, nearest first (main memory excluded).
    hits:
        References that hit at each level (first level they hit).
    memory_accesses:
        References that missed every cache level.
    total:
        Total references replayed.
    """

    level_names: list[str]
    hits: list[int]
    memory_accesses: int
    total: int

    def service_fractions(self) -> dict[str, float]:
        """Fraction of references served per level, including ``"MEM"``."""
        if self.total == 0:
            return {name: 0.0 for name in self.level_names} | {"MEM": 0.0}
        out = {
            name: h / self.total for name, h in zip(self.level_names, self.hits)
        }
        out["MEM"] = self.memory_accesses / self.total
        return out


@dataclass
class MultiLevelCache:
    """An inclusive stack of :class:`SetAssociativeCache` levels.

    A reference is tried at each level in order; the first hit serves it and
    lower levels are still filled (inclusive allocation on miss).
    """

    levels: list[SetAssociativeCache]
    names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("MultiLevelCache requires at least one level")
        if not self.names:
            self.names = [f"L{i + 1}" for i in range(len(self.levels))]
        if len(self.names) != len(self.levels):
            raise ValueError("names and levels must have equal length")

    @classmethod
    def of(cls, machine: MachineSpec, ways: int = 4) -> "MultiLevelCache":
        """Configure a simulator matching ``machine``'s cache levels.

        Sizes are rounded down to the nearest simulable geometry (power-of-two
        set count).
        """
        levels: list[SetAssociativeCache] = []
        names: list[str] = []
        for spec in machine.caches:
            line = int(spec.line_bytes)
            target_sets = max(1, int(spec.size_bytes) // (line * ways))
            n_sets = 1 << (target_sets.bit_length() - 1)
            levels.append(
                SetAssociativeCache(n_sets * line * ways, line_bytes=line, ways=ways)
            )
            names.append(spec.name)
        return cls(levels=levels, names=names)

    def reset(self) -> None:
        """Clear all levels."""
        for level in self.levels:
            level.reset()

    def service_fractions_analytic(self, addresses: np.ndarray) -> dict[str, float]:
        """Per-level service fractions from one reuse-distance pass.

        Machine-independent core: the stream is profiled once per distinct
        line size (:func:`repro.memory.reuse.reuse_profile`) and each
        level's hit rate falls out of its ``(n_sets, ways)`` geometry in
        O(1) — no replay, so pricing another machine's hierarchy reuses the
        same profile.  Cumulative hit rates are forced monotone across
        levels (an inclusive stack can only serve more from a farther
        level), then differenced into the same ``{level: fraction, "MEM":
        fraction}`` shape :meth:`simulate` reports.  Agreement with the
        exact simulator is within the binomial conflict model's tolerance
        (DESIGN.md §5c), not exact — keep :meth:`simulate` for golden runs.
        """
        from repro.memory.reuse import reuse_profile

        addrs = np.asarray(addresses, dtype=np.int64)
        if addrs.shape[0] == 0:
            return {name: 0.0 for name in self.names} | {"MEM": 0.0}
        profiles = {
            lb: reuse_profile(addrs, lb)
            for lb in {level.line_bytes for level in self.levels}
        }
        hit_rates = np.array(
            [
                profiles[level.line_bytes].assoc_hit_fraction(level.n_sets, level.ways)
                for level in self.levels
            ]
        )
        cumulative = np.maximum.accumulate(hit_rates)
        served = np.diff(np.concatenate([[0.0], cumulative]))
        out = {name: float(f) for name, f in zip(self.names, served)}
        out["MEM"] = float(1.0 - cumulative[-1])
        return out

    def simulate(self, addresses: np.ndarray) -> CacheStats:
        """Replay ``addresses`` through the stack and tally per-level hits.

        Level-batched: each level replays, in order, exactly the references
        that missed every nearer level.  Because levels share no state (no
        back-invalidation), this is identical to walking the stack per
        reference, but each level gets one array-level
        :meth:`SetAssociativeCache.simulate` call.
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        total = int(addrs.shape[0])
        remaining = addrs
        hits = []
        for level in self.levels:
            mask = level.simulate(remaining)
            hits.append(int(np.count_nonzero(mask)))
            remaining = remaining[~mask]
        return CacheStats(
            level_names=list(self.names),
            hits=hits,
            memory_accesses=int(remaining.shape[0]),
            total=total,
        )
