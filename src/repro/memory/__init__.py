"""Memory subsystem models.

Three complementary pieces:

* :mod:`repro.memory.patterns` — descriptors of *how* a kernel touches
  memory (working set, stride class, dependence), shared by probes, the
  ground-truth executor and the convolver.
* :mod:`repro.memory.hierarchy` — the analytic cache/memory hierarchy model
  that converts a pattern into achieved bandwidth on a given machine.  This
  is the single behavioural surface both probes and the executor interrogate
  (DESIGN.md §5.2).
* :mod:`repro.memory.cache` / :mod:`repro.memory.streams` /
  :mod:`repro.memory.stride` — a set-associative LRU cache simulator,
  synthetic address-stream generators and an EMPS-style stride detector;
  together they form the tracing substrate used by MetaSim Tracer.
"""

from repro.memory.patterns import (
    AccessPattern,
    StrideClass,
    StrideHistogram,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.cache import CacheStats, MultiLevelCache, SetAssociativeCache
from repro.memory.streams import (
    pointer_chase_addresses,
    random_addresses,
    strided_addresses,
)
from repro.memory.stride import StrideDetector, StrideReport

__all__ = [
    "AccessPattern",
    "StrideClass",
    "StrideHistogram",
    "MemoryHierarchy",
    "SetAssociativeCache",
    "MultiLevelCache",
    "CacheStats",
    "strided_addresses",
    "random_addresses",
    "pointer_chase_addresses",
    "StrideDetector",
    "StrideReport",
]
