"""Analytic cache/memory hierarchy model.

Given a machine's :class:`~repro.machines.spec.MemoryLevelSpec` levels and an
:class:`~repro.memory.patterns.AccessPattern`, the model produces the
*achieved useful bandwidth* — bytes the kernel actually consumes per second.

The model prices each access by the level that serves it:

* residency — data is assumed to occupy the hierarchy greedily, so for a
  working set ``W`` and level sizes ``s1 < s2 < ...`` the fraction of
  references served at level ``i`` is ``min(1, s_i/W) - min(1, s_{i-1}/W)``
  (an inclusive-capacity, fully-warm steady-state approximation);
* unit stride — streaming at the level's bandwidth;
* short stride ``k`` — a full line is transferred for every
  ``min(k·elem, line)`` bytes advanced, wasting the rest;
* random, independent — throughput is latency/MLP bound
  (``mlp · elem / latency``), capped by the level's streaming bandwidth;
* dependent accesses serialise: strided dependence blends a prefetchable
  portion (``bandwidth * dependent_stream_factor``) with full-latency
  chases according to the pattern's ``chase_fraction``; dependent random
  access degenerates to a pure pointer chase (``elem / latency``).

This single surface is interrogated by both the synthetic probes and the
ground-truth application executor (DESIGN.md §5.2): probes see it through
probe-shaped patterns, applications through their own — the gap between the
two is exactly the prediction error the paper studies.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.machines.spec import MachineSpec, MemoryLevelSpec
from repro.memory.patterns import AccessPattern, StrideClass

__all__ = ["MemoryHierarchy"]


class MemoryHierarchy:
    """Behavioural model of one machine's memory hierarchy.

    Parameters
    ----------
    levels:
        Hierarchy levels ordered nearest to farthest; the last must be main
        memory (infinite size).  Usually taken from
        :attr:`repro.machines.spec.MachineSpec.memory_levels`.
    """

    def __init__(self, levels: Sequence[MemoryLevelSpec]):
        if not levels:
            raise ValueError("hierarchy requires at least one level")
        if levels[-1].size_bytes != float("inf"):
            raise ValueError("last level must be main memory (size=inf)")
        self.levels: tuple[MemoryLevelSpec, ...] = tuple(levels)
        self._sizes = np.array([lvl.size_bytes for lvl in levels])

    @classmethod
    def of(cls, machine: MachineSpec) -> "MemoryHierarchy":
        """Build the hierarchy model for ``machine``."""
        return cls(machine.memory_levels)

    # ------------------------------------------------------------------
    # residency
    # ------------------------------------------------------------------
    def residency_fractions(self, working_set: float) -> np.ndarray:
        """Fraction of references served by each level for ``working_set``.

        Fractions are non-negative and sum to 1; a working set that fits in
        L1 is served entirely by L1, one far larger than the last cache is
        served (almost) entirely by main memory.
        """
        if working_set <= 0:
            raise ValueError(f"working_set must be > 0, got {working_set!r}")
        cum = np.minimum(1.0, self._sizes / working_set)
        cum[-1] = 1.0  # main memory holds everything
        fractions = np.diff(np.concatenate(([0.0], cum)))
        return np.maximum(fractions, 0.0)

    # ------------------------------------------------------------------
    # per-level pricing
    # ------------------------------------------------------------------
    @staticmethod
    def level_useful_bandwidth(level: MemoryLevelSpec, pattern: AccessPattern) -> float:
        """Useful bytes/s when every access of ``pattern`` is served by ``level``."""
        elem = pattern.element_bytes
        if pattern.stride is StrideClass.RANDOM:
            if pattern.dependent:
                # Pure pointer chase: one outstanding miss, full latency each.
                return elem / level.latency
            # Independent misses overlap up to the level's MLP; useful
            # throughput is elem bytes per latency per outstanding miss,
            # never exceeding the streaming bandwidth.
            return min(elem * level.mlp / level.latency, level.bandwidth)

        # Strided access: a line is consumed every line/stride_bytes accesses,
        # so the useful fraction of transferred bytes is elem/min(stride,line).
        waste = min(pattern.stride_bytes, level.line_bytes) / elem
        bw = level.bandwidth / waste
        if pattern.dependent:
            # A dependent strided access is a mix of prefetchable dependence
            # (throughput bw * dependent_stream_factor) and full-latency
            # chases; the mix is the pattern's chase_fraction.
            cf = pattern.chase_fraction
            t_per_byte = (1.0 - cf) / (bw * level.dependent_stream_factor)
            t_per_byte += cf * level.latency / elem
            return 1.0 / t_per_byte
        return bw

    # ------------------------------------------------------------------
    # pattern pricing
    # ------------------------------------------------------------------
    def effective_bandwidth(self, pattern: AccessPattern) -> float:
        """Achieved useful bandwidth (B/s) for ``pattern`` on this hierarchy.

        Averages per-level access costs weighted by residency: the time per
        access is ``sum_i f_i * elem / bw_i`` and the useful bandwidth is its
        reciprocal times ``elem``.
        """
        fractions = self.residency_fractions(pattern.working_set)
        time_per_byte = 0.0
        for frac, level in zip(fractions, self.levels):
            if frac <= 0.0:
                continue
            time_per_byte += frac / self.level_useful_bandwidth(level, pattern)
        return 1.0 / time_per_byte

    def access_time(self, pattern: AccessPattern, total_bytes: float) -> float:
        """Seconds to consume ``total_bytes`` of useful data under ``pattern``."""
        if total_bytes < 0:
            raise ValueError(f"total_bytes must be >= 0, got {total_bytes!r}")
        if total_bytes == 0:
            return 0.0
        return total_bytes / self.effective_bandwidth(pattern)

    # ------------------------------------------------------------------
    # introspection helpers (used by probes and reports)
    # ------------------------------------------------------------------
    def serving_level(self, working_set: float) -> MemoryLevelSpec:
        """The level that serves the majority of references for ``working_set``."""
        fractions = self.residency_fractions(working_set)
        return self.levels[int(np.argmax(fractions))]

    def level_names(self) -> list[str]:
        """Names of the hierarchy levels, nearest first."""
        return [lvl.name for lvl in self.levels]
