"""Analytic cache/memory hierarchy model.

Given a machine's :class:`~repro.machines.spec.MemoryLevelSpec` levels and an
:class:`~repro.memory.patterns.AccessPattern`, the model produces the
*achieved useful bandwidth* — bytes the kernel actually consumes per second.

The model prices each access by the level that serves it:

* residency — data is assumed to occupy the hierarchy greedily, so for a
  working set ``W`` and level sizes ``s1 < s2 < ...`` the fraction of
  references served at level ``i`` is ``min(1, s_i/W) - min(1, s_{i-1}/W)``
  (an inclusive-capacity, fully-warm steady-state approximation);
* unit stride — streaming at the level's bandwidth;
* short stride ``k`` — a full line is transferred for every
  ``min(k·elem, line)`` bytes advanced, wasting the rest;
* random, independent — throughput is latency/MLP bound
  (``mlp · elem / latency``), capped by the level's streaming bandwidth;
* dependent accesses serialise: strided dependence blends a prefetchable
  portion (``bandwidth * dependent_stream_factor``) with full-latency
  chases according to the pattern's ``chase_fraction``; dependent random
  access degenerates to a pure pointer chase (``elem / latency``).

This single surface is interrogated by both the synthetic probes and the
ground-truth application executor (DESIGN.md §5.2): probes see it through
probe-shaped patterns, applications through their own — the gap between the
two is exactly the prediction error the paper studies.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.machines.spec import MachineSpec, MemoryLevelSpec
from repro.memory.patterns import AccessPattern, StrideClass

__all__ = ["MemoryHierarchy"]


class MemoryHierarchy:
    """Behavioural model of one machine's memory hierarchy.

    Parameters
    ----------
    levels:
        Hierarchy levels ordered nearest to farthest; the last must be main
        memory (infinite size).  Usually taken from
        :attr:`repro.machines.spec.MachineSpec.memory_levels`.
    """

    def __init__(self, levels: Sequence[MemoryLevelSpec]):
        if not levels:
            raise ValueError("hierarchy requires at least one level")
        if levels[-1].size_bytes != float("inf"):
            raise ValueError("last level must be main memory (size=inf)")
        self.levels: tuple[MemoryLevelSpec, ...] = tuple(levels)
        self._sizes = np.array([lvl.size_bytes for lvl in levels])
        # Hot-path memoisation: the executor prices every (stride class,
        # dependence) split of a block against the same hierarchy, so
        # residency (keyed by working set) and achieved bandwidth (keyed by
        # the full pattern) recur constantly within a study.
        self._residency_cache: dict[float, tuple[float, ...]] = {}
        self._bandwidth_cache: dict[AccessPattern, float] = {}
        self._level_bw_cache: dict[tuple, tuple[float, ...]] = {}

    @classmethod
    def of(cls, machine: MachineSpec) -> "MemoryHierarchy":
        """Build the hierarchy model for ``machine``."""
        return cls(machine.memory_levels)

    # ------------------------------------------------------------------
    # residency
    # ------------------------------------------------------------------
    def residency_fractions(self, working_set: float) -> np.ndarray:
        """Fraction of references served by each level for ``working_set``.

        Fractions are non-negative and sum to 1; a working set that fits in
        L1 is served entirely by L1, one far larger than the last cache is
        served (almost) entirely by main memory.
        """
        return np.array(self._residency(working_set))

    def _residency(self, working_set: float) -> tuple[float, ...]:
        """Cached, allocation-free core of :meth:`residency_fractions`."""
        cached = self._residency_cache.get(working_set)
        if cached is not None:
            return cached
        if working_set <= 0:
            raise ValueError(f"working_set must be > 0, got {working_set!r}")
        prev = 0.0
        fractions = []
        last = len(self.levels) - 1
        for i, level in enumerate(self.levels):
            cum = 1.0 if i == last else min(1.0, level.size_bytes / working_set)
            fractions.append(max(cum - prev, 0.0))
            prev = cum
        out = tuple(fractions)
        self._residency_cache[working_set] = out
        return out

    # ------------------------------------------------------------------
    # per-level pricing
    # ------------------------------------------------------------------
    @staticmethod
    def level_useful_bandwidth(level: MemoryLevelSpec, pattern: AccessPattern) -> float:
        """Useful bytes/s when every access of ``pattern`` is served by ``level``."""
        elem = pattern.element_bytes
        if pattern.stride is StrideClass.RANDOM:
            if pattern.dependent:
                # Pure pointer chase: one outstanding miss, full latency each.
                return elem / level.latency
            # Independent misses overlap up to the level's MLP; useful
            # throughput is elem bytes per latency per outstanding miss,
            # never exceeding the streaming bandwidth.
            return min(elem * level.mlp / level.latency, level.bandwidth)

        # Strided access: a line is consumed every line/stride_bytes accesses,
        # so the useful fraction of transferred bytes is elem/min(stride,line).
        waste = min(pattern.stride_bytes, level.line_bytes) / elem
        bw = level.bandwidth / waste
        if pattern.dependent:
            # A dependent strided access is a mix of prefetchable dependence
            # (throughput bw * dependent_stream_factor) and full-latency
            # chases; the mix is the pattern's chase_fraction.
            cf = pattern.chase_fraction
            t_per_byte = (1.0 - cf) / (bw * level.dependent_stream_factor)
            t_per_byte += cf * level.latency / elem
            return 1.0 / t_per_byte
        return bw

    def _level_bandwidths(self, pattern: AccessPattern) -> tuple[float, ...]:
        """Per-level useful bandwidths for ``pattern``, cached.

        :meth:`level_useful_bandwidth` does not depend on the working set,
        only on the pattern's shape — so hierarchy-wide level pricing recurs
        across every block sharing a (stride, dependence) split and is worth
        memoising separately from the residency-weighted result.
        """
        key = (
            pattern.stride,
            pattern.stride_elems,
            pattern.element_bytes,
            pattern.dependent,
            pattern.chase_fraction,
        )
        cached = self._level_bw_cache.get(key)
        if cached is None:
            cached = tuple(
                self.level_useful_bandwidth(level, pattern) for level in self.levels
            )
            self._level_bw_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # pattern pricing
    # ------------------------------------------------------------------
    def effective_bandwidth(self, pattern: AccessPattern) -> float:
        """Achieved useful bandwidth (B/s) for ``pattern`` on this hierarchy.

        Averages per-level access costs weighted by residency: the time per
        access is ``sum_i f_i * elem / bw_i`` and the useful bandwidth is its
        reciprocal times ``elem``.
        """
        cached = self._bandwidth_cache.get(pattern)
        if cached is not None:
            return cached
        fractions = self._residency(pattern.working_set)
        level_bws = self._level_bandwidths(pattern)
        time_per_byte = 0.0
        for frac, level_bw in zip(fractions, level_bws):
            if frac <= 0.0:
                continue
            time_per_byte += frac / level_bw
        bw = 1.0 / time_per_byte
        self._bandwidth_cache[pattern] = bw
        return bw

    def effective_bandwidth_sweep(
        self, pattern: AccessPattern, working_sets: np.ndarray
    ) -> np.ndarray:
        """Achieved bandwidth of ``pattern``'s *shape* at many working sets.

        Per-level pricing depends only on the pattern's shape (stride,
        dependence, element size) — never on the working set — so a sweep
        prices the levels once and varies only the residency mix.  Each
        element is bit-identical to :meth:`effective_bandwidth` on the same
        shape with that working set (the per-level accumulation runs in the
        same order, and levels with zero residency contribute an exact
        ``0.0``).  This is the MAPS probe's hot path.
        """
        ws = np.asarray(working_sets, dtype=float)
        if ws.size and float(np.min(ws)) <= 0.0:
            raise ValueError("working sets must be > 0")
        level_bws = self._level_bandwidths(pattern)
        time_per_byte = np.zeros(ws.shape)
        prev = np.zeros(ws.shape)
        last = len(self.levels) - 1
        for i, (level, level_bw) in enumerate(zip(self.levels, level_bws)):
            if i == last:
                cum = np.ones(ws.shape)
            else:
                cum = np.minimum(1.0, level.size_bytes / ws)
            frac = np.maximum(cum - prev, 0.0)
            prev = cum
            time_per_byte = time_per_byte + frac / level_bw
        return 1.0 / time_per_byte

    def residency_matrix(self, working_sets: np.ndarray) -> np.ndarray:
        """Row-per-working-set residency fractions (``(n_ws, n_levels)``).

        Vectorised :meth:`residency_fractions`; rows are bit-identical.
        """
        ws = np.asarray(working_sets, dtype=float)
        if ws.size and float(np.min(ws)) <= 0.0:
            raise ValueError("working sets must be > 0")
        out = np.empty((ws.shape[0], len(self.levels)))
        prev = np.zeros(ws.shape)
        last = len(self.levels) - 1
        for i, level in enumerate(self.levels):
            if i == last:
                cum = np.ones(ws.shape)
            else:
                cum = np.minimum(1.0, level.size_bytes / ws)
            out[:, i] = np.maximum(cum - prev, 0.0)
            prev = cum
        return out

    def level_bandwidth_row(self, pattern: AccessPattern) -> tuple[float, ...]:
        """Per-level useful bandwidths for ``pattern``'s shape (cached)."""
        return self._level_bandwidths(pattern)

    def level_bandwidth_matrix(self, patterns: Sequence[AccessPattern]) -> np.ndarray:
        """``(n_patterns, n_levels)`` useful bandwidths for many shapes at once.

        Row ``i`` is bit-identical to ``level_bandwidth_row(patterns[i])``:
        every branch of :meth:`level_useful_bandwidth` runs the same
        operations in the same order, just elementwise across the stack
        (the executor prices all (stride class, dependence) splits of an
        application's blocks in one call here).
        """
        levels = self.levels
        lat = np.array([lvl.latency for lvl in levels])
        mlp = np.array([float(lvl.mlp) for lvl in levels])
        bw = np.array([lvl.bandwidth for lvl in levels])
        line = np.array([float(lvl.line_bytes) for lvl in levels])
        dsf = np.array([lvl.dependent_stream_factor for lvl in levels])

        elem = np.array([float(p.element_bytes) for p in patterns])[:, None]
        dep = np.array([p.dependent for p in patterns])[:, None]
        cf = np.array([p.chase_fraction for p in patterns])[:, None]
        rand = np.array([p.stride is StrideClass.RANDOM for p in patterns])[:, None]
        # Random patterns have no stride_bytes; feed a placeholder through
        # the strided branch — np.where discards those lanes.
        sb = np.array(
            [
                float(
                    p.element_bytes
                    if p.stride is StrideClass.RANDOM
                    else p.stride_bytes
                )
                for p in patterns
            ]
        )[:, None]

        chase = elem / lat
        overlap = np.minimum(elem * mlp / lat, bw)
        waste = np.minimum(sb, line) / elem
        strided = bw / waste
        t_per_byte = (1.0 - cf) / (strided * dsf)
        t_per_byte = t_per_byte + cf * lat / elem
        dep_strided = 1.0 / t_per_byte
        return np.where(
            rand,
            np.where(dep, chase, overlap),
            np.where(dep, dep_strided, strided),
        )

    def access_time(self, pattern: AccessPattern, total_bytes: float) -> float:
        """Seconds to consume ``total_bytes`` of useful data under ``pattern``."""
        if total_bytes < 0:
            raise ValueError(f"total_bytes must be >= 0, got {total_bytes!r}")
        if total_bytes == 0:
            return 0.0
        return total_bytes / self.effective_bandwidth(pattern)

    # ------------------------------------------------------------------
    # introspection helpers (used by probes and reports)
    # ------------------------------------------------------------------
    def serving_level(self, working_set: float) -> MemoryLevelSpec:
        """The level that serves the majority of references for ``working_set``."""
        fractions = self.residency_fractions(working_set)
        return self.levels[int(np.argmax(fractions))]

    def level_names(self) -> list[str]:
        """Names of the hierarchy levels, nearest first."""
        return [lvl.name for lvl in self.levels]
