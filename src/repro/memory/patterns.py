"""Access-pattern descriptors.

An :class:`AccessPattern` is the lingua franca of the reproduction: probes
describe their synthetic kernels with it, the ground-truth executor
describes each basic block's memory behaviour with it, and the analytic
hierarchy model (:mod:`repro.memory.hierarchy`) prices it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.validation import check_fraction, check_positive

__all__ = ["StrideClass", "AccessPattern", "StrideHistogram"]

#: Largest stride (in elements) still classified as "short"; beyond this the
#: EMPS-style detector of the paper bins a reference as random.
SHORT_STRIDE_MAX = 8


class StrideClass(enum.Enum):
    """Stride classification used by the paper's MetaSim stride detector."""

    UNIT = "unit"  #: stride-1 (and stride -1) streaming access
    SHORT = "short"  #: non-unit strides up to ±8 elements
    RANDOM = "random"  #: everything else

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AccessPattern:
    """One homogeneous memory access pattern.

    Attributes
    ----------
    working_set:
        Bytes of distinct data the kernel cycles over.
    stride:
        Stride classification.
    stride_elems:
        Numeric stride in elements; only meaningful for
        :attr:`StrideClass.SHORT` (unit patterns are stride 1 by definition
        and random patterns have no stride).
    element_bytes:
        Bytes consumed per access (8 for double precision).
    dependent:
        True when each access depends on the previous one (pointer chase /
        loop-carried dependence), serialising the memory system.
    chase_fraction:
        For *dependent strided* access only: the share of dependent accesses
        that form full-latency pointer chases, versus dependence the
        hardware prefetcher can still stream behind.  ENHANCED MAPS induces
        a fixed mix (0.5); real application dependence chains vary — that
        mismatch is a residual error source for Metric #9.
    """

    working_set: float
    stride: StrideClass = StrideClass.UNIT
    stride_elems: int = 4
    element_bytes: int = 8
    dependent: bool = False
    chase_fraction: float = 0.5

    def __post_init__(self) -> None:
        check_positive("working_set", self.working_set)
        check_positive("element_bytes", self.element_bytes)
        check_fraction("chase_fraction", self.chase_fraction)
        if self.stride is StrideClass.SHORT:
            if not 2 <= self.stride_elems <= SHORT_STRIDE_MAX:
                raise ValueError(
                    "short-stride pattern requires 2 <= stride_elems <= "
                    f"{SHORT_STRIDE_MAX}, got {self.stride_elems}"
                )

    @property
    def stride_bytes(self) -> int:
        """Byte distance between consecutive accesses (unit/short only)."""
        if self.stride is StrideClass.UNIT:
            return self.element_bytes
        if self.stride is StrideClass.SHORT:
            return self.stride_elems * self.element_bytes
        raise ValueError("random patterns have no defined stride_bytes")


@dataclass(frozen=True)
class StrideHistogram:
    """Fractions of memory references per stride class.

    This is the "memory signature" the tracer extracts per basic block and
    the convolver consumes.  Fractions are normalised to sum to 1.

    Attributes
    ----------
    unit, short, random:
        Fractions of references in each class.
    short_stride_elems:
        Representative stride (elements) for the short-stride bin.
    """

    unit: float
    short: float
    random: float
    short_stride_elems: int = 4

    def __post_init__(self) -> None:
        check_fraction("unit", self.unit)
        check_fraction("short", self.short)
        check_fraction("random", self.random)
        total = self.unit + self.short + self.random
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"stride fractions must sum to 1, got {total!r}")

    @classmethod
    def normalised(
        cls,
        unit: float,
        short: float,
        random: float,
        short_stride_elems: int = 4,
    ) -> "StrideHistogram":
        """Build a histogram from unnormalised non-negative weights."""
        total = unit + short + random
        if total <= 0:
            raise ValueError("at least one stride weight must be positive")
        return cls(
            unit=unit / total,
            short=short / total,
            random=random / total,
            short_stride_elems=short_stride_elems,
        )

    @property
    def strided(self) -> float:
        """Combined fraction treated as 'strided' by Metrics #5/#6 (unit+short)."""
        return self.unit + self.short

    def fraction(self, stride: StrideClass) -> float:
        """Fraction of references in ``stride``."""
        return {
            StrideClass.UNIT: self.unit,
            StrideClass.SHORT: self.short,
            StrideClass.RANDOM: self.random,
        }[stride]
