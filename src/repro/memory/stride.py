"""EMPS-style stride detector.

The paper's MetaSim Tracer "parses the address stream with a stride
detector, thus determining what portion of memory references are stride-1,
non-unit short strides (up to stride-8), and random stride".  This module
implements that classification for a sampled address stream, plus a
working-set estimate, producing the per-block memory signature the
convolver's Metrics #6-#9 consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.memory.patterns import SHORT_STRIDE_MAX, StrideHistogram

__all__ = ["StrideDetector", "StrideReport"]


@dataclass(frozen=True)
class StrideReport:
    """Outcome of stride detection over one sampled reference stream.

    Attributes
    ----------
    histogram:
        Fractions of references classified unit / short / random.
    working_set_bytes:
        Estimated bytes of distinct data touched (distinct lines x line size).
    references:
        Number of references analysed.
    """

    histogram: StrideHistogram
    working_set_bytes: float
    references: int


class StrideDetector:
    """Classify references of an address stream by successive stride.

    Parameters
    ----------
    element_bytes:
        Element size used to convert byte deltas to element strides.
    short_max:
        Largest |stride| (elements) still binned as short (paper: 8).
    line_bytes:
        Granularity for the working-set estimate.
    """

    def __init__(
        self,
        element_bytes: int = 8,
        short_max: int = SHORT_STRIDE_MAX,
        line_bytes: int = 64,
    ):
        if element_bytes <= 0:
            raise ValueError(f"element_bytes must be > 0, got {element_bytes}")
        if short_max < 2:
            raise ValueError(f"short_max must be >= 2, got {short_max}")
        if line_bytes <= 0:
            raise ValueError(f"line_bytes must be > 0, got {line_bytes}")
        self.element_bytes = element_bytes
        self.short_max = short_max
        self.line_bytes = line_bytes

    def classify(
        self, addresses: np.ndarray, *, working_set: bool = True
    ) -> StrideReport:
        """Analyse one reference stream (addresses of a single load/store group).

        The first reference of a stream has no predecessor and inherits the
        classification of the second, matching how per-instruction stride
        detectors warm up.  ``working_set=False`` skips the distinct-line
        count (the costliest part) and reports ``nan`` — for callers that
        estimate working sets another way.
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        n = int(addrs.shape[0])
        if n == 0:
            raise ValueError("cannot classify an empty address stream")
        if working_set:
            lines = np.unique(addrs // self.line_bytes)
            ws = float(lines.size * self.line_bytes)
        else:
            ws = float("nan")
        if n == 1:
            hist = StrideHistogram(unit=1.0, short=0.0, random=0.0)
            return StrideReport(histogram=hist, working_set_bytes=ws, references=1)

        deltas = addrs[1:] - addrs[:-1]  # np.diff minus the wrapper overhead
        # Classification happens in the integer byte domain: an element
        # stride |d/e| is exactly 1 (or within [2, short_max]) iff the byte
        # delta |d| is exactly e (or within [2e, short_max*e]) — integer
        # comparisons give bit-for-bit the classification the float
        # element-stride domain would, without a float division per delta.
        eb = self.element_bytes
        abs_deltas = np.abs(deltas)
        # wrap-around jumps of a cyclic sweep look like one huge stride; they
        # are a fixed, detectable artifact and real detectors ignore them.
        unit = int(np.count_nonzero(abs_deltas == eb))
        short_mask = (abs_deltas >= 2 * eb) & (abs_deltas <= self.short_max * eb)
        short = int(np.count_nonzero(short_mask))
        random = deltas.size - unit - short
        hist = StrideHistogram.normalised(
            unit=float(unit),
            short=float(short),
            random=float(random),
            short_stride_elems=self._dominant_short_stride(
                abs_deltas, short_mask, short
            ),
        )
        return StrideReport(histogram=hist, working_set_bytes=ws, references=n)

    def _dominant_short_stride(
        self, abs_deltas: np.ndarray, short_mask: np.ndarray, short: int
    ) -> int:
        if short == 0:
            return 4
        # Truncated element strides, as the float path's astype produced
        # (byte deltas are non-negative here, so floor == trunc).
        values = (abs_deltas[short_mask] / self.element_bytes).astype(np.int64)
        counts = np.bincount(values, minlength=self.short_max + 1)
        return int(np.argmax(counts))
