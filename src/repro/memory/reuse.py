"""Machine-independent reuse-distance (stack-distance) cache engine.

An LRU reuse-distance profile is a property of an address stream *alone*:
for each reference, the stack distance is the number of distinct cache
lines touched since the previous reference to the same line (infinite for
first touches).  Mattson's classic result makes the profile universal —
a fully-associative LRU cache of ``C`` lines hits exactly the references
with stack distance ``< C`` — so one pass over a stream prices caches of
*every* capacity in O(levels), where the set-associative simulator in
:mod:`repro.memory.cache` must replay the whole stream once per geometry.

The histogram is computed without any per-reference Python loop.  With
``p[i]`` the previous occurrence of reference ``i``'s line and ``nxt[j]``
the next occurrence of ``j``'s line, the stack distance is the count of
positions ``p[i] < j < i`` whose line is not referenced again before ``i``
(``nxt[j] > i`` — each distinct line in the window has exactly one such
*last* occurrence).  Those range-count-greater queries are answered for all
references simultaneously by a wavelet matrix over ``nxt``: construction is
one stable partition per bit level and every query descends the same
``O(log n)`` levels as vectorised gathers (NumPy tree-counting; the only
Python loop is over the ~log2(n) bit levels).

Set associativity is corrected analytically: with ``S`` sets, the ``d``
intervening distinct lines of a reference scatter over sets independently
and uniformly, so the reference survives a ``W``-way set iff fewer than
``W`` of them land in its own set — a Binomial(d, 1/S) tail (the classic
Smith/Hill conflict model).  ``n_sets == 1`` degenerates to the exact
fully-associative law.  The model's error against exact simulation is small
for streams without pathological set alignment (see DESIGN.md §5c for the
bound; the property tests in ``tests/test_memory_reuse.py`` pin it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReuseProfile", "reuse_distances", "reuse_profile"]


def _occurrence_links(lines: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Previous/next occurrence index of each position's line.

    ``prev[i] == -1`` marks a first touch; ``nxt[j] == n`` marks a last one.
    One stable argsort groups equal lines with positions ascending, so the
    links are simple shifted gathers within each group.
    """
    n = lines.shape[0]
    order = np.argsort(lines, kind="stable")
    grouped = lines[order]
    same = np.empty(n, dtype=bool)
    same[0] = False
    np.not_equal(grouped[1:], grouped[:-1], out=same[1:])
    same = ~same  # same[k]: order[k] shares its line with order[k-1]
    prev = np.full(n, -1, dtype=np.int64)
    nxt = np.full(n, n, dtype=np.int64)
    prev[order[1:][same[1:]]] = order[:-1][same[1:]]
    nxt[order[:-1][same[1:]]] = order[1:][same[1:]]
    return prev, nxt


def _count_greater(values: np.ndarray, left: np.ndarray, right: np.ndarray,
                   thresholds: np.ndarray) -> np.ndarray:
    """For each query q: ``#{ j in [left[q], right[q]) : values[j] > thresholds[q] }``.

    Wavelet-matrix range counting: values are stably partitioned by one bit
    per level (most significant first); every query interval is remapped
    through the partition with prefix-sum ranks, and all queries advance one
    level per iteration as pure array ops.
    """
    n = int(values.shape[0])
    nbits = max(int(values.max()).bit_length(), 1) if n else 1
    count = np.zeros(left.shape[0], dtype=np.int64)
    l, r = left.astype(np.int64), right.astype(np.int64)
    v = values
    for lev in range(nbits - 1, -1, -1):
        bits = (v >> lev) & 1
        rank0 = np.zeros(v.shape[0] + 1, dtype=np.int64)
        np.cumsum(bits == 0, out=rank0[1:])
        zeros = rank0[-1]
        l0, r0 = rank0[l], rank0[r]
        tbit = (thresholds >> lev) & 1
        go_left = tbit == 0
        # threshold bit 0: every in-range value with bit 1 is greater.
        count += np.where(go_left, (r - l) - (r0 - l0), 0)
        l = np.where(go_left, l0, zeros + (l - l0))
        r = np.where(go_left, r0, zeros + (r - r0))
        v = np.concatenate([v[bits == 0], v[bits == 1]])
    return count


def reuse_distances(addresses: np.ndarray, line_bytes: int = 64) -> np.ndarray:
    """Exact LRU stack distance of every reference, at line granularity.

    The distance is the number of *distinct other* lines referenced since
    the previous access to the same line; first touches get ``-1`` (read:
    infinite — a cold miss at any capacity).  A fully-associative LRU cache
    of ``C`` lines hits reference ``i`` iff ``0 <= d[i] < C``.
    """
    if line_bytes <= 0:
        raise ValueError(f"line_bytes must be > 0, got {line_bytes}")
    addrs = np.asarray(addresses, dtype=np.int64)
    n = int(addrs.shape[0])
    if n == 0:
        return np.empty(0, dtype=np.int64)
    lines = addrs // line_bytes
    prev, nxt = _occurrence_links(lines)
    out = np.full(n, -1, dtype=np.int64)
    (warm,) = np.nonzero(prev >= 0)
    if warm.size:
        out[warm] = _count_greater(nxt, prev[warm] + 1, warm, warm)
    return out


@dataclass(frozen=True)
class ReuseProfile:
    """Stack-distance histogram of one address stream.

    Attributes
    ----------
    distances:
        Sorted distinct finite stack distances observed.
    counts:
        References at each distance (aligned with ``distances``).
    cold:
        First-touch references (infinite distance; miss at any capacity).
    total:
        Total references profiled.
    line_bytes:
        Line granularity the profile was taken at.
    """

    distances: np.ndarray
    counts: np.ndarray
    cold: int
    total: int
    line_bytes: int

    def hits(self, capacity_lines: int) -> int:
        """Exact hit count in a fully-associative LRU cache of ``capacity_lines``."""
        if capacity_lines <= 0:
            return 0
        idx = int(np.searchsorted(self.distances, capacity_lines, side="left"))
        return int(np.sum(self.counts[:idx]))

    def hit_fraction(self, capacity_lines: int) -> float:
        """Fully-associative LRU hit rate at ``capacity_lines`` lines."""
        return self.hits(capacity_lines) / self.total if self.total else 0.0

    def assoc_hit_fraction(self, n_sets: int, ways: int) -> float:
        """Expected hit rate of an ``n_sets`` x ``ways`` set-associative LRU cache.

        Exact (Mattson) for ``n_sets == 1``; otherwise the binomial conflict
        model: a reference with ``d`` intervening distinct lines hits iff
        fewer than ``ways`` of them map to its set, each independently with
        probability ``1/n_sets``.
        """
        if n_sets <= 0 or ways <= 0:
            raise ValueError(f"need positive geometry, got {n_sets} sets x {ways} ways")
        if self.total == 0:
            return 0.0
        if n_sets == 1:
            return self.hit_fraction(ways)
        d = self.distances.astype(float)
        p = 1.0 / n_sets
        # Binomial(d, p) CDF at ways-1 via the iterative term recurrence:
        # C(d, k) p^k (1-p)^(d-k); term goes (and stays) zero once k > d.
        term = np.exp(d * np.log1p(-p))
        cdf = term.copy()
        ratio = p / (1.0 - p)
        for k in range(1, ways):
            term = term * ((d - k + 1.0) / k) * ratio
            np.maximum(term, 0.0, out=term)
            cdf += term
        np.clip(cdf, 0.0, 1.0, out=cdf)
        return float(np.sum(self.counts * cdf)) / self.total

    def hit_fractions(self, capacities_lines: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`hit_fraction` over an array of capacities."""
        caps = np.asarray(capacities_lines)
        if self.total == 0:
            return np.zeros(caps.shape)
        cum = np.concatenate([[0], np.cumsum(self.counts)])
        idx = np.searchsorted(self.distances, caps, side="left")
        return cum[idx] / self.total


def reuse_profile(addresses: np.ndarray, line_bytes: int = 64) -> ReuseProfile:
    """Profile one address stream: one vectorised pass, usable for any cache."""
    d = reuse_distances(addresses, line_bytes)
    finite = d[d >= 0]
    distances, counts = np.unique(finite, return_counts=True)
    return ReuseProfile(
        distances=distances,
        counts=counts,
        cold=int(d.shape[0] - finite.shape[0]),
        total=int(d.shape[0]),
        line_bytes=int(line_bytes),
    )
