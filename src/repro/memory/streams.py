"""Synthetic address-stream generators.

These produce the reference streams that MetaSim Tracer samples per basic
block and that the MAPS/GUPS-style probes conceptually replay.  All
generators are deterministic given an explicit NumPy generator (see
:func:`repro.util.rng.stable_rng`).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = ["strided_addresses", "random_addresses", "pointer_chase_addresses"]


def _ws_elements(working_set: float, element_bytes: int) -> int:
    n = int(working_set) // int(element_bytes)
    if n < 1:
        raise ValueError(
            f"working_set {working_set} too small for element_bytes {element_bytes}"
        )
    return n


def strided_addresses(
    n: int,
    stride_elems: int = 1,
    element_bytes: int = 8,
    working_set: float = 1 << 20,
    base: int = 0,
) -> np.ndarray:
    """Addresses of a strided sweep wrapping within ``working_set`` bytes.

    Consecutive references advance by ``stride_elems`` elements, wrapping at
    the working-set boundary (as a loop re-traversing an array does).

    Parameters
    ----------
    n:
        Number of references to generate.
    stride_elems:
        Stride between consecutive references, in elements (may be 1).
    element_bytes:
        Element size in bytes.
    working_set:
        Bytes of distinct data the sweep cycles over.
    base:
        Base address of the array.
    """
    check_positive("n", n)
    check_positive("stride_elems", stride_elems)
    ws = _ws_elements(working_set, element_bytes)
    idx = (np.arange(n, dtype=np.int64) * int(stride_elems)) % ws
    return base + idx * int(element_bytes)


def random_addresses(
    n: int,
    working_set: float,
    rng: np.random.Generator,
    element_bytes: int = 8,
    base: int = 0,
) -> np.ndarray:
    """Uniformly random element-aligned addresses within ``working_set`` bytes.

    Models GUPS-style independent random access (no inter-reference
    dependence; the hardware may overlap the misses).
    """
    check_positive("n", n)
    ws = _ws_elements(working_set, element_bytes)
    idx = rng.integers(0, ws, size=int(n), dtype=np.int64)
    return base + idx * int(element_bytes)


def _sample_distinct(rng: np.random.Generator, ws: int, m: int) -> np.ndarray:
    """``m`` distinct element indices in ``[0, ws)``, in random order.

    Draws uniform batches and keeps first appearances until ``m`` distinct
    values are collected — deterministic for a given generator state, and
    O(m) memory instead of the O(ws) a full permutation needs.  Callers
    guarantee ``ws > 2 * m`` so each batch loses fewer than half its draws
    to collisions and the loop converges in a couple of rounds.
    """
    chosen = np.empty(0, dtype=np.int64)
    need = m
    while True:
        draw = rng.integers(0, ws, size=need + (need >> 3) + 16, dtype=np.int64)
        cat = np.concatenate([chosen, draw])
        _, first = np.unique(cat, return_index=True)
        first.sort()
        chosen = cat[first]
        if chosen.size >= m:
            return chosen[:m]
        need = m - chosen.size


def pointer_chase_addresses(
    n: int,
    working_set: float,
    rng: np.random.Generator,
    element_bytes: int = 8,
    base: int = 0,
) -> np.ndarray:
    """Addresses of a pointer chase over a random cycle of distinct elements.

    Each address is determined by the value loaded at the previous one, so
    accesses are fully serialised — the pattern ENHANCED MAPS uses to measure
    dependent random access.

    When the working set is at most twice the sample size, the cycle is a
    full Hamiltonian cycle over every element: with ``nxt[perm[i]] =
    perm[i+1]``, chasing from ``perm[0]`` visits ``perm[i % ws]`` at step
    ``i``, so the chase is a single O(n) gather from the permutation (no
    per-step loop, and no ``nxt`` table at all).  For working sets far larger
    than the sample, permuting every element just to emit ``n`` addresses
    would cost O(ws) time and memory; instead the cycle is bounded to ``n``
    distinct uniformly-drawn elements — statistically the same stream (the
    prefix of a random permutation *is* a uniform distinct sample in random
    order) at O(n) cost, still fully deterministic per seed.
    """
    check_positive("n", n)
    n = int(n)
    ws = _ws_elements(working_set, element_bytes)
    if ws <= 2 * n:
        # Exact Hamiltonian cycle; the gather below reproduces the reference
        # chase loop bit-for-bit (same generator consumption, same stream).
        perm = rng.permutation(ws).astype(np.int64)
        out = perm[np.arange(n, dtype=np.int64) % ws]
    else:
        out = _sample_distinct(rng, ws, n)
    return base + out * int(element_bytes)
