"""Synthetic address-stream generators.

These produce the reference streams that MetaSim Tracer samples per basic
block and that the MAPS/GUPS-style probes conceptually replay.  All
generators are deterministic given an explicit NumPy generator (see
:func:`repro.util.rng.stable_rng`).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = ["strided_addresses", "random_addresses", "pointer_chase_addresses"]


def _ws_elements(working_set: float, element_bytes: int) -> int:
    n = int(working_set) // int(element_bytes)
    if n < 1:
        raise ValueError(
            f"working_set {working_set} too small for element_bytes {element_bytes}"
        )
    return n


def strided_addresses(
    n: int,
    stride_elems: int = 1,
    element_bytes: int = 8,
    working_set: float = 1 << 20,
    base: int = 0,
) -> np.ndarray:
    """Addresses of a strided sweep wrapping within ``working_set`` bytes.

    Consecutive references advance by ``stride_elems`` elements, wrapping at
    the working-set boundary (as a loop re-traversing an array does).

    Parameters
    ----------
    n:
        Number of references to generate.
    stride_elems:
        Stride between consecutive references, in elements (may be 1).
    element_bytes:
        Element size in bytes.
    working_set:
        Bytes of distinct data the sweep cycles over.
    base:
        Base address of the array.
    """
    check_positive("n", n)
    check_positive("stride_elems", stride_elems)
    ws = _ws_elements(working_set, element_bytes)
    idx = (np.arange(n, dtype=np.int64) * int(stride_elems)) % ws
    return base + idx * int(element_bytes)


def random_addresses(
    n: int,
    working_set: float,
    rng: np.random.Generator,
    element_bytes: int = 8,
    base: int = 0,
) -> np.ndarray:
    """Uniformly random element-aligned addresses within ``working_set`` bytes.

    Models GUPS-style independent random access (no inter-reference
    dependence; the hardware may overlap the misses).
    """
    check_positive("n", n)
    ws = _ws_elements(working_set, element_bytes)
    idx = rng.integers(0, ws, size=int(n), dtype=np.int64)
    return base + idx * int(element_bytes)


def pointer_chase_addresses(
    n: int,
    working_set: float,
    rng: np.random.Generator,
    element_bytes: int = 8,
    base: int = 0,
) -> np.ndarray:
    """Addresses of a pointer chase over a random Hamiltonian cycle.

    Each address is determined by the value loaded at the previous one, so
    accesses are fully serialised — the pattern ENHANCED MAPS uses to measure
    dependent random access.

    The cycle covers every element of the working set exactly once before
    repeating, eliminating short revisit artifacts.
    """
    check_positive("n", n)
    ws = _ws_elements(working_set, element_bytes)
    perm = rng.permutation(ws).astype(np.int64)
    # next[perm[i]] = perm[i+1] builds one big cycle through all elements.
    nxt = np.empty(ws, dtype=np.int64)
    nxt[perm] = np.roll(perm, -1)
    out = np.empty(int(n), dtype=np.int64)
    cur = int(perm[0])
    for i in range(int(n)):
        out[i] = cur
        cur = int(nxt[cur])
    return base + out * int(element_bytes)
