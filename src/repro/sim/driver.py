"""The episode driver: run a fault schedule against the real stack.

FoundationDB-style deterministic simulation, scaled to this codebase: an
episode builds *real* objects — :class:`~repro.serve.service.PredictionService`
with its breakers and admission queue, :class:`~repro.study.runner.run_study`
with its checkpoint and trace store, :class:`~repro.serve.coalesce.SingleFlight`
— wires them all to one :class:`~repro.util.clock.VirtualClock`, executes a
:class:`~repro.sim.schedule.Schedule`'s fault timeline against them, and
checks the :mod:`repro.sim.invariants` catalog throughout.  Sleeps advance
virtual time instead of blocking and compute takes zero virtual time, so an
episode that would wall-wait through ~60 s of stalls, breaker cooldowns and
retry backoffs finishes in milliseconds — and its transcript is a pure
function of the schedule, so the same seed produces byte-identical episodes
in any process.

The transcript is the episode's observable behaviour (responses served,
typed errors raised, breaker transitions, study outcomes) serialised
canonically; :attr:`EpisodeResult.digest` hashes it, which is what the
determinism pin and the regression corpus compare.

``canary`` re-introduces a known-fixed bug at the driver boundary (never
in production code) so the suite can prove the harness *detects* — see
:data:`CANARIES`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import ReproError, StudyAbortedError
from repro.sim.invariants import (
    InvariantViolation,
    RecordingBreaker,
    check_breaker_transitions,
    check_error,
    check_journal,
    check_recovery,
    check_response,
    check_resume_identical,
)
from repro.sim.schedule import (
    SCENARIO_NAMES,
    CorruptStoreEntry,
    CrashStage,
    DropFollower,
    KillStudy,
    Schedule,
    SkewClock,
    StallStage,
    TruncateLogTail,
)
from repro.util.clock import VirtualClock, VirtualTimeLimitError
from repro.util.faults import FaultPlan
from repro.util.rng import stable_rng

__all__ = ["EpisodeResult", "ScheduleFaults", "run_episode", "CANARIES"]

#: Virtual seconds past the schedule horizon an episode may run before the
#: clock's deadlock guard trips (covers recovery advances + grown cooldowns).
HORIZON_MARGIN_SECONDS = 300.0

#: Virtual seconds between driven requests in the serve scenario.
REQUEST_PACE_SECONDS = 0.25

#: Known-fixed bugs the driver can re-introduce (at its own boundary; the
#: production code is untouched) to prove the harness still catches them.
#: ``silent-degrade`` re-creates the pre-PR-4 contract violation where a
#: fallback answer was served without the ``degraded`` flag.
CANARIES = ("silent-degrade",)

#: Fault-free golden study results, keyed by config identity — computed
#: once per process and shared by every study-resume episode.
_GOLDEN_CACHE: dict[str, object] = {}


@dataclass
class EpisodeResult:
    """Everything one simulated episode produced."""

    scenario: str
    seed: int
    schedule: Schedule
    transcript: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    virtual_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def digest(self) -> str:
        """Canonical hash of (schedule, transcript) — the determinism pin.

        Wall timing is deliberately excluded: two runs of one seed must
        produce the same digest on any machine, at any load.
        """
        canonical = json.dumps(
            {
                "scenario": self.scenario,
                "seed": self.seed,
                "schedule": self.schedule.to_doc(),
                "transcript": self.transcript,
                "violations": self.violations,
            },
            sort_keys=True,
        )
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()

    def to_doc(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "digest": self.digest,
            "violations": list(self.violations),
            "virtual_seconds": round(self.virtual_seconds, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "events": len(self.schedule.events),
            "transcript_entries": len(self.transcript),
        }


class ScheduleFaults:
    """A :class:`~repro.util.faults.FaultPlan`-shaped timeline adapter.

    The service's :class:`~repro.engine.middleware.FaultMiddleware` asks
    ``should_stall(label, call)`` / ``should_crash(label, call)`` per
    stage call; this adapter answers from the schedule instead of from
    seeded Bernoulli draws: a :class:`StallStage`/:class:`CrashStage`
    event fires on the *first* matching stage call at or after its
    ``at`` instant, exactly once.  Deterministic because the driver runs
    the service single-threaded on the episode clock.
    """

    #: FaultPlan-protocol fields the store/runner may consult.
    corrupt_rate = 0.0
    abort_after = None

    def __init__(self, schedule: Schedule, clock: VirtualClock):
        self._clock = clock
        self._stalls = [e for e in schedule.events if isinstance(e, StallStage)]
        self._crashes = [e for e in schedule.events if isinstance(e, CrashStage)]
        self.stall_seconds = 0.0  # set per fired stall event
        self.fired: list[dict] = []  # transcript: which events actually hit

    def _take(self, pending: list, stage: str):
        now = self._clock.monotonic()
        for event in pending:
            if event.at <= now and event.stage == stage:
                pending.remove(event)
                self.fired.append({"t": round(now, 6), **event.to_doc()})
                return event
        return None

    def exhausted(self) -> bool:
        """Whether every stage-fault event has fired."""
        return not self._stalls and not self._crashes

    # -- FaultPlan protocol -------------------------------------------------
    def should_stall(self, label: str, attempt: int) -> bool:
        event = self._take(self._stalls, label.rpartition(":")[2])
        if event is None:
            return False
        self.stall_seconds = event.seconds
        return True

    def should_crash(self, label: str, attempt: int) -> bool:
        return self._take(self._crashes, label.rpartition(":")[2]) is not None

    def should_corrupt(self, *key) -> bool:
        return False


def _apply_canary(response, canary: str | None):
    """Re-introduce a known-fixed bug on the response path (tests only)."""
    if canary == "silent-degrade" and response.degraded:
        return dataclasses.replace(response, degraded=False)
    return response


# ---------------------------------------------------------------------------
# scenario: serve-recovery
# ---------------------------------------------------------------------------


def _run_serve_recovery(
    schedule: Schedule, clock: VirtualClock, transcript: list, canary: str | None
) -> None:
    """serve_chaos's single-process phases, on virtual time.

    Drives a paced stream of full-fidelity (metric 9) requests through a
    service whose stage faults, breaker cooldowns and deadlines all run
    on the episode clock; after the schedule is exhausted, advances past
    every cooldown and asserts full-fidelity recovery.
    """
    from repro.serve.admission import AdmissionQueue
    from repro.serve.breaker import BreakerBoard
    from repro.serve.service import STAGES, PredictionService

    breaker_opts = dict(
        failure_threshold=1, window_seconds=30.0, cooldown_seconds=0.5
    )
    transitions: list[tuple[str, str, str]] = []
    board = BreakerBoard(STAGES, clock=clock, **breaker_opts)
    for stage in STAGES:
        board.breakers[stage] = RecordingBreaker(
            stage, clock=clock, transitions=transitions, **breaker_opts
        )
    with tempfile.TemporaryDirectory(prefix="repro-sim-serve-") as tmp:
        service = PredictionService(
            noise=False,
            sample_size=64,
            default_deadline=5.0,
            stage_timeouts={"probe": 0.05, "trace": 0.05, "convolve": 0.05},
            breakers=board,
            admission=AdmissionQueue(clock=clock),
            events=Path(tmp) / "events",
            clock=clock,
        )
        faults = ScheduleFaults(schedule, clock)
        service.faults = faults

        rng = stable_rng("sim-requests", schedule.seed, schedule.scenario)
        apps = ("AVUS-standard", "HYCOM-standard", "RFCTH-standard")
        machines = ("ARL_Xeon", "ARL_Opteron", "NAVO_655")
        requested = 9

        def drive_one(phase: str) -> None:
            app = apps[int(rng.integers(0, len(apps)))]
            cpus = int(rng.integers(1, 5)) * 16
            machine = machines[int(rng.integers(0, len(machines)))]
            entry = {
                "phase": phase,
                "t": round(clock.monotonic(), 6),
                "application": app,
                "cpus": cpus,
                "machine": machine,
            }
            try:
                response = service.predict(app, cpus, machine, requested)
            except ReproError as exc:
                check_error(exc)  # typed: fine, record the class
                entry.update(error=type(exc).__name__)
            except InvariantViolation:
                raise
            except Exception as exc:  # noqa: BLE001 - the 500 invariant
                check_error(exc)
                raise  # unreachable: check_error raised
            else:
                response = _apply_canary(response, canary)
                entry.update(
                    served_metric=response.served_metric,
                    degraded=response.degraded,
                    predicted=round(response.predicted_seconds, 9),
                    latency=round(response.latency_seconds, 6),
                )
                check_response(response, requested)
                if phase == "recovered":
                    check_recovery(response)
            finally:
                transcript.append(entry)
            check_breaker_transitions(transitions)

        # Phase 1: drive requests while the schedule plays out.
        pending_skews = [e for e in schedule.events if isinstance(e, SkewClock)]
        while clock.monotonic() < schedule.horizon or not faults.exhausted():
            now = clock.monotonic()
            for skew in [e for e in pending_skews if e.at <= now]:
                pending_skews.remove(skew)
                faults.fired.append({"t": round(now, 6), **skew.to_doc()})
                clock.advance(skew.seconds)
            drive_one("chaos")
            clock.advance(REQUEST_PACE_SECONDS)

        # Phase 2: faults stop, cooldowns elapse, service must fully heal.
        service.faults = None
        clock.advance(60.0)  # past every backoff-grown cooldown (cap 16 s)
        drive_one("healing")  # half-open probes close the breakers
        drive_one("recovered")
        drive_one("recovered")

        transcript.append(
            {
                "fired": faults.fired,
                "transitions": [list(t) for t in transitions],
                "health": {
                    "requests_total": service.requests_total,
                    "degraded_total": service.degraded_total,
                    "unserved_total": service.unserved_total,
                },
            }
        )
        if service.events is not None:
            service.events.commit()
            check_journal(Path(tmp) / "events")


# ---------------------------------------------------------------------------
# scenario: study-resume
# ---------------------------------------------------------------------------


def _study_config():
    from repro.scenarios import list_applications
    from repro.study.runner import StudyConfig

    return StudyConfig(
        applications=tuple(sorted(list_applications()))[:3],
        systems=("ARL_Opteron", "ARL_Altix"),
        metrics=(1, 5, 9),
        sample_size=64,
        noise=False,
    )


def _golden_records(cfg):
    from repro.study.resilience import config_digest
    from repro.study.runner import run_study

    key = config_digest(cfg)
    if key not in _GOLDEN_CACHE:
        _GOLDEN_CACHE[key] = run_study(cfg)
    return _GOLDEN_CACHE[key].records


def _settle_stores(root: Path) -> None:
    """Drain every live trace-store writer rooted under ``root``.

    The runner constructs its own :class:`~repro.tracing.store.TraceStore`
    objects from the path we pass it, and an aborted run leaves theirs
    with a write-behind backlog.  Settling before applying at-rest damage
    (and before the episode tempdir is deleted) makes the on-disk entry
    set a deterministic function of the schedule and keeps the background
    writer from racing tempdir teardown.
    """
    from repro.tracing.store import _LIVE_STORES

    root = root.resolve()
    for store in list(_LIVE_STORES):
        try:
            if Path(store.root).resolve() == root:
                store.close()
        except OSError:
            pass  # the directory is already gone; nothing left to settle


def _records_digest(records) -> str:
    h = hashlib.blake2b(digest_size=16)
    for record in records:
        h.update(repr(tuple(record)).encode("utf-8"))
        h.update(b"\x1e")
    return h.hexdigest()


def _run_study_resume(
    schedule: Schedule, clock: VirtualClock, transcript: list, canary: str | None
) -> None:
    """study_kill_resume on virtual time, plus at-rest damage.

    Kills the study mid-run (the schedule's :class:`KillStudy` event maps
    onto the fault plan's ``abort_after``), optionally corrupts a store
    entry and/or tears the checkpoint journal's tail while the study is
    "down", then resumes and asserts the result is byte-identical to the
    fault-free golden run and the journal fscks clean.
    """
    from repro.study.runner import run_study

    cfg = _study_config()
    golden = _golden_records(cfg)
    kills = [e for e in schedule.events if isinstance(e, KillStudy)]
    damage = [
        e
        for e in schedule.events
        if isinstance(e, (CorruptStoreEntry, TruncateLogTail))
    ]
    with tempfile.TemporaryDirectory(prefix="repro-sim-study-") as tmp:
        store_dir = Path(tmp) / "store"
        ckpt_dir = Path(tmp) / "checkpoint"
        aborted = 0
        for kill in kills:
            plan = FaultPlan(seed=schedule.seed, abort_after=kill.after_chunks)
            try:
                run_study(
                    cfg,
                    store=store_dir,
                    checkpoint=ckpt_dir,
                    faults=plan,
                    clock=clock,
                )
            except StudyAbortedError:
                aborted += 1
            else:
                # abort_after >= remaining chunks: the run just finished.
                break
        _settle_stores(store_dir)
        applied: list[dict] = []
        for event in damage:
            applied.append(event.to_doc())
            if isinstance(event, CorruptStoreEntry):
                entries = sorted(store_dir.glob("*/*.rpb"))
                if entries:
                    target = entries[event.selector % len(entries)]
                    blob = bytearray(target.read_bytes())
                    if blob:
                        blob[len(blob) // 2] ^= 0x01
                        target.write_bytes(bytes(blob))
            elif isinstance(event, TruncateLogTail):
                segments = sorted(ckpt_dir.glob("events-*.jsonl"))
                if segments:
                    tail = segments[-1]
                    size = tail.stat().st_size
                    with tail.open("rb+") as handle:
                        handle.truncate(max(0, size - event.drop_bytes))
        result = run_study(cfg, store=store_dir, checkpoint=ckpt_dir, clock=clock)
        _settle_stores(store_dir)
        if canary == "silent-degrade" and result.records:
            # The canary targets the serve scenario; in a study schedule it
            # has nothing to falsify, so it is a no-op here by design.
            pass
        check_resume_identical(result.records, golden)
        if result.failures:
            raise InvariantViolation(
                "resume-identical",
                f"resumed study quarantined chunks: {result.failures}",
            )
        if ckpt_dir.exists():
            check_journal(ckpt_dir)
        transcript.append(
            {
                "aborted_runs": aborted,
                "damage": applied,
                "records": len(result.records),
                "records_digest": _records_digest(result.records),
            }
        )


# ---------------------------------------------------------------------------
# scenario: coalesce
# ---------------------------------------------------------------------------


def _run_coalesce(
    schedule: Schedule, clock: VirtualClock, transcript: list, canary: str | None
) -> None:
    """Single-flight coalescing under follower cancellation.

    One leader plus four followers share a flight; each scheduled
    :class:`DropFollower` cancels one follower mid-flight.  Invariants:
    the leader's answer reaches every surviving follower, a cancelled
    follower never poisons the flight, and the next request after the
    flight becomes a fresh leader.
    """
    from repro.serve.coalesce import SingleFlight

    # Follower indices are 1..4 (0 is the leader, which is never dropped).
    drops = sorted(
        {1 + (e.follower % 4) for e in schedule.events if isinstance(e, DropFollower)}
    )

    async def episode() -> dict:
        flight = SingleFlight()
        release = asyncio.Event()

        async def compute():
            await release.wait()
            return 42.0

        async def follow(index: int):
            try:
                result, coalesced = await flight.run("cell", compute)
                return {"follower": index, "result": result, "coalesced": coalesced}
            except asyncio.CancelledError:
                return {"follower": index, "cancelled": True}

        leader = asyncio.ensure_future(follow(0))
        await asyncio.sleep(0)  # leader takes the flight
        followers = [asyncio.ensure_future(follow(i)) for i in range(1, 5)]
        await asyncio.sleep(0)  # followers join it
        for index in drops:
            followers[index - 1].cancel()
        await asyncio.sleep(0)
        release.set()
        outcomes = [await leader] + [await f for f in followers]
        fresh, coalesced = await flight.run("cell", compute_done)
        return {
            "outcomes": outcomes,
            "after": {"result": fresh, "coalesced": coalesced},
            "counters": flight.counters(),
        }

    async def compute_done():
        return 42.0

    report = asyncio.run(episode())
    outcomes = report["outcomes"]
    if outcomes[0].get("result") != 42.0 or outcomes[0].get("coalesced"):
        raise InvariantViolation(
            "coalesce-leader", f"leader outcome corrupted: {outcomes[0]}"
        )
    for outcome in outcomes[1:]:
        index = outcome["follower"]
        if index in drops:
            if not outcome.get("cancelled"):
                raise InvariantViolation(
                    "coalesce-cancel",
                    f"dropped follower {index} still got a result: {outcome}",
                )
        elif outcome.get("result") != 42.0 or not outcome.get("coalesced"):
            raise InvariantViolation(
                "coalesce-share",
                f"surviving follower {index} missed the shared answer: {outcome}",
            )
    if report["after"]["coalesced"] or report["after"]["result"] != 42.0:
        raise InvariantViolation(
            "coalesce-fresh",
            f"request after the flight should be a fresh leader: "
            f"{report['after']}",
        )
    transcript.append(report)


SCENARIOS = {
    "serve-recovery": _run_serve_recovery,
    "study-resume": _run_study_resume,
    "coalesce": _run_coalesce,
}
assert tuple(SCENARIOS) == SCENARIO_NAMES


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def run_episode(
    scenario: str,
    seed: int,
    *,
    schedule: Schedule | None = None,
    canary: str | None = None,
) -> EpisodeResult:
    """Run one episode; never raises on an invariant failure.

    Violations (including virtual-time deadlock and any untyped escape
    from the stack) land in :attr:`EpisodeResult.violations`; callers —
    the CLI sweep, the fuzz tests, the shrinker — branch on
    :attr:`EpisodeResult.ok`.
    """
    if canary is not None and canary not in CANARIES:
        raise ValueError(f"unknown canary {canary!r}; known: {CANARIES}")
    if schedule is None:
        schedule = Schedule.generate(seed, scenario)
    if schedule.scenario != scenario:
        raise ValueError(
            f"schedule is for scenario {schedule.scenario!r}, not {scenario!r}"
        )
    runner = SCENARIOS.get(scenario)
    if runner is None:
        raise ValueError(f"unknown scenario {scenario!r}; known: {SCENARIO_NAMES}")
    clock = VirtualClock(limit=schedule.horizon + HORIZON_MARGIN_SECONDS)
    result = EpisodeResult(scenario=scenario, seed=seed, schedule=schedule)
    start = time.perf_counter()  # wall diagnostics only, never control flow
    try:
        runner(schedule, clock, result.transcript, canary)
    except InvariantViolation as violation:
        result.violations.append(
            {"invariant": violation.invariant, "message": str(violation)}
        )
    except VirtualTimeLimitError as exc:
        result.violations.append({"invariant": "virtual-deadlock", "message": str(exc)})
    except Exception as exc:  # noqa: BLE001 - harness boundary: fold, don't crash
        result.violations.append(
            {
                "invariant": "typed-errors",
                "message": f"untyped {type(exc).__name__} escaped the stack: {exc}",
            }
        )
    result.virtual_seconds = clock.monotonic()
    result.wall_seconds = time.perf_counter() - start
    return result
