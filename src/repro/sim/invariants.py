"""The cross-layer invariant catalog the simulation harness checks.

Each invariant here was pinned individually by an earlier PR's bespoke
chaos test; the harness re-asserts all of them on *every* episode, under
schedules no hand-written test enumerated:

* ``degradation-marked`` — a served response is flagged ``degraded``
  exactly when ``served_metric != requested_metric`` (PR 4's "degraded
  is never silent" contract).
* ``ladder-monotone`` — the rungs a request attempted are strictly
  descending in metric fidelity and everything above the served rung
  failed first (the degradation ladder never climbs back up or skips
  down past a healthy rung silently).
* ``typed-errors`` — every request failure is a
  :class:`~repro.core.errors.ReproError` subclass (the HTTP layer maps
  those to 4xx/503; anything else would be an unhandled 500).
* ``breaker-transition`` — circuit breakers only move along legal edges
  (closed→open, open→half_open, half_open→closed, half_open→open).
* ``journal-fsck`` — after an episode the event-log/checkpoint directory
  replays as a contiguous fsck-clean prefix (damage may cost events, but
  never produces a gap or an undetected corruption).
* ``resume-identical`` — a study resumed through any schedule of kills
  and at-rest damage is byte-identical to the fault-free golden run.
* ``recovery-fidelity`` — once faults stop and cooldowns elapse, the
  service serves full-fidelity answers again (PR 7's recovery phase).
* ``virtual-deadlock`` — the episode finishes before its virtual-time
  horizon (checked by :class:`~repro.util.clock.VirtualClock` itself;
  the driver folds :class:`~repro.util.clock.VirtualTimeLimitError`
  into this invariant).
"""

from __future__ import annotations

from repro.core.errors import ReproError
from repro.events.log import verify_dir
from repro.serve.breaker import CircuitBreaker

__all__ = [
    "InvariantViolation",
    "LEGAL_BREAKER_EDGES",
    "RecordingBreaker",
    "check_response",
    "check_error",
    "check_breaker_transitions",
    "check_journal",
    "check_resume_identical",
    "check_recovery",
]


class InvariantViolation(AssertionError):
    """An episode broke one of the catalog's properties.

    Attributes
    ----------
    invariant:
        The catalog name (``"degradation-marked"``, ...) — the shrinker
        preserves this as the failure signature while minimising.
    """

    def __init__(self, invariant: str, message: str):
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant


#: The breaker state machine's legal edges (see repro.serve.breaker).
LEGAL_BREAKER_EDGES: frozenset[tuple[str, str]] = frozenset(
    {
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "closed"),
        ("half_open", "open"),
    }
)


class RecordingBreaker(CircuitBreaker):
    """A :class:`CircuitBreaker` that journals every state transition.

    The breaker's ``_state`` attribute is shadowed by a property whose
    setter appends ``(stage, from, to)`` onto the shared ``transitions``
    list — every mutation site in the parent class is caught without
    touching production code, and the record is *exact* (no poll-window
    blind spots where a breaker could pass through an illegal edge
    unobserved).
    """

    def __init__(self, *args, transitions: list | None = None, **kwargs):
        self.transitions = transitions if transitions is not None else []
        super().__init__(*args, **kwargs)

    @property
    def _state(self) -> str:
        return self._state_value

    @_state.setter
    def _state(self, value: str) -> None:
        previous = getattr(self, "_state_value", None)
        self._state_value = value
        if previous is not None and previous != value:
            self.transitions.append((self.stage, previous, value))


# ---------------------------------------------------------------------------
# checks (each raises InvariantViolation, else returns None)
# ---------------------------------------------------------------------------


def check_response(response, requested: int) -> None:
    """``degradation-marked`` + ``ladder-monotone`` for one response."""
    expected_degraded = response.served_metric != requested
    if bool(response.degraded) != expected_degraded:
        raise InvariantViolation(
            "degradation-marked",
            f"served metric {response.served_metric} for requested "
            f"{requested} but degraded={response.degraded!r}",
        )
    attempted = [attempt.metric for attempt in response.attempts]
    if any(b >= a for a, b in zip(attempted, attempted[1:])):
        raise InvariantViolation(
            "ladder-monotone",
            f"attempted rungs not strictly descending: {attempted}",
        )
    if attempted and attempted[0] != requested:
        raise InvariantViolation(
            "ladder-monotone",
            f"first attempted rung {attempted[0]} is not the requested "
            f"metric {requested}",
        )
    if any(metric <= response.served_metric for metric in attempted):
        raise InvariantViolation(
            "ladder-monotone",
            f"served rung {response.served_metric} is not below every "
            f"failed rung {attempted}",
        )


def check_error(exc: BaseException) -> None:
    """``typed-errors``: request failures must be part of the taxonomy."""
    if not isinstance(exc, ReproError):
        raise InvariantViolation(
            "typed-errors",
            f"request raised untyped {type(exc).__name__}: {exc} "
            f"(would surface as an unhandled 500)",
        )


def check_breaker_transitions(transitions: list[tuple[str, str, str]]) -> None:
    """``breaker-transition``: every recorded edge must be legal."""
    for stage, before, after in transitions:
        if (before, after) not in LEGAL_BREAKER_EDGES:
            raise InvariantViolation(
                "breaker-transition",
                f"breaker {stage!r} moved {before} -> {after}; legal edges: "
                f"{sorted(LEGAL_BREAKER_EDGES)}",
            )


def check_journal(root) -> None:
    """``journal-fsck``: the directory replays as a clean prefix."""
    report = verify_dir(root)
    if not report["ok"]:
        errors = [e for stream in report["streams"] for e in stream["errors"]]
        raise InvariantViolation(
            "journal-fsck", f"event log at {report['root']} is damaged: {errors}"
        )


def check_resume_identical(records, golden_records) -> None:
    """``resume-identical``: resumed records must equal the golden run's."""
    if len(records) != len(golden_records):
        raise InvariantViolation(
            "resume-identical",
            f"resumed study has {len(records)} records, golden has "
            f"{len(golden_records)}",
        )
    for index, (got, want) in enumerate(zip(records, golden_records)):
        if got != want:
            raise InvariantViolation(
                "resume-identical",
                f"record {index} diverged after resume: {got!r} != {want!r}",
            )


def check_recovery(response) -> None:
    """``recovery-fidelity``: post-fault answers are full fidelity again."""
    if response.degraded:
        raise InvariantViolation(
            "recovery-fidelity",
            f"service still degraded after faults cleared and cooldowns "
            f"elapsed: served {response.served_metric} for requested "
            f"{response.requested_metric}",
        )
