"""Deterministic simulation harness (DESIGN.md section 5j).

Runs whole study and serve scenarios in-process under virtual time and a
seeded fault-schedule DSL, checks a catalog of cross-layer invariants,
and shrinks failing schedules to minimal committed reproducers.

Public surface:

* :class:`~repro.sim.schedule.Schedule` — the typed, JSON-serialisable
  fault timeline and its seeded generator.
* :func:`~repro.sim.driver.run_episode` — execute one episode, returning
  an :class:`~repro.sim.driver.EpisodeResult` with transcript, digest and
  any invariant violations.
* :func:`~repro.sim.shrink.shrink` — delta-debug a failing schedule down
  to a minimal reproducer with the same failure signature.
* :mod:`~repro.sim.invariants` — the invariant catalog itself.
"""

from repro.sim.driver import CANARIES, EpisodeResult, run_episode
from repro.sim.invariants import InvariantViolation
from repro.sim.schedule import SCENARIO_NAMES, Schedule
from repro.sim.shrink import shrink, shrink_episode

__all__ = [
    "CANARIES",
    "EpisodeResult",
    "InvariantViolation",
    "SCENARIO_NAMES",
    "Schedule",
    "run_episode",
    "shrink",
    "shrink_episode",
]
