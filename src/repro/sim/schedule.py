"""The fault-schedule DSL: a typed, seeded timeline of injected faults.

A :class:`Schedule` is what one simulated chaos episode *does*: an
ordered list of :class:`FaultEvent`\\ s, each pinned to a virtual-time
instant, generated deterministically from a seed (the same
:func:`repro.util.rng.stable_rng` key-derivation every other stochastic
input in the codebase uses).  Where :class:`repro.util.faults.FaultPlan`
answers "should this *draw* misbehave?" with seeded Bernoulli rates, a
schedule says "at t=1.35 stall the convolve stage for 0.8 s" — an
explicit timeline the driver executes, the invariant checker can reason
about, and the shrinker can delta-debug event-by-event.

Schedules are JSON round-trippable (:meth:`Schedule.to_doc` /
:meth:`Schedule.from_doc`), which is what makes the regression corpus
under ``tests/corpus/`` possible: a shrunk failing schedule is committed
as a small JSON file and replayed forever after.

Event vocabulary (the fault surface the stack actually has):

* :class:`StallStage` — a serve-stage call sleeps on the episode clock,
  long enough to blow a stage budget (the breaker-trip trigger).
* :class:`CrashStage` — a serve-stage call raises
  :class:`~repro.core.errors.WorkerCrashError` (backend failure).
* :class:`SkewClock` — the virtual clock jumps forward between requests
  (cooldown expiry, EWMA aging, deadline pressure).
* :class:`KillStudy` — the study process "dies" after N completed
  chunks (:class:`~repro.core.errors.StudyAbortedError` via the fault
  plan's ``abort_after``), forcing a checkpoint resume.
* :class:`CorruptStoreEntry` — one persisted trace/probe entry gets a
  byte flipped on disk between run and resume (self-heal path).
* :class:`TruncateLogTail` — the checkpoint journal's active segment
  loses its tail (torn-write recovery path).
* :class:`DropFollower` — one coalesced follower of a single-flight
  request is cancelled mid-flight (leader isolation path).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import ClassVar

from repro.util.rng import stable_rng

__all__ = [
    "FaultEvent",
    "StallStage",
    "CrashStage",
    "SkewClock",
    "KillStudy",
    "CorruptStoreEntry",
    "TruncateLogTail",
    "DropFollower",
    "Schedule",
    "EVENT_KINDS",
    "SCENARIO_NAMES",
]

#: Stages the serve scenarios inject into (mirrors the service's STAGES).
_STAGES = ("probe", "trace", "convolve")

#: Scenario names the generator knows how to build timelines for.
SCENARIO_NAMES = ("serve-recovery", "study-resume", "coalesce")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, pinned to virtual instant :attr:`at`."""

    kind: ClassVar[str] = ""

    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"event time must be >= 0, got {self.at!r}")

    def to_doc(self) -> dict:
        """JSON-shaped view (``kind`` + every field)."""
        doc = {"kind": self.kind}
        doc.update(dataclasses.asdict(self))
        return doc


@dataclass(frozen=True)
class StallStage(FaultEvent):
    """Stall the next ``stage`` call at/after :attr:`at` for ``seconds``."""

    kind: ClassVar[str] = "stall-stage"

    stage: str = "convolve"
    seconds: float = 0.5


@dataclass(frozen=True)
class CrashStage(FaultEvent):
    """Crash the next ``stage`` call at/after :attr:`at`."""

    kind: ClassVar[str] = "crash-stage"

    stage: str = "convolve"


@dataclass(frozen=True)
class SkewClock(FaultEvent):
    """Jump the episode clock forward by ``seconds`` at :attr:`at`."""

    kind: ClassVar[str] = "skew-clock"

    seconds: float = 1.0


@dataclass(frozen=True)
class KillStudy(FaultEvent):
    """Abort the study run after ``after_chunks`` completed chunks."""

    kind: ClassVar[str] = "kill-study"

    after_chunks: int = 1


@dataclass(frozen=True)
class CorruptStoreEntry(FaultEvent):
    """Flip one byte of the ``selector``-th persisted store entry."""

    kind: ClassVar[str] = "corrupt-store-entry"

    selector: int = 0


@dataclass(frozen=True)
class TruncateLogTail(FaultEvent):
    """Drop the last ``drop_bytes`` bytes of the journal's active segment."""

    kind: ClassVar[str] = "truncate-log-tail"

    drop_bytes: int = 16


@dataclass(frozen=True)
class DropFollower(FaultEvent):
    """Cancel the ``follower``-th coalesced follower mid-flight."""

    kind: ClassVar[str] = "drop-follower"

    follower: int = 0


#: kind string -> event class, the (de)serialisation registry.
EVENT_KINDS: dict[str, type[FaultEvent]] = {
    cls.kind: cls
    for cls in (
        StallStage,
        CrashStage,
        SkewClock,
        KillStudy,
        CorruptStoreEntry,
        TruncateLogTail,
        DropFollower,
    )
}


@dataclass(frozen=True)
class Schedule:
    """One episode's fault timeline.

    Attributes
    ----------
    scenario:
        Named scenario the timeline targets (see
        :data:`SCENARIO_NAMES`); the driver picks the system-under-test
        from this.
    seed:
        Seed the timeline was generated from (kept for provenance and
        for seeding the scenario's request mix; replaying an edited
        schedule keeps the original seed).
    horizon:
        Virtual seconds the scheduled phase of the episode spans; the
        driver's deadlock guard is set past this.
    events:
        The timeline, sorted by :attr:`FaultEvent.at`.
    """

    scenario: str
    seed: int
    horizon: float = 10.0
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIO_NAMES:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; known: {SCENARIO_NAMES}"
            )
        if self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon!r}")
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.at))
        )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_doc(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "horizon": self.horizon,
            "events": [event.to_doc() for event in self.events],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "Schedule":
        events = []
        for entry in doc.get("events", ()):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            event_cls = EVENT_KINDS.get(kind)
            if event_cls is None:
                raise ValueError(
                    f"unknown fault-event kind {kind!r}; "
                    f"known: {sorted(EVENT_KINDS)}"
                )
            events.append(event_cls(**entry))
        return cls(
            scenario=doc["scenario"],
            seed=int(doc["seed"]),
            horizon=float(doc.get("horizon", 10.0)),
            events=tuple(events),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_doc(json.loads(text))

    def digest(self) -> str:
        """Stable content digest (corpus identity, transcript keying)."""
        canonical = json.dumps(self.to_doc(), sort_keys=True)
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()

    def replace(self, **changes) -> "Schedule":
        """A copy with the given fields replaced (shrinker convenience)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, seed: int, scenario: str, *, horizon: float = 10.0) -> "Schedule":
        """Seeded timeline for ``scenario`` — same seed, same schedule.

        Every draw comes from one :func:`stable_rng` stream keyed by
        ``(seed, scenario)``, so generation is reproducible across
        processes and platforms (the cross-process determinism pin in the
        test suite covers exactly this).
        """
        if scenario not in SCENARIO_NAMES:
            raise ValueError(
                f"unknown scenario {scenario!r}; known: {SCENARIO_NAMES}"
            )
        rng = stable_rng("sim-schedule", seed, scenario)
        window = horizon * 0.6  # leave the tail of the episode for recovery
        events: list[FaultEvent] = []
        if scenario == "serve-recovery":
            for _ in range(int(rng.integers(2, 7))):
                at = round(float(rng.random()) * window, 3)
                stage = _STAGES[int(rng.integers(0, len(_STAGES)))]
                roll = float(rng.random())
                if roll < 0.5:
                    events.append(
                        StallStage(
                            at=at,
                            stage=stage,
                            seconds=round(0.2 + float(rng.random()) * 1.3, 3),
                        )
                    )
                elif roll < 0.85:
                    events.append(CrashStage(at=at, stage=stage))
                else:
                    events.append(
                        SkewClock(
                            at=at, seconds=round(0.5 + float(rng.random()) * 3.0, 3)
                        )
                    )
        elif scenario == "study-resume":
            # Always one mid-run kill (the scenario exists to test resume),
            # plus optional at-rest damage applied before the resume.
            events.append(
                KillStudy(
                    at=round(float(rng.random()) * window, 3),
                    after_chunks=int(rng.integers(1, 3)),
                )
            )
            if rng.random() < 0.5:
                events.append(
                    CorruptStoreEntry(
                        at=round(window + float(rng.random()), 3),
                        selector=int(rng.integers(0, 64)),
                    )
                )
            if rng.random() < 0.5:
                events.append(
                    TruncateLogTail(
                        at=round(window + float(rng.random()), 3),
                        drop_bytes=int(rng.integers(1, 200)),
                    )
                )
        elif scenario == "coalesce":
            for _ in range(int(rng.integers(1, 3))):
                events.append(
                    DropFollower(
                        at=round(float(rng.random()) * window, 3),
                        follower=int(rng.integers(0, 4)),
                    )
                )
        return cls(scenario=scenario, seed=seed, horizon=horizon, events=tuple(events))
