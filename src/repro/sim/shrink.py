"""Delta-debugging shrinker for failing fault schedules.

A fuzzed schedule that violates an invariant usually does so for the
sake of one or two of its events; the rest are noise that makes the
reproducer hard to read and slow to replay.  :func:`shrink` minimises a
failing schedule the way ddmin minimises failing inputs:

1. **Removal** — repeatedly try dropping chunks of events (halving chunk
   size down to single events) and keep any reduction that still fails
   with the *same* invariant signature.
2. **Simplification** — for each surviving event, try snapping its
   numeric fields to small canonical values (time to 0, stall to the
   minimum that still reproduces, byte counts down), keeping whatever
   still fails.

The result is the schedule committed into ``tests/corpus/`` — typically
one to three events — which the CI sim job replays on every build.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.sim.schedule import FaultEvent, Schedule

__all__ = ["shrink", "shrink_episode"]

#: Candidate replacement values per simplifiable numeric field.
_FIELD_CANDIDATES: dict[str, tuple] = {
    "at": (0.0, 0.5, 1.0),
    "seconds": (0.25, 0.5, 1.0),
    "after_chunks": (1,),
    "selector": (0,),
    "drop_bytes": (1, 8, 16),
    "follower": (0,),
}


def _still_fails(
    schedule: Schedule, failing: Callable[[Schedule], bool]
) -> bool:
    try:
        return bool(failing(schedule))
    except Exception:  # noqa: BLE001 - a crashing probe is not a reproduction
        return False


def shrink(
    schedule: Schedule,
    failing: Callable[[Schedule], bool],
    *,
    max_probes: int = 200,
) -> Schedule:
    """Minimise ``schedule`` while ``failing(candidate)`` stays true.

    ``failing`` must return ``True`` when the candidate schedule still
    reproduces the original failure (same invariant signature — see
    :func:`shrink_episode` for the canonical predicate).  ``max_probes``
    bounds the number of candidate executions, so shrinking a pathological
    schedule terminates; the best reduction found so far is returned.
    """
    if not _still_fails(schedule, failing):
        raise ValueError("schedule does not fail; nothing to shrink")
    probes = 0

    def probe(candidate: Schedule) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False
        probes += 1
        return _still_fails(candidate, failing)

    events = list(schedule.events)
    # Phase 1: ddmin removal — drop chunks, halving granularity.
    chunk = max(1, len(events) // 2)
    while chunk >= 1:
        index = 0
        reduced = False
        while index < len(events):
            candidate_events = events[:index] + events[index + chunk :]
            candidate = schedule.replace(events=tuple(candidate_events))
            if candidate_events != events and probe(candidate):
                events = candidate_events
                reduced = True
                # keep index: the next chunk slid into this position
            else:
                index += chunk
        if not reduced:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    # Phase 2: per-event simplification of numeric fields.
    for index, event in enumerate(list(events)):
        for field_name, candidates in _FIELD_CANDIDATES.items():
            if not hasattr(event, field_name):
                continue
            current = getattr(events[index], field_name)
            for value in candidates:
                if value == current or (
                    field_name != "at" and value > current
                ):
                    continue
                simplified = dataclasses.replace(
                    events[index], **{field_name: value}
                )
                candidate = schedule.replace(
                    events=tuple(
                        simplified if i == index else e
                        for i, e in enumerate(events)
                    )
                )
                if probe(candidate):
                    events[index] = simplified
                    break
    return schedule.replace(events=tuple(events))


def shrink_episode(
    scenario: str,
    seed: int,
    *,
    schedule: Schedule | None = None,
    canary: str | None = None,
    max_probes: int = 200,
) -> tuple[Schedule, str]:
    """Shrink the failing episode ``(scenario, seed)`` to a minimal schedule.

    Runs the episode once to capture its failure signature (the first
    violation's invariant name), then delta-debugs the schedule while
    that signature keeps reproducing.  Returns ``(minimal_schedule,
    signature)``.  Raises :class:`ValueError` when the episode passes.
    """
    from repro.sim.driver import run_episode

    result = run_episode(scenario, seed, schedule=schedule, canary=canary)
    if result.ok:
        raise ValueError(
            f"episode {scenario}:{seed} holds every invariant; nothing to shrink"
        )
    signature = result.violations[0]["invariant"]

    def failing(candidate: Schedule) -> bool:
        replay = run_episode(scenario, seed, schedule=candidate, canary=canary)
        return any(v["invariant"] == signature for v in replay.violations)

    minimal = shrink(result.schedule, failing, max_probes=max_probes)
    return minimal, signature
