"""EXPERIMENTS.md generator: paper-vs-measured for every table and figure.

``python -m repro.study.report [path]`` runs the full study and writes the
reproduction record.  The checked-in EXPERIMENTS.md is this module's output.
"""

from __future__ import annotations

import sys
import time

from repro.core.balanced import BalancedRating, optimise_weights
from repro.core.predictor import PerformancePredictor
from repro.scenarios import (
    BASE_SYSTEM,
    TARGET_SYSTEMS,
    get_machine,
    list_applications,
)
from repro.probes.suite import probe_machine
from repro.study.analysis import (
    best_predictor_counts,
    pairwise_win_counts,
    ranking_quality,
    shape_check,
)
from repro.study.paper_data import (
    PAPER_BALANCED_RATING,
    PAPER_METRIC_NAMES,
    PAPER_RUNTIMES,
    PAPER_TABLE4,
    PAPER_TABLE5,
)
from repro.study.runner import StudyResult, run_study
from repro.study.tables import figure1_series

__all__ = ["generate_experiments_md", "main"]


def _table4_section(result: StudyResult) -> list[str]:
    lines = [
        "## Table 4 / Figure 2 — overall error per metric",
        "",
        "Bench: `benchmarks/test_bench_table4_overall.py`",
        "",
        "| # | Metric | Paper avg abs err (%) | Ours (%) | Paper std (%) | Ours (%) |",
        "|---|--------|----------------------:|---------:|--------------:|---------:|",
    ]
    overall = result.overall_table()
    for m, summary in overall.items():
        p_err, p_std = PAPER_TABLE4[m]
        name = PAPER_METRIC_NAMES[m][1]
        lines.append(
            f"| {m} | {name} | {p_err:.0f} | {summary.mean_abs:.0f} "
            f"| {p_std:.0f} | {summary.std_abs:.0f} |"
        )
    check = shape_check(result)
    lines += [
        "",
        "Qualitative claims (the reproduction target — shape, not values):",
        "",
    ]
    for claim, ok in check.checks.items():
        lines.append(f"- `{claim}`: {'reproduced' if ok else '**NOT reproduced**'}")
    return lines


def _balanced_section(result: StudyResult) -> list[str]:
    predictor = PerformancePredictor()
    probes = {
        name: probe_machine(get_machine(name))
        for name in (*TARGET_SYSTEMS, BASE_SYSTEM)
    }
    observations = [
        (system, BASE_SYSTEM, predictor.base_time(app, cpus), actual)
        for (app, system, cpus), actual in result.observed.items()
    ]

    def err(rating: BalancedRating) -> float:
        errs = [
            abs(rating.predict(t, b, bt) - a) / a * 100.0
            for t, b, bt, a in observations
        ]
        return sum(errs) / len(errs)

    equal_err = err(BalancedRating(probes))
    weights = optimise_weights(probes, observations)
    fitted_err = err(BalancedRating(probes, weights))
    paper = PAPER_BALANCED_RATING
    return [
        "## Section 4 — IDC balanced rating",
        "",
        "Bench: `benchmarks/test_bench_balanced_rating.py`",
        "",
        "| Variant | Paper err (%) | Ours (%) | Paper weights | Our weights |",
        "|---------|--------------:|---------:|---------------|-------------|",
        f"| equal weights | {paper['equal_weights']['error']:.0f} | {equal_err:.0f} "
        f"| 1/3, 1/3, 1/3 | 1/3, 1/3, 1/3 |",
        f"| regression-optimised | {paper['optimised']['error']:.0f} | {fitted_err:.0f} "
        f"| 0.05, 0.50, 0.45 | "
        f"{weights[0]:.2f}, {weights[1]:.2f}, {weights[2]:.2f} |",
        "",
        "Paper's conclusion reproduced: fixed or fitted linear combinations of",
        "simple metrics barely improve on the best single metric, while the",
        "trace-convolution metrics (Table 4, #6-#9) are decisively better.",
    ]


def _table5_section(result: StudyResult) -> list[str]:
    lines = [
        "## Table 5 — per-system average absolute error",
        "",
        "Bench: `benchmarks/test_bench_table5_systems.py`",
        "",
        "Ours / (paper) per metric:",
        "",
        "| System | " + " | ".join(f"#{m}" for m in range(1, 10)) + " |",
        "|--------|" + "----:|" * 9,
    ]
    table = result.system_table()
    for system in TARGET_SYSTEMS:
        ours = table[system]
        paper = PAPER_TABLE5[system]
        cells = [
            f"{ours[m]:.0f} ({paper[m - 1]:.0f})" for m in range(1, 10)
        ]
        lines.append(f"| {system} | " + " | ".join(cells) + " |")
    return lines


def _figure1_section() -> list[str]:
    series = figure1_series()
    lines = [
        "## Figure 1 — unit-stride MAPS curves",
        "",
        "Bench: `benchmarks/test_bench_figure1_maps.py`; plot:",
        "`python examples/maps_curves.py` (add `--csv` for raw points).",
        "",
        "Paper claims, checked on our curves: the Opteron leads from main",
        "memory, the Altix leads at L2-resident sizes, the p655 leads at",
        "L1-resident sizes.",
        "",
        "| System | BW @16 KiB (GB/s) | @128 KiB | @256 MiB |",
        "|--------|------------------:|---------:|---------:|",
    ]
    from repro.probes.results import MapsCurve
    from repro.util.units import KIB, MIB

    for name, (sizes, bws) in series.items():
        curve = MapsCurve(sizes=sizes, bandwidths=bws)
        lines.append(
            f"| {name} | {curve.lookup(16 * KIB) / 1e9:.1f} "
            f"| {curve.lookup(128 * KIB) / 1e9:.1f} "
            f"| {curve.lookup(256 * MIB) / 1e9:.1f} |"
        )
    return lines


def _figures3_7_section(result: StudyResult) -> list[str]:
    lines = [
        "## Figures 3-7 — per-application error assessments",
        "",
        "Bench: `benchmarks/test_bench_figures3_7_apps.py`",
        "",
        "Average absolute error (%) per metric, averaged over the three",
        "processor counts of each test case:",
        "",
        "| Test case | " + " | ".join(f"#{m}" for m in range(1, 10)) + " |",
        "|-----------|" + "----:|" * 9,
    ]
    for app in list_applications():
        data = result.app_case_errors(app)
        row = []
        for m in range(1, 10):
            vals = [row_m[m] for row_m in data.values() if row_m[m] == row_m[m]]
            row.append(f"{sum(vals) / len(vals):.0f}")
        lines.append(f"| {app} | " + " | ".join(row) + " |")

    counts = best_predictor_counts(result)
    gups = pairwise_win_counts(result, 3, 2)
    stream = pairwise_win_counts(result, 2, 1)
    lines += [
        "",
        "Section 6 prose claims:",
        "",
        f"- paper: Metric #9 best/tied in 10 of 15 cases — ours: "
        f"{counts.get(9, 0)} of 15 (metric #6: {counts.get(6, 0)});",
        f"- paper: GUPS beat STREAM in 11 of 15 — ours: {gups['wins']} of 15;",
        f"- paper: STREAM beat HPL in 14 of 15 — ours: {stream['wins']} of 15;",
        f"- paper: HPL never best — ours: {counts.get(1, 0) + counts.get(4, 0)} wins.",
    ]
    return lines


def _appendix_section(result: StudyResult) -> list[str]:
    lines = [
        "## Appendix Tables 6-10 — observed times-to-solution",
        "",
        "Bench: `benchmarks/test_bench_appendix_runtimes.py`",
        "",
        "Our executor's simulated wall-clock times against the paper's",
        "measurements, as model/paper ratios (blank where the paper is blank",
        "or the processor count exceeds the system):",
        "",
    ]
    for app in list_applications():
        data = PAPER_RUNTIMES[app]
        lines += [
            f"### {app}",
            "",
            "| System | " + " | ".join(str(c) for c in data["cpu_counts"]) + " |",
            "|--------|" + "----:|" * 3,
        ]
        for system, times in data["times"].items():
            cells = []
            for cpus, t_paper in zip(data["cpu_counts"], times):
                t_model = result.observed.get((app, system, cpus))
                if t_paper is None or t_model is None:
                    cells.append("—")
                else:
                    cells.append(f"{t_model / t_paper:.2f}")
            lines.append(f"| {system} | " + " | ".join(cells) + " |")
        lines.append("")
    return lines


def _ranking_section(result: StudyResult) -> list[str]:
    lines = [
        "## Ranking quality (the Top500 motivation)",
        "",
        "Bench: `benchmarks/test_bench_best_predictor.py`",
        "",
        "Mean Kendall tau between predicted and observed system orderings",
        "over the 15 cases:",
        "",
        "| Metric | tau |",
        "|--------|----:|",
    ]
    for m in (1, 2, 3, 6, 9):
        q = ranking_quality(result, m)
        lines.append(f"| #{m} {PAPER_METRIC_NAMES[m][1]} | {q['kendall_tau']:.2f} |")
    return lines


def generate_experiments_md(result: StudyResult | None = None) -> str:
    """Build the full EXPERIMENTS.md text."""
    result = result or run_study()
    header = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `python -m repro.study.report`.  All 'ours' numbers come",
        "from the default study configuration (the paper's full matrix: 5",
        "test cases x 3 processor counts x 10 target systems, minus the 5",
        "cells whose processor count exceeds the installed system, = "
        f"{result.n_runs} runs and {result.n_predictions} predictions).",
        "",
        "The reproduction target is **shape**: orderings among metrics, rough",
        "factors, and the paper's qualitative claims.  Absolute numbers differ",
        "because every substrate here is a model (see DESIGN.md §2).",
        "",
        "Known deviations, recorded honestly:",
        "",
        "- Metric #5's error (ours ~39%) does not reach the paper's 50%: our",
        "  applications' FP share at Rmax is smaller than the TI-05 codes',",
        "  so #5 tracks #2 more closely than in the paper (same ordering,",
        "  smaller gap).",
        "- Metric #8 lands at ~#7 instead of slightly better: with compute",
        "  under-predicted by the MAPS-only model, adding an accurate network",
        "  term over-weights communication in the base-relative ratio; the",
        "  paper saw the same effect per-system ('worsened predictions for",
        "  2').  Metric #9 does not suffer because its dependency term fixes",
        "  the compute scale.",
        "- Metric #9 is somewhat better (ours ~14%) than the paper's 18%, and",
        "  is best-or-tied in more of the 15 cases than the paper's 10.",
        "",
    ]
    sections = [
        _table4_section(result),
        _balanced_section(result),
        _table5_section(result),
        _figure1_section(),
        _figures3_7_section(result),
        _appendix_section(result),
        _ranking_section(result),
    ]
    body: list[str] = []
    for section in sections:
        body.extend(section)
        body.append("")
    return "\n".join(header + body).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    """Write EXPERIMENTS.md (default path: ./EXPERIMENTS.md)."""
    args = argv if argv is not None else sys.argv[1:]
    path = args[0] if args else "EXPERIMENTS.md"
    start = time.perf_counter()
    text = generate_experiments_md()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {path} in {time.perf_counter() - start:.1f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
