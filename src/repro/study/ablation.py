"""Ablation studies: which modelled effect contributes which error.

Each ablation runs the full study under one modification and reports the
per-metric error table, isolating a design choice DESIGN.md calls out:

* ``no_noise`` — run-to-run noise off: how much of every metric's floor is
  measurement noise versus structure;
* ``absolute_mode`` — convolver output taken at face value instead of
  base-relative (Equation 1 anchoring off);
* ``coarse_tracing`` / ``fine_tracing`` — tracer sample size;
* ``alternate_base`` — trace and anchor on the NAVO p655 instead of the
  p690 (how sensitive are the conclusions to the base-system choice?);
* ``single_app`` etc. are easy to build with ``StudyConfig.variant``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.study.runner import StudyConfig, StudyResult, run_study
from repro.tracing.metasim import clear_trace_cache

__all__ = ["AblationOutcome", "run_ablation", "ABLATIONS"]

#: Named study variants.
ABLATIONS: dict[str, dict] = {
    "baseline": {},
    "no_noise": {"noise": False},
    "absolute_mode": {"mode": "absolute"},
    "coarse_tracing": {"sample_size": 256},
    "fine_tracing": {"sample_size": 16384},
    "alternate_base": {"base_system": "NAVO_655"},
}


@dataclass(frozen=True)
class AblationOutcome:
    """A named variant's per-metric average absolute errors."""

    name: str
    errors: dict[int, float]
    result: StudyResult

    def delta_from(self, other: "AblationOutcome") -> dict[int, float]:
        """Per-metric error change relative to ``other`` (positive = worse)."""
        return {m: self.errors[m] - other.errors[m] for m in self.errors}


def run_ablation(name: str, config: StudyConfig | None = None) -> AblationOutcome:
    """Run the named ablation (see :data:`ABLATIONS`).

    Tracer-related variants clear the trace cache first so the sample-size
    change actually takes effect.
    """
    try:
        changes = ABLATIONS[name]
    except KeyError:
        known = ", ".join(ABLATIONS)
        raise KeyError(f"unknown ablation {name!r}; known: {known}") from None
    cfg = (config or StudyConfig()).variant(**changes)
    if "sample_size" in changes:
        clear_trace_cache()
    result = run_study(cfg)
    errors = {m: s.mean_abs for m, s in result.overall_table().items()}
    return AblationOutcome(name=name, errors=errors, result=result)
