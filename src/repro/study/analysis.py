"""Derived analyses of a study result.

These reproduce the paper's prose claims rather than its tables:

* Section 6's best-predictor counts ("Metric #9 ... was the best of all the
  predictors for 8 of the 15 cases");
* GUPS-vs-STREAM win counts ("GUPS was a better predictor than STREAM in 11
  out of the 15 possible cases");
* ranking quality per metric (the Top500-motivation angle);
* a shape comparison against the paper's Table 4 (orderings, not values).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.ranking import rank_agreement
from repro.study.paper_data import PAPER_TABLE4
from repro.study.runner import StudyResult

__all__ = [
    "case_errors",
    "best_predictor_counts",
    "pairwise_win_counts",
    "ranking_quality",
    "shape_check",
    "ShapeCheck",
]


def case_errors(result: StudyResult) -> dict[tuple[str, int], dict[int, float]]:
    """(application, cpus) -> metric -> average absolute error over systems.

    The 15 "(application test case, processor count) pairings" of Section 6.
    """
    cases: dict[tuple[str, int], dict[int, float]] = {}
    pairs = sorted({(r.application, r.cpus) for r in result.records})
    for app, cpus in pairs:
        row = {}
        for m in result.config.metrics:
            errs = result.errors(metric=m, application=app, cpus=cpus)
            if errs:
                row[m] = float(np.mean(np.abs(errs)))
        cases[(app, cpus)] = row
    return cases


def best_predictor_counts(result: StudyResult) -> Counter:
    """metric -> number of (application, cpus) cases it predicts best.

    Ties award every tied metric (the paper counts ties separately; the
    tie-inclusive count is what "best or tied for best" reports).
    """
    counts: Counter = Counter()
    for _case, row in case_errors(result).items():
        best = min(row.values())
        for metric, err in row.items():
            if err <= best + 1e-9:
                counts[metric] += 1
    return counts


def pairwise_win_counts(result: StudyResult, metric_a: int, metric_b: int) -> dict:
    """How often ``metric_a`` beats ``metric_b`` across the 15 cases."""
    wins = losses = ties = 0
    for _case, row in case_errors(result).items():
        if metric_a not in row or metric_b not in row:
            continue
        diff = row[metric_a] - row[metric_b]
        if abs(diff) < 1e-9:
            ties += 1
        elif diff < 0:
            wins += 1
        else:
            losses += 1
    return {"wins": wins, "losses": losses, "ties": ties}


def ranking_quality(result: StudyResult, metric: int) -> dict[str, float]:
    """Average Kendall tau / Spearman rho of ``metric``'s system rankings.

    One ranking comparison per (application, cpus) case, averaged.
    """
    taus, rhos = [], []
    pairs = sorted({(r.application, r.cpus) for r in result.records})
    for app, cpus in pairs:
        recs = result.select(metric=metric, application=app, cpus=cpus)
        if len(recs) < 2:
            continue
        predicted = {r.system: r.predicted_seconds for r in recs}
        actual = {r.system: r.actual_seconds for r in recs}
        agreement = rank_agreement(predicted, actual)
        taus.append(agreement["kendall_tau"])
        rhos.append(agreement["spearman_rho"])
    return {
        "kendall_tau": float(np.mean(taus)),
        "spearman_rho": float(np.mean(rhos)),
        "cases": float(len(taus)),
    }


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of comparing our Table 4 against the paper's (shape only).

    Attributes
    ----------
    checks:
        name -> bool for each qualitative claim.
    """

    checks: dict[str, bool]

    @property
    def passed(self) -> bool:
        """True when every qualitative claim reproduces."""
        return all(self.checks.values())

    def failures(self) -> list[str]:
        """Names of the claims that did not reproduce."""
        return [name for name, ok in self.checks.items() if not ok]


def shape_check(result: StudyResult) -> ShapeCheck:
    """Verify the paper's qualitative Table 4 claims on our results.

    The claims (paper Sections 4 and 7):

    * HPL is the worst predictor of the simple metrics;
    * STREAM beats HPL; GUPS beats STREAM;
    * Metric #4 is identical to Metric #1;
    * Metric #5 is no better than Metric #2 (adding FP at Rmax does not fix
      a STREAM-only model);
    * Metric #6 is a large improvement over Metric #5;
    * Metric #7 is not better than Metric #6 (MAPS granularity alone);
    * Metric #9 is the best predictor overall, and reaches the paper's
      "about 80% accuracy" (average absolute error about 20% or less);
    * the predictive family (#6-#9) beats every simple metric.
    """
    table = {m: s.mean_abs for m, s in result.overall_table().items()}
    checks = {
        "hpl_worst_simple": table[1] >= max(table[2], table[3]),
        "stream_beats_hpl": table[2] < table[1],
        "gups_beats_stream": table[3] <= table[2] + 5.0,
        "metric4_equals_metric1": abs(table[4] - table[1]) < 0.5,
        "metric5_not_better_than_stream": table[5] >= table[2] - 2.0,
        "metric6_big_jump_over_5": table[6] < table[5] - 8.0,
        "metric7_not_better_than_6": table[7] >= table[6] - 2.0,
        "metric9_best_overall": table[9] <= min(table.values()) + 1e-9,
        "metric9_about_80pct_accurate": table[9] <= 22.0,
        "predictive_family_beats_simple": max(table[6], table[7], table[8], table[9])
        < min(table[1], table[2], table[3]) + 5.0,
    }
    return ShapeCheck(checks=checks)


def paper_table4_ordering() -> list[int]:
    """Metric numbers sorted by the paper's Table 4 error (best first)."""
    return sorted(PAPER_TABLE4, key=lambda m: PAPER_TABLE4[m][0])
