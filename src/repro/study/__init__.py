"""Full-study orchestration: runs, tables, figures, paper comparison.

* :mod:`repro.study.runner` — executes the paper's complete experiment
  matrix (5 applications x 3 processor counts x 10 target systems, 9 metrics
  each) and returns a :class:`~repro.study.runner.StudyResult`.
* :mod:`repro.study.tables` — builds the paper's Tables 4/5, Figures 2-7
  series and the appendix runtime tables from a study result.
* :mod:`repro.study.paper_data` — the numbers published in the paper, for
  side-by-side comparison in EXPERIMENTS.md and the benches.
* :mod:`repro.study.analysis` — derived analyses (best-predictor counts,
  rank correlations, shape checks against the paper).
* :mod:`repro.study.ablation` — study variants isolating individual error
  sources (noise, contention, dependency modelling, tracer sampling).
"""

from repro.study.resilience import CellFailure, StudyCheckpoint
from repro.study.runner import (
    PredictionRecord,
    StudyConfig,
    StudyResult,
    run_study,
    shutdown_pool,
)

__all__ = [
    "run_study",
    "shutdown_pool",
    "StudyConfig",
    "StudyResult",
    "PredictionRecord",
    "CellFailure",
    "StudyCheckpoint",
]
