"""Builders for the paper's tables and figure series.

Every function takes a :class:`~repro.study.runner.StudyResult` and returns
a :class:`~repro.util.tables.Table` (or a data series for the figure
renderers) mirroring one artifact of the paper:

* :func:`table1_architectures`, :func:`table2_systems` — the system lists;
* :func:`table4_overall` — error per metric (with the paper's values
  side by side);
* :func:`table5_systems` — per-system error per metric;
* :func:`figure2_series` — the Table 4 bar-chart series;
* :func:`figures3_7_series` — per-application error series;
* :func:`appendix_runtimes` — Tables 6-10 observed times-to-solution;
* :func:`figure1_series` — unit-stride MAPS curves for three systems.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios import CATALOG, get_machine
from repro.probes.suite import probe_machine
from repro.study.paper_data import (
    PAPER_RUNTIMES,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_METRIC_NAMES,
)
from repro.core.registry import REGISTRY
from repro.study.runner import StudyResult
from repro.util.tables import Table


def _metric_identity(metric: int) -> tuple[str, str]:
    """(kind, display name) for a metric row.

    Table 3 metrics render the paper's exact wording; off-table metrics
    (the balanced rating, user-registered #10+) fall back to their
    registry spec so a custom study still tabulates.
    """
    if metric in PAPER_METRIC_NAMES:
        return PAPER_METRIC_NAMES[metric]
    spec = REGISTRY.spec(metric)
    return spec.kind, spec.label

__all__ = [
    "table1_architectures",
    "table2_systems",
    "table3_metrics",
    "table4_overall",
    "table5_systems",
    "figure1_series",
    "figure2_series",
    "figures3_7_series",
    "appendix_runtimes",
]


def table1_architectures() -> Table:
    """Paper Table 1: the architectures, in installation order."""
    table = Table(
        title="Table 1. Architectures used in study",
        columns=["Make", "Model", "Speed (GHz)", "Interconnect"],
        formats=[None, None, ".3f", None],
    )
    seen = set()
    for spec in CATALOG.machine_map().values():
        key = (spec.vendor, spec.model, spec.processor.clock_ghz, spec.network.name)
        if key in seen:
            continue
        seen.add(key)
        table.add_row(spec.vendor, spec.model, spec.processor.clock_ghz, spec.network.name)
    return table


def table2_systems() -> Table:
    """Paper Table 2: the installed systems and their processor counts."""
    table = Table(
        title="Table 2. Systems used in study",
        columns=["System", "Architecture", "Compute Processors"],
        formats=[None, None, "d"],
    )
    for spec in CATALOG.machine_map().values():
        table.add_row(spec.name, spec.architecture, spec.cpus)
    return table


def table3_metrics() -> Table:
    """Paper Table 3: the nine synthetic metrics."""
    table = Table(
        title="Table 3. Synthetic metrics used in study",
        columns=["#", "Type", "Name or Description"],
    )
    for num, (kind, name) in PAPER_METRIC_NAMES.items():
        table.add_row(num, kind.capitalize(), name)
    return table


def table4_overall(result: StudyResult) -> Table:
    """Paper Table 4 with the paper's published numbers alongside ours."""
    table = Table(
        title="Table 4. Error assessment: metric results vs real run time",
        columns=[
            "# & Type",
            "Metric Description",
            "Avg |err| (%)",
            "Std (%)",
            "Paper avg (%)",
            "Paper std (%)",
        ],
        formats=[None, None, ".0f", ".0f", ".0f", ".0f"],
    )
    for metric, summary in result.overall_table().items():
        kind, name = _metric_identity(metric)
        paper_err, paper_std = PAPER_TABLE4.get(
            metric, (float("nan"), float("nan"))
        )
        table.add_row(
            f"{metric}-{kind[0].upper()}",
            name,
            summary.mean_abs,
            summary.std_abs,
            paper_err,
            paper_std,
        )
    return table


def table5_systems(result: StudyResult, *, include_paper: bool = False) -> Table:
    """Paper Table 5: system-specific average absolute percent error."""
    metrics = list(result.config.metrics)
    columns = ["System"] + [str(m) for m in metrics]
    formats: list[str | None] = [None] + [".0f"] * len(metrics)
    if include_paper:
        columns += [f"p{m}" for m in metrics]
        formats += [".0f"] * len(metrics)
    table = Table(
        title="Table 5. System-specific average absolute percent error",
        columns=columns,
        formats=formats,
    )
    system_rows = result.system_table()
    for system, row in system_rows.items():
        cells: list[object] = [system] + [row[m] for m in metrics]
        if include_paper:
            cells += list(PAPER_TABLE5.get(system, ["-"] * len(metrics)))
        table.add_row(*cells)
    overall = result.overall_table()
    cells = ["OVERALL"] + [overall[m].mean_abs for m in metrics]
    if include_paper:
        cells += [PAPER_TABLE4[m][0] for m in metrics]
    table.add_row(*cells)
    return table


def figure1_series(
    systems: tuple[str, ...] = ("ARL_Opteron", "ARL_Altix", "NAVO_655"),
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Figure 1: unit-stride MAPS bandwidth vs size for three systems.

    Returns system -> (sizes, bandwidths).
    """
    out = {}
    for name in systems:
        curve = probe_machine(get_machine(name)).maps.unit
        out[name] = (curve.sizes, curve.bandwidths)
    return out


def figure2_series(result: StudyResult) -> dict[int, tuple[float, float]]:
    """Figure 2: metric -> (average absolute error, std), the Table 4 bars."""
    return {
        m: (s.mean_abs, s.std_abs) for m, s in result.overall_table().items()
    }


def figures3_7_series(result: StudyResult, application: str) -> Table:
    """Figures 3-7: per-application error per metric and processor count."""
    data = result.app_case_errors(application)
    cpu_counts = sorted(data)
    metrics = list(result.config.metrics)
    table = Table(
        title=f"Error assessment for {application}",
        columns=["Metric"] + [f"{c} CPUs" for c in cpu_counts],
        formats=[None] + [".0f"] * len(cpu_counts),
    )
    for m in metrics:
        kind, name = _metric_identity(m)
        table.add_row(
            f"{m}-{kind[0].upper()} {name}", *[data[c][m] for c in cpu_counts]
        )
    return table


def appendix_runtimes(result: StudyResult, application: str) -> Table:
    """Appendix Tables 6-10: observed times-to-solution, paper alongside."""
    observed = result.observed_times(application)
    paper = PAPER_RUNTIMES.get(application, {})
    cpu_counts = paper.get("cpu_counts")
    if cpu_counts is None:
        from repro.scenarios import get_application

        cpu_counts = get_application(application).cpu_counts
    columns = ["Machine"] + [f"{c}-CPUs" for c in cpu_counts] + [
        f"paper {c}" for c in cpu_counts
    ]
    table = Table(
        title=f"Observed times-to-solution (s): {application}",
        columns=columns,
        formats=[None] + [".0f"] * (2 * len(cpu_counts)),
    )
    paper_times = paper.get("times", {})
    for system, times in observed.items():
        row: list[object] = [system]
        row += [t if t is not None else None for t in times]
        row += list(paper_times.get(system, [None] * len(cpu_counts)))
        table.add_row(*row)
    return table
