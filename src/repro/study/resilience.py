"""Resilience layer of the study engine: checkpoints, retries, quarantine.

The full paper matrix is 150 simulated runs and 1350 predictions; at
production scale (``--scale N`` replicas, parallel workers, shared cache
directories) a single worker death, torn cache file or Ctrl-C must not
throw the whole campaign away.  This module provides the pieces
:func:`repro.study.runner.run_study` composes into that guarantee:

* :class:`StudyCheckpoint` — the study journal, an event-log consumer
  since the durability core landed: completed chunks are
  ``ChunkCompleted`` events in a :class:`~repro.events.log.EventLog`
  stream whose first event (``StudyStarted``) pins the study config's
  identity digest.  A crash mid-append at worst leaves a torn tail frame
  that recovery truncates.  Because chunk results are partition-invariant
  and every stochastic input is seed-stable, a resumed study is
  byte-identical to an uninterrupted one.  Journals written by the
  pre-event single-file format load transparently and are migrated on the
  next ``record``.
* :class:`CellFailure` — the quarantine record for a chunk that exhausted
  its retries, carrying the failure taxonomy class
  (:mod:`repro.core.errors`) so partial results stay diagnosable.
* :func:`repro.util.retry.backoff_seconds` (re-exported here) — capped
  exponential backoff with *deterministic* seeded jitter, shared with the
  prediction service's half-open breaker probes, so retry schedules are
  reproducible run-to-run.
* :func:`classify_failure` — maps arbitrary chunk exceptions onto the
  taxonomy (``WorkerCrashError``, ``ChunkTimeoutError``, ...).
"""

from __future__ import annotations

import hashlib
import json
import logging
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import NamedTuple

from repro.core.errors import (
    CheckpointError,
    ChunkTimeoutError,
    ReproError,
    WorkerCrashError,
)
from repro.events.log import EventLog
from repro.events.snapshot import snapshot_path
from repro.events.types import CellFailed, ChunkCompleted, StudyStarted
from repro.util.retry import (
    BACKOFF_BASE_SECONDS,
    BACKOFF_CAP_SECONDS,
    backoff_seconds,
)

__all__ = [
    "CellFailure",
    "StudyCheckpoint",
    "CHECKPOINT_SCHEMA_VERSION",
    "config_digest",
    "backoff_seconds",
    "classify_failure",
]

log = logging.getLogger(__name__)

#: Bumped whenever the checkpoint layout changes incompatibly.
#: Version 2 is the event-log directory format; version 1 was the
#: single-file JSONL journal, still readable (and migrated on write).
CHECKPOINT_SCHEMA_VERSION = 2
_LEGACY_SCHEMA_VERSION = 1

#: Writer id of the study journal stream inside its log directory.
CHECKPOINT_WRITER = "study"

#: Identity fields of a StudyConfig — the ones that shape results.  Engine
#: knobs (``max_retries``, ``chunk_timeout``) are deliberately excluded:
#: changing them must not orphan a checkpoint.
_IDENTITY_FIELDS = (
    "applications",
    "systems",
    "base_system",
    "metrics",
    "mode",
    "sample_size",
    "noise",
    "cache_model",
)

# BACKOFF_BASE_SECONDS / BACKOFF_CAP_SECONDS / backoff_seconds now live in
# repro.util.retry (shared with the serving layer); re-exported above for
# existing importers.


class CellFailure(NamedTuple):
    """A quarantined chunk: every cell of one application row is missing.

    Attributes
    ----------
    application:
        The chunk's application label (chunks span all systems of a row).
    error:
        Taxonomy class name (``"WorkerCrashError"``, ``"ChunkTimeoutError"``,
        ...) — the *last* attempt's failure class.
    message:
        The last attempt's error message.
    attempts:
        Total attempts made (1 + retries) before quarantine.
    """

    application: str
    error: str
    message: str
    attempts: int


def config_digest(config) -> str:
    """Stable digest of a :class:`StudyConfig`'s result-shaping identity."""
    h = hashlib.blake2b(digest_size=16)
    for name in _IDENTITY_FIELDS:
        h.update(repr(getattr(config, name)).encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


def classify_failure(exc: BaseException) -> tuple[str, str]:
    """Map a chunk failure onto the taxonomy: ``(class_name, message)``.

    Pool-infrastructure failures collapse onto :class:`WorkerCrashError` /
    :class:`ChunkTimeoutError`; :class:`ReproError` subclasses keep their
    own class; anything else keeps its concrete type name so quarantine
    records stay diagnosable.
    """
    if isinstance(exc, ReproError):
        return type(exc).__name__, str(exc)
    if isinstance(exc, (BrokenProcessPool, CancelledError)):
        return WorkerCrashError.__name__, f"worker pool broke: {exc}"
    if isinstance(exc, FuturesTimeoutError):
        return ChunkTimeoutError.__name__, f"chunk deadline exceeded: {exc}"
    return type(exc).__name__, str(exc)


def _entry_checksum(doc: dict) -> str:
    canonical = json.dumps(doc, sort_keys=True)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


class StudyCheckpoint:
    """The study journal: one event-log stream of completed chunks.

    ``path`` is an event-log *directory* (created on first ``record``).
    Its ``study`` writer stream opens with a ``StudyStarted`` event
    pinning the schema version and the study config's identity digest;
    every completed chunk is a ``ChunkCompleted`` event carrying the
    chunk's records/observed-times/stage-breakdown, and quarantined
    chunks leave ``CellFailed`` events for the audit trail.  Loading
    validates everything and silently heals the damage shapes:

    * identity mismatch (different config, stale schema, foreign log) —
      the journal is ignored and wiped on the next ``record``;
    * torn tail (killed mid-append) — the event log keeps the valid
      frame prefix and truncates the rest in place.

    ``path`` may also name a journal written by the legacy single-file
    format (schema version 1): it loads transparently and is migrated
    into an event-log directory by the next ``record``.

    JSON float serialisation round-trips exactly (``repr`` semantics), so
    chunks replayed from a checkpoint are *byte-identical* to freshly
    computed ones.
    """

    def __init__(self, path: str, digest: str):
        self.path = Path(path)
        self.config_digest = digest
        self._log: EventLog | None = None
        self._started = False
        self._reset_needed = False
        self._legacy_entries: dict[str, dict] | None = None

    # ------------------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """Validated entries keyed by chunk label (empty when unusable)."""
        if self.path.is_file():
            self._legacy_entries = self._load_legacy()
            return dict(self._legacy_entries)
        if not self.path.is_dir():
            return {}
        event_log = self._open_log()
        entries: dict[str, dict] = {}
        for index, (_seq, event) in enumerate(event_log.replay()):
            if index == 0:
                if not (
                    isinstance(event, StudyStarted)
                    and event.schema_version == CHECKPOINT_SCHEMA_VERSION
                    and event.config_digest == self.config_digest
                ):
                    log.warning(
                        "checkpoint %s does not match this study (stale schema "
                        "or different config); it will be restarted", self.path,
                    )
                    self._reset_needed = True
                    return {}
                self._started = True
                continue
            if isinstance(event, ChunkCompleted):
                entries[event.label] = {
                    "label": event.label,
                    "records": event.records,
                    "observed": event.observed,
                    "stages": event.stages,
                }
        return entries

    # ------------------------------------------------------------------
    def record(self, label: str, records, observed, stages) -> None:
        """Journal one completed chunk (durable before returning).

        ``records`` are :class:`~repro.study.runner.PredictionRecord`
        tuples; ``observed`` maps ``(application, system, cpus)`` to
        seconds; ``stages`` is the chunk's stage-seconds breakdown.
        """
        event = ChunkCompleted(
            label=label,
            records=[list(rec) for rec in records],
            observed=[[a, s, c, v] for (a, s, c), v in observed.items()],
            stages=dict(stages),
        )
        try:
            self._ensure_log().append(event)
        except OSError as exc:
            raise CheckpointError(
                f"cannot journal chunk {label!r} to checkpoint {self.path}: {exc}"
            ) from exc

    def record_failure(self, failure: "CellFailure") -> None:
        """Journal a quarantined chunk for the audit trail (best-effort).

        Failed chunks are *not* resume points — they are retried from
        scratch on the next run — so a journal write error here is logged,
        not raised: losing an audit event must not fail the study.
        """
        event = CellFailed(
            application=failure.application,
            error=failure.error,
            message=failure.message,
            attempts=failure.attempts,
        )
        try:
            self._ensure_log().append(event)
        except OSError as exc:  # pragma: no cover - audit is best-effort
            log.warning(
                "could not journal failure of %r to checkpoint %s: %s",
                failure.application, self.path, exc,
            )

    # ------------------------------------------------------------------
    # journal stream management
    # ------------------------------------------------------------------
    def _open_log(self) -> EventLog:
        if self._log is None:
            self._log = EventLog(
                self.path, writer=CHECKPOINT_WRITER, fsync="always"
            )
        return self._log

    def _ensure_log(self) -> EventLog:
        """The journal stream, ready to append chunks to.

        Handles the three cold-start shapes: migrating a legacy
        single-file journal, wiping a mismatched log, and starting the
        stream with its ``StudyStarted`` identity event.
        """
        if self._started and self._log is not None:
            return self._log
        if self.path.is_file():
            if self._legacy_entries is None:
                self._legacy_entries = self._load_legacy()
            self.path.unlink()
        if self._reset_needed:
            self._wipe_log_dir()
            self._reset_needed = False
            self._log = None
        event_log = self._open_log()
        if event_log.last_seq == 0:
            event_log.append(
                StudyStarted(
                    config_digest=self.config_digest,
                    schema_version=CHECKPOINT_SCHEMA_VERSION,
                )
            )
            for doc in (self._legacy_entries or {}).values():
                event_log.append(
                    ChunkCompleted(
                        label=doc["label"],
                        records=doc["records"],
                        observed=doc["observed"],
                        stages=doc.get("stages", {}),
                    )
                )
        self._legacy_entries = None
        self._started = True
        return event_log

    def _wipe_log_dir(self) -> None:
        """Drop every event-log artifact under ``path`` (restart semantics)."""
        if self._log is not None:
            self._log.close()
            self._log = None
        if not self.path.is_dir():
            return
        for child in self.path.iterdir():
            name = child.name
            if name.startswith("events-") and name.endswith(".jsonl"):
                child.unlink()
            elif name.startswith("snapshot-") and name.endswith(".json"):
                child.unlink()

    # ------------------------------------------------------------------
    # legacy single-file journal (schema version 1)
    # ------------------------------------------------------------------
    def _load_legacy(self) -> dict[str, dict]:
        try:
            text = self.path.read_text()
        except OSError:
            return {}
        lines = text.splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
            usable = (
                isinstance(header, dict)
                and header.get("kind") == "study-checkpoint"
                and header.get("schema_version") == _LEGACY_SCHEMA_VERSION
                and header.get("config_digest") == self.config_digest
            )
        except json.JSONDecodeError:
            usable = False
        if not usable:
            log.warning(
                "checkpoint %s does not match this study (stale schema or "
                "different config); it will be restarted", self.path,
            )
            return {}
        entries: dict[str, dict] = {}
        for offset, line in enumerate(lines[1:], start=2):
            try:
                doc = json.loads(line)
                checksum = doc.pop("checksum")
                if checksum != _entry_checksum(doc):
                    raise ValueError("entry checksum mismatch")
                label = doc["label"]
            except (ValueError, KeyError, TypeError, AttributeError):
                log.warning(
                    "checkpoint %s: dropping torn tail from line %d",
                    self.path, offset,
                )
                break
            entries[label] = doc
        return entries
