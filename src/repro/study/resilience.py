"""Resilience layer of the study engine: checkpoints, retries, quarantine.

The full paper matrix is 150 simulated runs and 1350 predictions; at
production scale (``--scale N`` replicas, parallel workers, shared cache
directories) a single worker death, torn cache file or Ctrl-C must not
throw the whole campaign away.  This module provides the pieces
:func:`repro.study.runner.run_study` composes into that guarantee:

* :class:`StudyCheckpoint` — an append-only journal of completed
  (application-row) chunks.  The header is written atomically and pins the
  study config's identity digest; each entry is one checksummed JSON line,
  so a crash mid-append at worst leaves a torn tail that the loader drops
  (and compacts away).  Because chunk results are partition-invariant and
  every stochastic input is seed-stable, a resumed study is byte-identical
  to an uninterrupted one.
* :class:`CellFailure` — the quarantine record for a chunk that exhausted
  its retries, carrying the failure taxonomy class
  (:mod:`repro.core.errors`) so partial results stay diagnosable.
* :func:`repro.util.retry.backoff_seconds` (re-exported here) — capped
  exponential backoff with *deterministic* seeded jitter, shared with the
  prediction service's half-open breaker probes, so retry schedules are
  reproducible run-to-run.
* :func:`classify_failure` — maps arbitrary chunk exceptions onto the
  taxonomy (``WorkerCrashError``, ``ChunkTimeoutError``, ...).
"""

from __future__ import annotations

import hashlib
import json
import logging
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import NamedTuple

from repro.core.errors import (
    CheckpointError,
    ChunkTimeoutError,
    ReproError,
    WorkerCrashError,
)
from repro.util.io import append_line_durable, write_atomic
from repro.util.retry import (
    BACKOFF_BASE_SECONDS,
    BACKOFF_CAP_SECONDS,
    backoff_seconds,
)

__all__ = [
    "CellFailure",
    "StudyCheckpoint",
    "CHECKPOINT_SCHEMA_VERSION",
    "config_digest",
    "backoff_seconds",
    "classify_failure",
]

log = logging.getLogger(__name__)

#: Bumped whenever the checkpoint layout changes incompatibly.
CHECKPOINT_SCHEMA_VERSION = 1

#: Identity fields of a StudyConfig — the ones that shape results.  Engine
#: knobs (``max_retries``, ``chunk_timeout``) are deliberately excluded:
#: changing them must not orphan a checkpoint.
_IDENTITY_FIELDS = (
    "applications",
    "systems",
    "base_system",
    "metrics",
    "mode",
    "sample_size",
    "noise",
    "cache_model",
)

# BACKOFF_BASE_SECONDS / BACKOFF_CAP_SECONDS / backoff_seconds now live in
# repro.util.retry (shared with the serving layer); re-exported above for
# existing importers.


class CellFailure(NamedTuple):
    """A quarantined chunk: every cell of one application row is missing.

    Attributes
    ----------
    application:
        The chunk's application label (chunks span all systems of a row).
    error:
        Taxonomy class name (``"WorkerCrashError"``, ``"ChunkTimeoutError"``,
        ...) — the *last* attempt's failure class.
    message:
        The last attempt's error message.
    attempts:
        Total attempts made (1 + retries) before quarantine.
    """

    application: str
    error: str
    message: str
    attempts: int


def config_digest(config) -> str:
    """Stable digest of a :class:`StudyConfig`'s result-shaping identity."""
    h = hashlib.blake2b(digest_size=16)
    for name in _IDENTITY_FIELDS:
        h.update(repr(getattr(config, name)).encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


def classify_failure(exc: BaseException) -> tuple[str, str]:
    """Map a chunk failure onto the taxonomy: ``(class_name, message)``.

    Pool-infrastructure failures collapse onto :class:`WorkerCrashError` /
    :class:`ChunkTimeoutError`; :class:`ReproError` subclasses keep their
    own class; anything else keeps its concrete type name so quarantine
    records stay diagnosable.
    """
    if isinstance(exc, ReproError):
        return type(exc).__name__, str(exc)
    if isinstance(exc, (BrokenProcessPool, CancelledError)):
        return WorkerCrashError.__name__, f"worker pool broke: {exc}"
    if isinstance(exc, FuturesTimeoutError):
        return ChunkTimeoutError.__name__, f"chunk deadline exceeded: {exc}"
    return type(exc).__name__, str(exc)


def _entry_checksum(doc: dict) -> str:
    canonical = json.dumps(doc, sort_keys=True)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


class StudyCheckpoint:
    """Append-only journal of completed study chunks.

    Layout: line 1 is an atomically-written header pinning the schema
    version and the study config's identity digest; every further line is
    one completed chunk's records/observed-times/stage-breakdown with a
    content checksum.  Loading validates everything and silently heals the
    two possible damage shapes:

    * header mismatch (different config, stale schema, foreign file) —
      the journal is ignored and overwritten on the next ``record``;
    * torn tail (killed mid-append) — the valid prefix is kept and the
      file is compacted in place.

    JSON float serialisation round-trips exactly (``repr`` semantics), so
    chunks replayed from a checkpoint are *byte-identical* to freshly
    computed ones.
    """

    def __init__(self, path: str, digest: str):
        self.path = Path(path)
        self.config_digest = digest
        self._header_ok = False

    # ------------------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """Validated entries keyed by chunk label (empty when unusable)."""
        try:
            text = self.path.read_text()
        except OSError:
            return {}
        lines = text.splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
            usable = (
                isinstance(header, dict)
                and header.get("kind") == "study-checkpoint"
                and header.get("schema_version") == CHECKPOINT_SCHEMA_VERSION
                and header.get("config_digest") == self.config_digest
            )
        except json.JSONDecodeError:
            usable = False
        if not usable:
            log.warning(
                "checkpoint %s does not match this study (stale schema or "
                "different config); it will be restarted", self.path,
            )
            return {}
        self._header_ok = True
        entries: dict[str, dict] = {}
        torn = False
        for offset, line in enumerate(lines[1:], start=2):
            try:
                doc = json.loads(line)
                checksum = doc.pop("checksum")
                if checksum != _entry_checksum(doc):
                    raise ValueError("entry checksum mismatch")
                label = doc["label"]
            except (ValueError, KeyError, TypeError, AttributeError):
                log.warning(
                    "checkpoint %s: dropping torn tail from line %d",
                    self.path, offset,
                )
                torn = True
                break
            entries[label] = doc
        if torn:
            self._rewrite(entries)
        return entries

    # ------------------------------------------------------------------
    def record(self, label: str, records, observed, stages) -> None:
        """Journal one completed chunk (durable before returning).

        ``records`` are :class:`~repro.study.runner.PredictionRecord`
        tuples; ``observed`` maps ``(application, system, cpus)`` to
        seconds; ``stages`` is the chunk's stage-seconds breakdown.
        """
        doc = {
            "label": label,
            "records": [list(rec) for rec in records],
            "observed": [[a, s, c, v] for (a, s, c), v in observed.items()],
            "stages": dict(stages),
        }
        doc["checksum"] = _entry_checksum({k: v for k, v in doc.items()})
        try:
            if not self._header_ok:
                write_atomic(self.path, self._header_line())
                self._header_ok = True
            append_line_durable(self.path, json.dumps(doc))
        except OSError as exc:
            raise CheckpointError(
                f"cannot journal chunk {label!r} to checkpoint {self.path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def _header_line(self) -> str:
        return json.dumps(
            {
                "kind": "study-checkpoint",
                "schema_version": CHECKPOINT_SCHEMA_VERSION,
                "config_digest": self.config_digest,
            }
        ) + "\n"

    def _rewrite(self, entries: dict[str, dict]) -> None:
        """Compact the journal to header + the given valid entries."""
        lines = [self._header_line()]
        for doc in entries.values():
            full = dict(doc)
            full["checksum"] = _entry_checksum(doc)
            lines.append(json.dumps(full) + "\n")
        try:
            write_atomic(self.path, "".join(lines))
        except OSError as exc:  # pragma: no cover - compaction is best-effort
            log.warning("could not compact checkpoint %s: %s", self.path, exc)
