"""Metric cost accounting: "was the increase in accuracy worth the effort?"

Paper Section 3: MetaSim tracing dilates execution ~30x, a TI-05 test case
runs 1-4 hours uninstrumented, and full address tracing is needed only for
Metrics #6-#9 (Metrics #4/#5 read hardware counters at ~1x overhead; the
simple metrics need no application work at all).  Tracing is non-recurring
— once per (application, processor count) on the base system.

This module prices each metric's data-acquisition cost for the study
matrix and pairs it with its measured accuracy, reproducing the paper's
effort/accuracy discussion as a table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.execution import GroundTruthExecutor
from repro.core.registry import REGISTRY
from repro.scenarios import get_application, get_machine
from repro.study.runner import StudyResult

__all__ = ["MetricCost", "metric_costs", "TRACING_DILATION", "COUNTER_DILATION"]

#: MetaSim Tracer slowdown on an instrumented application (paper: ~30x).
TRACING_DILATION = 30.0
#: Hardware-counter collection overhead (paper: "more expeditious").
COUNTER_DILATION = 1.05


@dataclass(frozen=True)
class MetricCost:
    """Acquisition cost and accuracy of one metric over the study matrix.

    Attributes
    ----------
    metric:
        Table 3 metric number.
    requirement:
        ``"none"`` / ``"counters"`` / ``"tracing"``.
    acquisition_hours:
        One-off base-system machine hours to gather the application data
        (zero for simple metrics — probes are priced separately and are
        negligible next to application runs).
    mean_abs_error:
        The metric's study-wide average absolute error (%).
    """

    metric: int
    requirement: str
    acquisition_hours: float
    mean_abs_error: float

    @property
    def error_reduction_per_hour(self) -> float:
        """Percentage points of error removed (vs. HPL's 63-class baseline)
        per acquisition hour; infinity for free metrics that improve at all."""
        baseline = 63.0
        gain = max(baseline - self.mean_abs_error, 0.0)
        if self.acquisition_hours == 0.0:
            return float("inf") if gain > 0 else 0.0
        return gain / self.acquisition_hours


def _base_run_hours(result: StudyResult) -> float:
    """Uninstrumented base-system hours for one pass over the study matrix."""
    base = get_machine(result.config.base_system)
    executor = GroundTruthExecutor(base, noise=False)
    total = 0.0
    for label in result.config.applications:
        app = get_application(label)
        for cpus in app.cpu_counts:
            if cpus <= base.cpus:
                total += executor.run(app, cpus).total_seconds
    return total / 3600.0


def metric_costs(result: StudyResult) -> list[MetricCost]:
    """Cost/accuracy rows for every metric in ``result``.

    The tracing cost is charged once (it is reused by every tracing-based
    metric, as the paper notes), so Metrics #6-#9 share the same figure.
    """
    base_hours = _base_run_hours(result)
    overall = result.overall_table()
    rows = []
    for metric in result.config.metrics:
        # Derived from the metric's registry spec: probe-only metrics need
        # no application-side machinery, convolver metrics need counters,
        # and per-block memory signatures (gups/maps/dep terms) need the
        # full MetaSim tracer.  User-registered metrics price themselves.
        req = REGISTRY.spec(metric).requirement
        if req == "none":
            hours = 0.0
        elif req == "counters":
            hours = base_hours * COUNTER_DILATION
        else:
            hours = base_hours * TRACING_DILATION
        rows.append(
            MetricCost(
                metric=metric,
                requirement=req,
                acquisition_hours=hours,
                mean_abs_error=overall[metric].mean_abs,
            )
        )
    return rows
