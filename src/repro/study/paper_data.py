"""Numbers published in the paper, transcribed for side-by-side comparison.

Sources (all from the SC'05 paper):

* :data:`PAPER_TABLE4` — Table 4, average absolute error and standard
  deviation per metric over all 150 runs.
* :data:`PAPER_TABLE5` — Table 5, per-system average absolute error per
  metric (the OVERALL row equals Table 4's error column).
* :data:`PAPER_BALANCED_RATING` — Section 4's IDC balanced-rating results.
* :data:`PAPER_RUNTIMES` — Appendix Tables 6-10, observed times-to-solution
  in seconds (``None`` marks the blank cells of the paper).
* :data:`PAPER_METRIC_NAMES` — Table 3's metric descriptions.

These values are *reference targets*: the reproduction is judged on shape
(orderings, rough factors, crossovers), not on matching them exactly —
see EXPERIMENTS.md.
"""

from __future__ import annotations

__all__ = [
    "PAPER_METRIC_NAMES",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_BALANCED_RATING",
    "PAPER_RUNTIMES",
    "PAPER_SYSTEM_ORDER",
]

#: Table 3 — metric number -> (type, description).
PAPER_METRIC_NAMES: dict[int, tuple[str, str]] = {
    1: ("simple", "HPL"),
    2: ("simple", "STREAM"),
    3: ("simple", "GUPS"),
    4: ("predictive", "HPL"),
    5: ("predictive", "HPL+STREAM"),
    6: ("predictive", "HPL+STREAM+GUPS"),
    7: ("predictive", "HPL+MAPS"),
    8: ("predictive", "HPL+MAPS+NET"),
    9: ("predictive", "HPL+MAPS+NET+DEP"),
}

#: Table 4 — metric number -> (average absolute error %, standard deviation %).
PAPER_TABLE4: dict[int, tuple[float, float]] = {
    1: (63.0, 68.0),
    2: (43.0, 73.0),
    3: (33.0, 27.0),
    4: (63.0, 68.0),
    5: (50.0, 72.0),
    6: (22.0, 18.0),
    7: (24.0, 21.0),
    8: (22.0, 18.0),
    9: (18.0, 18.0),
}

#: Row order of Table 5 (and of the appendix tables).
PAPER_SYSTEM_ORDER: tuple[str, ...] = (
    "ERDC_O3800",
    "MHPCC_P3",
    "NAVO_P3",
    "ASC_SC45",
    "MHPCC_690_1.3",
    "ARL_690_1.7",
    "ARL_Xeon",
    "ARL_Altix",
    "NAVO_655",
    "ARL_Opteron",
)

#: Table 5 — system -> average absolute error % for metrics 1..9.
PAPER_TABLE5: dict[str, tuple[float, ...]] = {
    "ERDC_O3800": (37, 12, 83, 37, 84, 35, 29, 20, 22),
    "MHPCC_P3": (58, 53, 19, 58, 52, 14, 29, 24, 25),
    "NAVO_P3": (37, 77, 28, 37, 75, 8, 15, 10, 7),
    "ASC_SC45": (167, 14, 59, 167, 15, 31, 28, 18, 16),
    "MHPCC_690_1.3": (122, 14, 14, 122, 13, 15, 17, 29, 24),
    "ARL_690_1.7": (26, 21, 21, 26, 21, 22, 23, 34, 28),
    "ARL_Xeon": (42, 37, 23, 42, 37, 21, 64, 39, 21),
    "ARL_Altix": (193, 281, 64, 193, 272, 36, 25, 27, 26),
    "NAVO_655": (19, 12, 19, 19, 12, 14, 16, 14, 9),
    "ARL_Opteron": (20, 29, 45, 20, 27, 44, 30, 32, 26),
}

#: Table 4's OVERALL row (identical to the last row of Table 5).
PAPER_TABLE5_OVERALL: tuple[float, ...] = (63, 43, 33, 63, 50, 22, 24, 22, 18)

#: Section 4 — balanced-rating average absolute error and weights.
PAPER_BALANCED_RATING = {
    "equal_weights": {"error": 35.0, "std": 25.0, "weights": (1 / 3, 1 / 3, 1 / 3)},
    "optimised": {"error": 33.0, "std": 30.0, "weights": (0.05, 0.50, 0.45)},
}

#: Appendix Tables 6-10 — application -> (cpu counts, {system: times}).
#: ``None`` marks cells the paper leaves blank (not run / exceeded system).
PAPER_RUNTIMES: dict[str, dict] = {
    "AVUS-standard": {
        "cpu_counts": (32, 64, 128),
        "times": {
            "ERDC_O3800": (12737, 5881, 2733),
            "MHPCC_P3": (15051, 8354, 3779),
            "NAVO_P3": (18195, 8601, 3870),
            "ASC_SC45": (6993, 3334, 1617),
            "MHPCC_690_1.3": (10286, 4932, 2368),
            "ARL_690_1.7": (8625, 4466, 1935),
            "ARL_Xeon": (9115, 4686, 2422),
            "ARL_Altix": (5872, 2842, None),
            "NAVO_655": (6703, 3115, 1460),
            "ARL_Opteron": (5527, 2747, 1401),
        },
    },
    "AVUS-large": {
        "cpu_counts": (128, 256, 384),
        "times": {
            "ERDC_O3800": (18103, 8577, 5736),
            "MHPCC_P3": (40177, 12123, 7706),
            "NAVO_P3": (26362, 12379, 8042),
            "ASC_SC45": (10412, 5199, 3394),
            "MHPCC_690_1.3": (14751, 7591, None),
            "ARL_690_1.7": (12718, None, None),
            "ARL_Xeon": (13654, 6890, None),
            "ARL_Altix": (None, None, None),
            "NAVO_655": (9844, 4576, 2949),
            "ARL_Opteron": (8599, 4273, 2884),
        },
    },
    "HYCOM-standard": {
        "cpu_counts": (59, 96, 124),
        "times": {
            "ERDC_O3800": (6619, 4329, 4449),
            "MHPCC_P3": (10453, 3912, 2992),
            "NAVO_P3": (7129, 4420, 3348),
            "ASC_SC45": (3594, 2469, 1949),
            "MHPCC_690_1.3": (3532, 2939, 2661),
            "ARL_690_1.7": (2586, 1675, 1510),
            "ARL_Xeon": (3705, 2504, 1991),
            "ARL_Altix": (2263, 1462, 1176),
            "NAVO_655": (2010, 1281, 990),
            "ARL_Opteron": (1936, 1268, 1031),
        },
    },
    "OVERFLOW2-standard": {
        "cpu_counts": (32, 48, 64),
        "times": {
            "ERDC_O3800": (10875, 8008, 5497),
            "MHPCC_P3": (14939, None, 7371),
            "NAVO_P3": (14939, None, 7371),
            "ASC_SC45": (6329, None, 4109),
            "MHPCC_690_1.3": (9156, None, 4701),
            "ARL_690_1.7": (None, None, None),
            "ARL_Xeon": (None, None, None),
            "ARL_Altix": (3143, 2389, 1730),
            "NAVO_655": (5454, 4031, 2908),
            "ARL_Opteron": (None, None, None),
        },
    },
    "RFCTH-standard": {
        "cpu_counts": (16, 32, 64),
        "times": {
            "ERDC_O3800": (6182, 3268, 1793),
            "MHPCC_P3": (6557, 3475, 1869),
            "NAVO_P3": (6557, 3475, 1869),
            "ASC_SC45": (3134, 2170, 1005),
            "MHPCC_690_1.3": (2777, 1813, 1275),
            "ARL_690_1.7": (2154, 1660, 5156),
            "ARL_Xeon": (4203, 2308, 1368),
            "ARL_Altix": (None, 1122, 614),
            "NAVO_655": (1982, 1075, 607),
            "ARL_Opteron": (1882, 1072, 671),
        },
    },
}
