"""Full-study runner: the paper's 150-run, 1350-prediction experiment.

For every (application test case, processor count, target system) cell the
runner simulates the "real" execution (ground truth), applies all nine
metrics, and records signed/absolute errors per Equation 2.  Cells the
paper leaves blank — processor counts exceeding a system's size — are
skipped the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.apps.execution import GroundTruthExecutor
from repro.apps.suite import APPLICATIONS, get_application
from repro.core.errors import ErrorSummary, signed_error, summarise
from repro.core.metrics import ALL_METRICS, PredictionContext
from repro.core.predictor import PerformancePredictor
from repro.machines.registry import BASE_SYSTEM, TARGET_SYSTEMS, get_machine
from repro.tracing.metasim import DEFAULT_SAMPLE_SIZE

__all__ = ["StudyConfig", "PredictionRecord", "StudyResult", "run_study"]


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of a study run.

    The defaults reproduce the paper's setup exactly; ablation benches
    construct variants (``noise=False``, ``mode="absolute"``, coarser
    tracer sampling, ...).
    """

    applications: tuple[str, ...] = tuple(APPLICATIONS)
    systems: tuple[str, ...] = TARGET_SYSTEMS
    base_system: str = BASE_SYSTEM
    metrics: tuple[int, ...] = tuple(ALL_METRICS)
    mode: str = "relative"
    sample_size: int = DEFAULT_SAMPLE_SIZE
    noise: bool = True

    def variant(self, **changes) -> "StudyConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class PredictionRecord:
    """One (run, metric) outcome.

    Attributes
    ----------
    application, cpus, system, metric:
        Cell identity.
    actual_seconds, predicted_seconds:
        Ground truth and the metric's estimate.
    error_percent:
        Signed Equation 2 error.
    """

    application: str
    cpus: int
    system: str
    metric: int
    actual_seconds: float
    predicted_seconds: float
    error_percent: float

    @property
    def abs_error_percent(self) -> float:
        """Magnitude of the signed error."""
        return abs(self.error_percent)


@dataclass
class StudyResult:
    """All records of one study run plus aggregation helpers."""

    config: StudyConfig
    records: list[PredictionRecord]
    observed: dict[tuple[str, str, int], float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(
        self,
        *,
        metric: int | None = None,
        system: str | None = None,
        application: str | None = None,
        cpus: int | None = None,
    ) -> list[PredictionRecord]:
        """Records matching every given filter."""
        out = []
        for rec in self.records:
            if metric is not None and rec.metric != metric:
                continue
            if system is not None and rec.system != system:
                continue
            if application is not None and rec.application != application:
                continue
            if cpus is not None and rec.cpus != cpus:
                continue
            out.append(rec)
        return out

    def errors(self, **filters) -> list[float]:
        """Signed errors of the selected records."""
        return [rec.error_percent for rec in self.select(**filters)]

    # ------------------------------------------------------------------
    # aggregations mirroring the paper
    # ------------------------------------------------------------------
    def metric_summary(self, metric: int) -> ErrorSummary:
        """Table 4 row: error summary of one metric over all runs."""
        return summarise(self.errors(metric=metric))

    def overall_table(self) -> dict[int, ErrorSummary]:
        """Table 4: per-metric summaries."""
        return {m: self.metric_summary(m) for m in self.config.metrics}

    def system_table(self) -> dict[str, dict[int, float]]:
        """Table 5: system -> metric -> average absolute error."""
        table: dict[str, dict[int, float]] = {}
        for system in self.config.systems:
            row = {}
            for m in self.config.metrics:
                errs = self.errors(metric=m, system=system)
                row[m] = float(np.mean(np.abs(errs))) if errs else float("nan")
            table[system] = row
        return table

    def app_case_errors(self, application: str) -> dict[int, dict[int, float]]:
        """Figures 3-7 series: cpus -> metric -> average absolute error."""
        app = get_application(application)
        out: dict[int, dict[int, float]] = {}
        for cpus in app.cpu_counts:
            row = {}
            for m in self.config.metrics:
                errs = self.errors(metric=m, application=application, cpus=cpus)
                row[m] = float(np.mean(np.abs(errs))) if errs else float("nan")
            out[cpus] = row
        return out

    def observed_times(self, application: str) -> dict[str, list[float | None]]:
        """Appendix table: system -> times at the app's cpu counts."""
        app = get_application(application)
        out: dict[str, list[float | None]] = {}
        for system in self.config.systems:
            out[system] = [
                self.observed.get((application, system, cpus)) for cpus in app.cpu_counts
            ]
        return out

    @property
    def n_runs(self) -> int:
        """Number of observed executions (150 in the paper's full matrix)."""
        return len(self.observed)

    @property
    def n_predictions(self) -> int:
        """Number of predictions (1350 in the paper's full matrix)."""
        return len(self.records)


def run_study(config: StudyConfig | None = None) -> StudyResult:
    """Run the complete study described by ``config`` (defaults: the paper's).

    Skips (system, cpus) cells where the processor count exceeds the
    installed system size, as the paper's blank appendix cells do.
    """
    cfg = config or StudyConfig()
    predictor = PerformancePredictor(
        cfg.base_system,
        mode=cfg.mode,
        sample_size=cfg.sample_size,
        noise=cfg.noise,
    )
    metrics = [ALL_METRICS[m] for m in cfg.metrics]
    records: list[PredictionRecord] = []
    observed: dict[tuple[str, str, int], float] = {}

    for label in cfg.applications:
        app = get_application(label)
        for system in cfg.systems:
            machine = get_machine(system)
            executor = GroundTruthExecutor(machine, noise=cfg.noise)
            for cpus in app.cpu_counts:
                if cpus > machine.cpus:
                    continue  # paper leaves these cells blank
                actual = executor.run(app, cpus).total_seconds
                observed[(label, system, cpus)] = actual
                ctx: PredictionContext = predictor.context(app, machine, cpus)
                for metric in metrics:
                    predicted = metric.predict(ctx)
                    records.append(
                        PredictionRecord(
                            application=label,
                            cpus=cpus,
                            system=system,
                            metric=metric.number,
                            actual_seconds=actual,
                            predicted_seconds=predicted,
                            error_percent=signed_error(predicted, actual),
                        )
                    )
    return StudyResult(config=cfg, records=records, observed=observed)
