"""Full-study runner: the paper's 150-run, 1350-prediction experiment.

For every (application test case, processor count, target system) cell the
runner simulates the "real" execution (ground truth), applies all nine
metrics, and records signed/absolute errors per Equation 2.  Cells the
paper leaves blank — processor counts exceeding a system's size — are
skipped the same way.

The engine is built for throughput:

* each (application, cpus) row is traced once and priced against **all**
  eligible systems through the metrics' batch path
  (:meth:`~repro.core.metrics.Metric.predict_many`), so no cell re-loops
  scalar block math;
* ``workers=N`` fans the embarrassingly-parallel cells out over a process
  pool, chunked by (application, system), and merges results in canonical
  order — every RNG draw is seed-stable, so parallel output is
  byte-identical to serial;
* an opt-in :class:`~repro.tracing.store.TraceStore` persists traces and
  probe results on disk, letting repeated studies, ablations and fresh
  worker processes skip the non-recurring costs entirely.
"""

from __future__ import annotations

import os
from collections import defaultdict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.apps.execution import GroundTruthExecutor
from repro.apps.suite import APPLICATIONS, get_application
from repro.core.errors import ErrorSummary, signed_error, summarise
from repro.core.metrics import ALL_METRICS
from repro.machines.registry import BASE_SYSTEM, TARGET_SYSTEMS, get_machine
from repro.probes.suite import probe_machine
from repro.tracing.metasim import DEFAULT_SAMPLE_SIZE, trace_application
from repro.tracing.store import TraceStore

__all__ = ["StudyConfig", "PredictionRecord", "StudyResult", "run_study"]


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of a study run.

    The defaults reproduce the paper's setup exactly; ablation benches
    construct variants (``noise=False``, ``mode="absolute"``, coarser
    tracer sampling, ...).
    """

    applications: tuple[str, ...] = tuple(APPLICATIONS)
    systems: tuple[str, ...] = TARGET_SYSTEMS
    base_system: str = BASE_SYSTEM
    metrics: tuple[int, ...] = tuple(ALL_METRICS)
    mode: str = "relative"
    sample_size: int = DEFAULT_SAMPLE_SIZE
    noise: bool = True

    def variant(self, **changes) -> "StudyConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class PredictionRecord:
    """One (run, metric) outcome.

    Attributes
    ----------
    application, cpus, system, metric:
        Cell identity.
    actual_seconds, predicted_seconds:
        Ground truth and the metric's estimate.
    error_percent:
        Signed Equation 2 error.
    """

    application: str
    cpus: int
    system: str
    metric: int
    actual_seconds: float
    predicted_seconds: float
    error_percent: float

    @property
    def abs_error_percent(self) -> float:
        """Magnitude of the signed error."""
        return abs(self.error_percent)


@dataclass
class StudyResult:
    """All records of one study run plus aggregation helpers."""

    config: StudyConfig
    records: list[PredictionRecord]
    observed: dict[tuple[str, str, int], float] = field(default_factory=dict)
    _select_index: dict[str, dict] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _select_index_len: int = field(default=-1, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def _ensure_index(self) -> dict[str, dict]:
        """Lazily build (and rebuild after mutation) the per-field indexes.

        Table/figure builders query ``select`` once per metric x system x
        cpus cell; four inverted indexes replace each O(n_records) scan
        with a short intersection of posting lists.
        """
        if self._select_index is not None and self._select_index_len == len(self.records):
            return self._select_index
        index: dict[str, dict] = {
            "metric": defaultdict(list),
            "system": defaultdict(list),
            "application": defaultdict(list),
            "cpus": defaultdict(list),
        }
        for i, rec in enumerate(self.records):
            index["metric"][rec.metric].append(i)
            index["system"][rec.system].append(i)
            index["application"][rec.application].append(i)
            index["cpus"][rec.cpus].append(i)
        self._select_index = index
        self._select_index_len = len(self.records)
        return index

    def select(
        self,
        *,
        metric: int | None = None,
        system: str | None = None,
        application: str | None = None,
        cpus: int | None = None,
    ) -> list[PredictionRecord]:
        """Records matching every given filter, in record order."""
        active = [
            (name, value)
            for name, value in (
                ("metric", metric),
                ("system", system),
                ("application", application),
                ("cpus", cpus),
            )
            if value is not None
        ]
        if not active:
            return list(self.records)
        index = self._ensure_index()
        postings = []
        for name, value in active:
            posting = index[name].get(value)
            if not posting:
                return []
            postings.append(posting)
        postings.sort(key=len)
        others = [set(posting) for posting in postings[1:]]
        records = self.records
        return [
            records[i]
            for i in postings[0]
            if all(i in other for other in others)
        ]

    def errors(self, **filters) -> list[float]:
        """Signed errors of the selected records."""
        return [rec.error_percent for rec in self.select(**filters)]

    # ------------------------------------------------------------------
    # aggregations mirroring the paper
    # ------------------------------------------------------------------
    def metric_summary(self, metric: int) -> ErrorSummary:
        """Table 4 row: error summary of one metric over all runs."""
        return summarise(self.errors(metric=metric))

    def overall_table(self) -> dict[int, ErrorSummary]:
        """Table 4: per-metric summaries."""
        return {m: self.metric_summary(m) for m in self.config.metrics}

    def system_table(self) -> dict[str, dict[int, float]]:
        """Table 5: system -> metric -> average absolute error."""
        table: dict[str, dict[int, float]] = {}
        for system in self.config.systems:
            row = {}
            for m in self.config.metrics:
                errs = self.errors(metric=m, system=system)
                row[m] = float(np.mean(np.abs(errs))) if errs else float("nan")
            table[system] = row
        return table

    def app_case_errors(self, application: str) -> dict[int, dict[int, float]]:
        """Figures 3-7 series: cpus -> metric -> average absolute error."""
        app = get_application(application)
        out: dict[int, dict[int, float]] = {}
        for cpus in app.cpu_counts:
            row = {}
            for m in self.config.metrics:
                errs = self.errors(metric=m, application=application, cpus=cpus)
                row[m] = float(np.mean(np.abs(errs))) if errs else float("nan")
            out[cpus] = row
        return out

    def observed_times(self, application: str) -> dict[str, list[float | None]]:
        """Appendix table: system -> times at the app's cpu counts."""
        app = get_application(application)
        out: dict[str, list[float | None]] = {}
        for system in self.config.systems:
            out[system] = [
                self.observed.get((application, system, cpus)) for cpus in app.cpu_counts
            ]
        return out

    @property
    def n_runs(self) -> int:
        """Number of observed executions (150 in the paper's full matrix)."""
        return len(self.observed)

    @property
    def n_predictions(self) -> int:
        """Number of predictions (1350 in the paper's full matrix)."""
        return len(self.records)


# ---------------------------------------------------------------------------
# execution engine
# ---------------------------------------------------------------------------


def _run_submatrix(
    cfg: StudyConfig,
    labels: tuple[str, ...],
    systems: tuple[str, ...],
    store: TraceStore | None,
) -> tuple[list[PredictionRecord], dict[tuple[str, str, int], float]]:
    """Compute the (labels x systems) block of the study matrix.

    Each (application, cpus) row is traced once and priced against all
    eligible systems per metric in one :meth:`predict_many` batch; records
    are then emitted in the canonical (application, system, cpus, metric)
    order.  Per-system results are independent, so any partition of the
    matrix produces the same records cell-for-cell.
    """
    base_machine = get_machine(cfg.base_system)
    base_probes = probe_machine(base_machine, store=store)
    base_executor = GroundTruthExecutor(base_machine, noise=cfg.noise)
    machines = {system: get_machine(system) for system in systems}
    executors = {
        system: GroundTruthExecutor(machine, noise=cfg.noise)
        for system, machine in machines.items()
    }
    probes = {system: probe_machine(machine, store=store) for system, machine in machines.items()}
    metrics = [ALL_METRICS[m] for m in cfg.metrics]

    actuals: dict[tuple[str, str, int], float] = {}
    predictions: dict[tuple[str, str, int, int], float] = {}
    for label in labels:
        app = get_application(label)
        for cpus in app.cpu_counts:
            eligible = [s for s in systems if cpus <= machines[s].cpus]
            if not eligible:
                continue  # paper leaves these cells blank
            for system in eligible:
                actuals[(label, system, cpus)] = executors[system].run(app, cpus).total_seconds
            trace = trace_application(app, cpus, base_machine, cfg.sample_size, store=store)
            base_time = base_executor.run(app, cpus).total_seconds
            probes_row = [probes[system] for system in eligible]
            for metric in metrics:
                predicted_row = metric.predict_many(
                    trace, probes_row, base_probes, base_time, cfg.mode
                )
                for system, predicted in zip(eligible, predicted_row):
                    predictions[(label, system, cpus, metric.number)] = predicted

    records: list[PredictionRecord] = []
    observed: dict[tuple[str, str, int], float] = {}
    for label in labels:
        app = get_application(label)
        for system in systems:
            machine = machines[system]
            for cpus in app.cpu_counts:
                if cpus > machine.cpus:
                    continue
                actual = actuals[(label, system, cpus)]
                observed[(label, system, cpus)] = actual
                for metric in metrics:
                    predicted = predictions[(label, system, cpus, metric.number)]
                    records.append(
                        PredictionRecord(
                            application=label,
                            cpus=cpus,
                            system=system,
                            metric=metric.number,
                            actual_seconds=actual,
                            predicted_seconds=predicted,
                            error_percent=signed_error(predicted, actual),
                        )
                    )
    return records, observed


def _run_chunk(cfg: StudyConfig, label: str, system: str, store_root: str | None):
    """Worker entry point: one (application, system) chunk of the matrix."""
    store = TraceStore(store_root) if store_root else None
    return _run_submatrix(cfg, (label,), (system,), store)


def _resolve_store(
    store: "TraceStore | str | os.PathLike | None",
) -> tuple[TraceStore | None, str | None]:
    """Normalise the ``store`` argument to (instance, root path)."""
    if store is None:
        return None, None
    if isinstance(store, TraceStore):
        return store, str(store.root)
    return TraceStore(store), str(store)


def run_study(
    config: StudyConfig | None = None,
    *,
    workers: int = 1,
    store: "TraceStore | str | os.PathLike | None" = None,
) -> StudyResult:
    """Run the complete study described by ``config`` (defaults: the paper's).

    Skips (system, cpus) cells where the processor count exceeds the
    installed system size, as the paper's blank appendix cells do.

    Parameters
    ----------
    config:
        Study parameters; the paper's full matrix when omitted.
    workers:
        Processes to fan the matrix out over.  Cells are chunked by
        (application, system) and merged in canonical order; because every
        stochastic input is seed-stable, the result is byte-identical to a
        serial run.
    store:
        Optional persistent trace/probe cache — a
        :class:`~repro.tracing.store.TraceStore` or a directory path.
        Warm stores let repeated studies and worker processes skip
        re-tracing entirely.
    """
    cfg = config or StudyConfig()
    store_obj, store_root = _resolve_store(store)
    if workers <= 1:
        records, observed = _run_submatrix(cfg, cfg.applications, cfg.systems, store_obj)
        return StudyResult(config=cfg, records=records, observed=observed)

    chunk_results: dict[tuple[str, str], tuple] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_run_chunk, cfg, label, system, store_root): (label, system)
            for label in cfg.applications
            for system in cfg.systems
        }
        for future, key in futures.items():
            chunk_results[key] = future.result()

    records = []
    observed = {}
    for label in cfg.applications:
        for system in cfg.systems:
            chunk_records, chunk_observed = chunk_results[(label, system)]
            records.extend(chunk_records)
            observed.update(chunk_observed)
    return StudyResult(config=cfg, records=records, observed=observed)
