"""Full-study runner: the paper's 150-run, 1350-prediction experiment.

For every (application test case, processor count, target system) cell the
runner simulates the "real" execution (ground truth), applies all nine
metrics, and records signed/absolute errors per Equation 2.  Cells the
paper leaves blank — processor counts exceeding a system's size — are
skipped the same way.

The engine is built for throughput:

* each (application, cpus) row is traced once and priced against **all**
  eligible systems through the metrics' batch path
  (:meth:`~repro.core.metrics.Metric.predict_many`), so no cell re-loops
  scalar block math;
* ``workers=N`` fans the embarrassingly-parallel cells out over a
  persistent, probe-warmed process pool, chunked by application row so
  each trace stays in the worker that prices it, and merges results in
  canonical order — every RNG draw is seed-stable, so parallel output is
  byte-identical to serial; matrices under :data:`PARALLEL_MIN_CELLS`
  cells stay serial, so fan-out never loses to a serial run;
* an opt-in :class:`~repro.tracing.store.TraceStore` persists traces and
  probe results on disk, letting repeated studies, ablations and fresh
  worker processes skip the non-recurring costs entirely.
"""

from __future__ import annotations

import atexit
import os
from collections import defaultdict
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.errors import (
    ChunkTimeoutError,
    DeadlineExceededError,
    ErrorSummary,
    StudyAbortedError,
    WorkerCrashError,
    summarise,
)
from repro.core.options import CacheModel, Mode
from repro.core.registry import REGISTRY
from repro.engine import Engine, MatrixPlan, PredictionRecord
from repro.scenarios import (
    BASE_SYSTEM,
    CATALOG,
    TARGET_SYSTEMS,
    get_application,
    get_machine,
)
from repro.scenarios.builtin import builtin_applications
from repro.probes.suite import probe_machine
from repro.study.resilience import (
    CellFailure,
    StudyCheckpoint,
    backoff_seconds,
    classify_failure,
    config_digest,
)
from repro.tracing.metasim import DEFAULT_SAMPLE_SIZE
from repro.tracing.store import TraceStore
from repro.util.clock import Clock, as_clock
from repro.util.deadline import Deadline
from repro.util.timing import StageTimer

__all__ = [
    "StudyConfig",
    "PredictionRecord",
    "StudyResult",
    "CellFailure",
    "run_study",
    "shutdown_pool",
    "clear_study_caches",
    "PARALLEL_MIN_CELLS",
]


def clear_study_caches() -> None:
    """Drop every in-process memo the study path reads through.

    Traces, probe bundles, shared executors (with their run_many memos)
    and the engine's row-level convolve memo — the full warm state.  The
    bench harness calls this to measure genuinely cold passes; anything
    less leaves one of the layered caches warm and under-reports cost.
    """
    from repro.apps.execution import clear_execution_cache
    from repro.engine.core import clear_row_cache
    from repro.probes.suite import clear_probe_cache
    from repro.tracing.metasim import clear_trace_cache

    clear_trace_cache()
    clear_probe_cache()
    clear_execution_cache()
    clear_row_cache()

#: Below this many (application, cpus, system) cells a study runs serially
#: even when ``workers > 1``: fan-out overhead (chunk pickling, result
#: transfer) exceeds the compute of a small matrix, and the paper's own
#: 145-cell matrix sits under it.  DESIGN.md §5c records the measurement.
PARALLEL_MIN_CELLS = 200


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of a study run.

    The defaults reproduce the paper's setup exactly; ablation benches
    construct variants (``noise=False``, ``mode="absolute"``, coarser
    tracer sampling, ...).  Every identifier is validated on construction:
    an unknown application label, system name, metric number, mode or
    cache model raises :class:`ValueError` naming the offending key.
    """

    applications: tuple[str, ...] = tuple(builtin_applications())
    systems: tuple[str, ...] = TARGET_SYSTEMS
    base_system: str = BASE_SYSTEM
    metrics: tuple = tuple(spec.number for spec in REGISTRY.table3())
    mode: str = "relative"
    sample_size: int = DEFAULT_SAMPLE_SIZE
    noise: bool = True
    cache_model: str = "analytic"
    #: Engine resilience knobs (identity-neutral: they never change study
    #: output, only how hard the engine fights to produce it, so they are
    #: excluded from the checkpoint's config digest).
    max_retries: int = 2
    chunk_timeout: float | None = None

    def __post_init__(self) -> None:
        for label in self.applications:
            if not CATALOG.has_application(label):
                known = ", ".join(CATALOG.application_ids())
                raise ValueError(
                    f"unknown application {label!r} in StudyConfig.applications; "
                    f"known: {known}"
                )
        for system in self.systems:
            if not CATALOG.has_machine(system):
                known = ", ".join(CATALOG.machine_ids())
                raise ValueError(
                    f"unknown system {system!r} in StudyConfig.systems; known: {known}"
                )
        if not CATALOG.has_machine(self.base_system):
            known = ", ".join(CATALOG.machine_ids())
            raise ValueError(
                f"unknown base system {self.base_system!r}; known: {known}"
            )
        resolved = []
        for key in self.metrics:
            try:
                resolved.append(REGISTRY.spec(key).number)
            except KeyError:
                known = ", ".join(
                    str(n) for n in REGISTRY.numbers()
                ) + ", " + ", ".join(REGISTRY.names())
                raise ValueError(
                    f"unknown metric {key!r} in StudyConfig.metrics; known: {known}"
                ) from None
        # Normalised to registry numbers so records, checkpoints and the
        # config digest are name/number agnostic.
        object.__setattr__(self, "metrics", tuple(resolved))
        object.__setattr__(self, "mode", Mode.coerce(self.mode))
        object.__setattr__(self, "cache_model", CacheModel.coerce(self.cache_model))
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError(
                f"chunk_timeout must be > 0 seconds, got {self.chunk_timeout!r}"
            )

    def variant(self, **changes) -> "StudyConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


# PredictionRecord is defined beside the engine that emits it
# (repro.engine.plan) and re-exported here for its historical home.


@dataclass
class StudyResult:
    """All records of one study run plus aggregation helpers.

    A result can be *partial*: chunks that exhausted their retries under
    the fault-tolerant engine are quarantined into :attr:`failures`
    instead of aborting the study, and every aggregation below tolerates
    the missing cells (empty selections summarise to NaN/0-count).
    """

    config: StudyConfig
    records: list[PredictionRecord]
    observed: dict[tuple[str, str, int], float] = field(default_factory=dict)
    #: Quarantined chunks — one :class:`~repro.study.resilience.CellFailure`
    #: per application row whose retries were exhausted, in canonical
    #: application order.  Empty for a fully successful study.
    failures: list[CellFailure] = field(default_factory=list)
    #: Wall-clock seconds per pipeline stage (probe / trace / cache_model /
    #: execute / convolve); parallel runs sum the workers' breakdowns, so
    #: stage seconds can exceed the run's wall time.  Diagnostic only —
    #: excluded from equality.
    stage_seconds: dict[str, float] = field(default_factory=dict, compare=False)
    _select_index: dict[str, dict] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _select_index_len: int = field(default=-1, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def _ensure_index(self) -> dict[str, dict]:
        """Lazily build (and rebuild after mutation) the per-field indexes.

        Table/figure builders query ``select`` once per metric x system x
        cpus cell; four inverted indexes replace each O(n_records) scan
        with a short intersection of posting lists.
        """
        if self._select_index is not None and self._select_index_len == len(self.records):
            return self._select_index
        index: dict[str, dict] = {
            "metric": defaultdict(list),
            "system": defaultdict(list),
            "application": defaultdict(list),
            "cpus": defaultdict(list),
        }
        for i, rec in enumerate(self.records):
            index["metric"][rec.metric].append(i)
            index["system"][rec.system].append(i)
            index["application"][rec.application].append(i)
            index["cpus"][rec.cpus].append(i)
        self._select_index = index
        self._select_index_len = len(self.records)
        return index

    def select(
        self,
        *,
        metric: int | None = None,
        system: str | None = None,
        application: str | None = None,
        cpus: int | None = None,
    ) -> list[PredictionRecord]:
        """Records matching every given filter, in record order."""
        active = [
            (name, value)
            for name, value in (
                ("metric", metric),
                ("system", system),
                ("application", application),
                ("cpus", cpus),
            )
            if value is not None
        ]
        if not active:
            return list(self.records)
        index = self._ensure_index()
        postings = []
        for name, value in active:
            posting = index[name].get(value)
            if not posting:
                return []
            postings.append(posting)
        postings.sort(key=len)
        others = [set(posting) for posting in postings[1:]]
        records = self.records
        return [
            records[i]
            for i in postings[0]
            if all(i in other for other in others)
        ]

    def errors(self, **filters) -> list[float]:
        """Signed errors of the selected records."""
        return [rec.error_percent for rec in self.select(**filters)]

    # ------------------------------------------------------------------
    # aggregations mirroring the paper
    # ------------------------------------------------------------------
    def metric_summary(self, metric: int) -> ErrorSummary:
        """Table 4 row: error summary of one metric over all runs.

        Quarantine-tolerant: when every cell of a metric is missing (all
        of its chunks failed), the summary is NaN with ``count=0`` rather
        than an exception, so partial studies still render their tables.
        """
        errs = self.errors(metric=metric)
        if not errs:
            nan = float("nan")
            return ErrorSummary(mean_abs=nan, std_abs=nan, mean_signed=nan, count=0)
        return summarise(errs)

    def overall_table(self) -> dict[int, ErrorSummary]:
        """Table 4: per-metric summaries."""
        return {m: self.metric_summary(m) for m in self.config.metrics}

    def system_table(self) -> dict[str, dict[int, float]]:
        """Table 5: system -> metric -> average absolute error."""
        table: dict[str, dict[int, float]] = {}
        for system in self.config.systems:
            row = {}
            for m in self.config.metrics:
                errs = self.errors(metric=m, system=system)
                row[m] = float(np.mean(np.abs(errs))) if errs else float("nan")
            table[system] = row
        return table

    def app_case_errors(self, application: str) -> dict[int, dict[int, float]]:
        """Figures 3-7 series: cpus -> metric -> average absolute error."""
        app = get_application(application)
        out: dict[int, dict[int, float]] = {}
        for cpus in app.cpu_counts:
            row = {}
            for m in self.config.metrics:
                errs = self.errors(metric=m, application=application, cpus=cpus)
                row[m] = float(np.mean(np.abs(errs))) if errs else float("nan")
            out[cpus] = row
        return out

    def observed_times(self, application: str) -> dict[str, list[float | None]]:
        """Appendix table: system -> times at the app's cpu counts."""
        app = get_application(application)
        out: dict[str, list[float | None]] = {}
        for system in self.config.systems:
            out[system] = [
                self.observed.get((application, system, cpus)) for cpus in app.cpu_counts
            ]
        return out

    @property
    def n_runs(self) -> int:
        """Number of observed executions (150 in the paper's full matrix)."""
        return len(self.observed)

    @property
    def n_predictions(self) -> int:
        """Number of predictions (1350 in the paper's full matrix)."""
        return len(self.records)


# ---------------------------------------------------------------------------
# execution engine
# ---------------------------------------------------------------------------


def _run_submatrix(
    cfg: StudyConfig,
    labels: tuple[str, ...],
    systems: tuple[str, ...],
    store: TraceStore | None,
    timer: StageTimer | None = None,
    deadline: Deadline | None = None,
) -> tuple[list[PredictionRecord], dict[tuple[str, str, int], float]]:
    """Compute the (labels x systems) block of the study matrix.

    Each (application, cpus) row is traced once and priced against all
    eligible systems for **all** metrics in one shot
    (:func:`~repro.core.metrics.predict_all` shares the row's rate tensors
    across metrics); records are then emitted in the canonical
    (application, system, cpus, metric) order.  Per-system results are
    independent, so any partition of the matrix produces the same records
    cell-for-cell.

    ``deadline`` makes the block cooperative: probe and trace calls
    checkpoint mid-stage and abandon the submatrix with
    :class:`~repro.core.errors.DeadlineExceededError` once the budget is
    spent (the serial resilient engine converts that into the chunk-level
    timeout taxonomy).

    A thin engine client since the staged-engine refactor: the runner
    owns dispatch (chunking, pools, retries, checkpoints) and the
    :class:`~repro.engine.Engine` owns the dataflow.
    """
    engine = Engine(
        cfg.base_system,
        mode=cfg.mode,
        sample_size=cfg.sample_size,
        noise=cfg.noise,
        cache_model=cfg.cache_model,
        store=store,
    )
    return engine.run_matrix(
        MatrixPlan(labels=labels, systems=systems, metrics=cfg.metrics),
        timer=timer,
        deadline=deadline,
    )


def _run_chunk(
    cfg: StudyConfig,
    labels: tuple[str, ...],
    store_root: str | None,
    faults=None,
    attempt: int = 0,
):
    """Worker entry point: one application-row chunk across **all** systems.

    Row chunks keep each trace in the worker that prices it (a per-cell
    chunking would re-trace the same (application, cpus) row once per
    system).  Returns the chunk's records, observed times and per-stage
    timing breakdown for the parent to merge.

    ``faults`` (a :class:`~repro.util.faults.FaultPlan`) injects this
    attempt's scheduled chaos: a stall and/or crash before the compute
    (hard crashes ``os._exit`` the worker, breaking the pool) and
    corruption of store writes.
    """
    if faults is not None:
        faults.inject_chunk_faults(labels[0], attempt, in_worker=True)
    store = TraceStore(store_root, faults=faults) if store_root else None
    timer = StageTimer()
    records, observed = _run_submatrix(cfg, labels, cfg.systems, store, timer)
    if store is not None:
        store.flush()  # a checkpointed chunk implies its entries are on disk
    return records, observed, timer.breakdown()


def _warm_worker(
    store_root: str | None,
    system_names: tuple[str, ...],
    universe_ref: str | None = None,
) -> None:
    """Pool initializer: mount the parent's universe, pre-warm probes.

    Probing is pure deterministic compute, so each fresh process used to
    redo it per chunk — the root cause of ``workers=4`` losing to serial.
    Warming once per worker makes every subsequent chunk's probe stage a
    dictionary lookup.  When the parent has a scenario universe mounted,
    its ref (a generator spec or TOML path — always resolvable from any
    process) is re-mounted here first so chunk ids resolve identically.
    """
    if universe_ref is not None:
        from repro.scenarios import mount_universe

        mount_universe(universe_ref)
    store = TraceStore(store_root) if store_root else None
    for name in system_names:
        probe_machine(get_machine(name), store=store)


#: Lazily-created persistent worker pool, keyed by (workers, store_root,
#: warmed system names).  Reused across ``run_study`` calls so repeated
#: studies (benches, notebooks) pay process spawn + warm-up once.
_POOL: ProcessPoolExecutor | None = None
_POOL_KEY: tuple | None = None


def _shutdown_pool() -> None:
    global _POOL, _POOL_KEY
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_KEY = None


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (idempotent).

    Callers that interrupt a study (the CLI's Ctrl-C handler, embedding
    applications shutting down) use this so worker processes never outlive
    the run that spawned them.
    """
    _shutdown_pool()


atexit.register(_shutdown_pool)


def _get_pool(workers: int, store_root: str | None, cfg: StudyConfig) -> ProcessPoolExecutor:
    """Return the persistent pool, (re)creating it when the key changes.

    A pool whose workers died (``BrokenProcessPool``) is detected here and
    transparently rebuilt: a broken pool used to poison ``_POOL`` for the
    rest of the session, failing every subsequent ``run_study`` call.
    """
    global _POOL, _POOL_KEY
    systems = tuple(dict.fromkeys((cfg.base_system,) + tuple(cfg.systems)))
    universe_ref = CATALOG.universe_ref
    key = (workers, store_root, systems, universe_ref)
    broken = _POOL is not None and getattr(_POOL, "_broken", False)
    if _POOL is None or _POOL_KEY != key or broken:
        _shutdown_pool()
        _POOL = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_warm_worker,
            initargs=(store_root, systems, universe_ref),
        )
        _POOL_KEY = key
    return _POOL


def _usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity (macOS)
        return os.cpu_count() or 1


def _matrix_cells(cfg: StudyConfig) -> int:
    """Number of non-blank (application, cpus, system) cells in the matrix."""
    sizes = {system: get_machine(system).cpus for system in cfg.systems}
    cells = 0
    for label in cfg.applications:
        app = get_application(label)
        for cpus in app.cpu_counts:
            cells += sum(1 for system in cfg.systems if cpus <= sizes[system])
    return cells


def _resolve_store(
    store: "TraceStore | str | os.PathLike | None",
) -> tuple[TraceStore | None, str | None]:
    """Normalise the ``store`` argument to (instance, root path)."""
    if store is None:
        return None, None
    if isinstance(store, TraceStore):
        return store, str(store.root)
    return TraceStore(store), str(store)


def run_study(
    config: StudyConfig | None = None,
    *,
    workers: int = 1,
    store: "TraceStore | str | os.PathLike | None" = None,
    min_parallel_cells: int | None = None,
    checkpoint: "str | os.PathLike | None" = None,
    faults=None,
    max_retries: int | None = None,
    chunk_timeout: float | None = None,
    clock=None,
) -> StudyResult:
    """Run the complete study described by ``config`` (defaults: the paper's).

    Skips (system, cpus) cells where the processor count exceeds the
    installed system size, as the paper's blank appendix cells do.

    Parameters
    ----------
    config:
        Study parameters; the paper's full matrix when omitted.
    workers:
        Processes to fan the matrix out over.  Rows are chunked by
        application (each worker traces a row once and prices it against
        every system) and merged in canonical order; because every
        stochastic input is seed-stable, the result is byte-identical to a
        serial run.  Two crossover guards keep ``workers=N`` from ever
        being slower than serial: matrices under
        :data:`PARALLEL_MIN_CELLS` cells run serially (fan-out overhead
        would exceed the compute), and ``workers`` is capped at the
        process's usable core count (on a single-core host every pool is
        pure overhead, so the study degrades to serial).
    store:
        Optional persistent trace/probe cache — a
        :class:`~repro.tracing.store.TraceStore` or a directory path.
        Warm stores let repeated studies and worker processes skip
        re-tracing entirely.
    min_parallel_cells:
        Override the serial-fallback crossover (tests use ``0`` to force
        the pool path on small matrices; the override also bypasses the
        core-count cap so single-core CI still exercises the pool).
    checkpoint:
        Path of the study journal
        (:class:`~repro.study.resilience.StudyCheckpoint`) — an
        event-log directory of completed-chunk events (journals from the
        legacy single-file format load and migrate transparently).  A
        study killed mid-run resumes from the last journaled chunk on
        the next call with the same path and config, and the resumed
        result is byte-identical to an uninterrupted run.  Delete the
        directory to force a full re-run.
    faults:
        Optional :class:`~repro.util.faults.FaultPlan` injecting
        deterministic chaos (worker crashes, chunk stalls, store
        corruption) — the harness that proves the retry/resume paths.
    max_retries:
        Retries per chunk before quarantine (overrides
        ``config.max_retries``).  Retries back off exponentially with
        deterministic seeded jitter and re-dispatch to a rebuilt pool when
        the previous one broke.  Chunks that exhaust retries land in
        :attr:`StudyResult.failures` instead of aborting the study.
    chunk_timeout:
        Per-chunk deadline in seconds (overrides ``config.chunk_timeout``).
        In parallel mode an overrunning chunk's wait is abandoned (the
        pool is rebuilt); in serial mode the deadline is checked after the
        chunk finishes.  Timed-out chunks retry like crashes.
    clock:
        Optional :class:`~repro.util.clock.Clock` carrying retry backoff
        sleeps, serial chunk deadlines and fault-plan stalls — the
        simulation harness passes a virtual clock so a chaos study's
        minutes of injected waiting cost no wall time.  Only honoured on
        the serial path; pool workers always run on the system clock.
    """
    cfg = config or StudyConfig()
    store_obj, store_root = _resolve_store(store)
    retries = cfg.max_retries if max_retries is None else max_retries
    deadline = cfg.chunk_timeout if chunk_timeout is None else chunk_timeout
    if retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {retries!r}")
    if deadline is not None and deadline <= 0:
        raise ValueError(f"chunk_timeout must be > 0 seconds, got {deadline!r}")
    if min_parallel_cells is None:
        floor = PARALLEL_MIN_CELLS
        workers = min(workers, _usable_cores())
    else:
        floor = min_parallel_cells
    parallel = workers > 1 and _matrix_cells(cfg) >= floor
    resilient = checkpoint is not None or faults is not None or deadline is not None
    if not parallel and not resilient:
        timer = StageTimer()
        records, observed = _run_submatrix(
            cfg, cfg.applications, cfg.systems, store_obj, timer
        )
        if store_obj is not None:
            store_obj.flush()  # deferred entry writes land before we return
        return StudyResult(
            config=cfg,
            records=records,
            observed=observed,
            stage_seconds=timer.breakdown(),
        )
    try:
        return _run_resilient(
            cfg,
            store_obj,
            store_root,
            workers if parallel else 1,
            checkpoint,
            faults,
            retries,
            deadline,
            as_clock(clock),
        )
    except KeyboardInterrupt:
        # Never strand worker processes behind an interrupted study; the
        # checkpoint (when given) already journals every completed chunk.
        _shutdown_pool()
        raise


# ---------------------------------------------------------------------------
# resilient engine: chunked execution with checkpoint, retries, quarantine
# ---------------------------------------------------------------------------


def _run_resilient(
    cfg: StudyConfig,
    store_obj: TraceStore | None,
    store_root: str | None,
    workers: int,
    checkpoint: "str | os.PathLike | None",
    faults,
    retries: int,
    deadline: float | None,
    clock: Clock,
) -> StudyResult:
    """Chunk-at-a-time study execution with the full resilience stack.

    Chunk results are partition-invariant and seed-stable, so however many
    processes, retries or resumes a study needs, the surviving chunks are
    byte-identical to a clean serial run's.
    """
    if faults is not None and store_obj is not None:
        # Rebind the caller's store with the fault plan so serial-path
        # store writes are corruptible too (workers build their own).
        store_obj = TraceStore(store_obj.root, faults=faults)

    ckpt = None
    done: dict[str, tuple[list[PredictionRecord], dict, dict]] = {}
    if checkpoint is not None:
        ckpt = StudyCheckpoint(os.fspath(checkpoint), config_digest(cfg))
        for label, entry in ckpt.load().items():
            if label not in cfg.applications:
                continue  # stale entry from a superset matrix: ignore
            done[label] = (
                [PredictionRecord(*row) for row in entry["records"]],
                {(a, s, c): v for a, s, c, v in entry["observed"]},
                dict(entry.get("stages", {})),
            )

    pending = {label: 0 for label in cfg.applications if label not in done}
    failures: list[CellFailure] = []
    completed_this_run = 0
    round_index = 0
    while pending:
        run_round = _pool_round if workers > 1 else _serial_round
        outcomes = run_round(
            cfg, pending, store_obj, store_root, faults, deadline, workers, clock
        )
        next_pending: dict[str, int] = {}
        for label, attempt in pending.items():
            outcome = outcomes[label]
            if not isinstance(outcome, BaseException):
                done[label] = outcome
                if ckpt is not None:
                    ckpt.record(label, *outcome)
                completed_this_run += 1
                if (
                    faults is not None
                    and faults.abort_after is not None
                    and completed_this_run >= faults.abort_after
                    and len(done) + len(failures) < len(cfg.applications)
                ):
                    _shutdown_pool()
                    raise StudyAbortedError(
                        f"fault injection: study aborted after "
                        f"{completed_this_run} chunk(s) this run"
                    )
                continue
            error, message = classify_failure(outcome)
            if attempt >= retries:
                failure = CellFailure(label, error, message, attempt + 1)
                failures.append(failure)
                if ckpt is not None:
                    ckpt.record_failure(failure)
            else:
                next_pending[label] = attempt + 1
        if next_pending:
            clock.sleep(
                backoff_seconds(round_index, cfg.base_system, *sorted(next_pending))
            )
        pending = next_pending
        round_index += 1

    records: list[PredictionRecord] = []
    observed: dict[tuple[str, str, int], float] = {}
    timer = StageTimer()
    for label in cfg.applications:
        if label not in done:
            continue
        chunk_records, chunk_observed, stages = done[label]
        records.extend(chunk_records)
        observed.update(chunk_observed)
        timer.merge(stages)
    order = {label: i for i, label in enumerate(cfg.applications)}
    failures.sort(key=lambda f: order[f.application])
    if store_obj is not None:
        store_obj.flush()
    return StudyResult(
        config=cfg,
        records=records,
        observed=observed,
        failures=failures,
        stage_seconds=timer.breakdown(),
    )


def _serial_round(
    cfg: StudyConfig,
    attempts: dict[str, int],
    store_obj: TraceStore | None,
    store_root: str | None,
    faults,
    deadline: float | None,
    workers: int,
    clock: "Clock | None" = None,
) -> dict[str, object]:
    """Run one attempt of every pending chunk in-process.

    The deadline is *cooperative* here (a single-threaded chunk cannot be
    pre-empted): a per-chunk :class:`~repro.util.deadline.Deadline` is
    threaded through the probe and trace stages, whose mid-stage
    checkpoints abandon an overrunning chunk early; a chunk whose
    cache-hit fast paths never hit a checkpoint is still caught by the
    post-hoc elapsed check.  Either way the failure surfaces as
    :class:`ChunkTimeoutError` and takes the same retry path the pool
    engine uses.
    """
    clock = as_clock(clock)
    outcomes: dict[str, object] = {}
    for label, attempt in attempts.items():
        start = clock.monotonic()
        budget = Deadline(deadline, clock=clock) if deadline is not None else None
        try:
            if faults is not None:
                faults.inject_chunk_faults(label, attempt, in_worker=False, clock=clock)
            timer = StageTimer()
            if budget is not None:
                records, observed = _run_submatrix(
                    cfg, (label,), cfg.systems, store_obj, timer, deadline=budget
                )
            else:
                records, observed = _run_submatrix(
                    cfg, (label,), cfg.systems, store_obj, timer
                )
            elapsed = clock.monotonic() - start
            if deadline is not None and elapsed > deadline:
                raise ChunkTimeoutError(
                    f"chunk {label!r} took {elapsed:.3f}s "
                    f"(deadline {deadline:.3f}s)"
                )
            outcomes[label] = (records, observed, timer.breakdown())
        except KeyboardInterrupt:
            raise
        except DeadlineExceededError as exc:
            # Keep the study's failure taxonomy: an in-chunk budget expiry
            # is this engine's chunk timeout.
            outcomes[label] = ChunkTimeoutError(
                f"chunk {label!r} abandoned mid-{exc.stage or 'chunk'}: {exc}"
            )
        except Exception as exc:
            outcomes[label] = exc
    return outcomes


def _pool_round(
    cfg: StudyConfig,
    attempts: dict[str, int],
    store_obj: TraceStore | None,
    store_root: str | None,
    faults,
    deadline: float | None,
    workers: int,
    clock: "Clock | None" = None,  # pool workers always run on real time
) -> dict[str, object]:
    """Run one attempt of every pending chunk on the worker pool.

    Failures never escape: each chunk's outcome is its result tuple or the
    exception that felled it (broken pool, missed deadline, raised error),
    and a broken/overrun pool is torn down so the next round re-dispatches
    to a freshly rebuilt one.
    """
    outcomes: dict[str, object] = {}
    futures = {}
    try:
        pool = _get_pool(workers, store_root, cfg)
        for label, attempt in attempts.items():
            futures[label] = pool.submit(
                _run_chunk, cfg, (label,), store_root, faults, attempt
            )
    except BrokenProcessPool:
        pass  # chunks left unsubmitted are marked crashed below
    must_rebuild = False
    for label in attempts:
        fut = futures.get(label)
        if fut is None:
            must_rebuild = True
            outcomes[label] = WorkerCrashError(
                f"worker pool broke before chunk {label!r} was dispatched"
            )
            continue
        try:
            outcomes[label] = fut.result(timeout=deadline)
        except FuturesTimeoutError:
            fut.cancel()
            must_rebuild = True  # a stalled worker may never free up: abandon
            outcomes[label] = ChunkTimeoutError(
                f"chunk {label!r} missed its {deadline:.3f}s deadline"
            )
        except (BrokenProcessPool, CancelledError) as exc:
            must_rebuild = True
            outcomes[label] = WorkerCrashError(
                f"worker running chunk {label!r} died: {exc or type(exc).__name__}"
            )
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            outcomes[label] = exc
    if must_rebuild:
        _shutdown_pool()
    return outcomes
