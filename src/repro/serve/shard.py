"""Consistent-hash sharding of trace identities across fleet workers.

The fleet keeps each worker's in-memory caches *warm for a stable slice*
of the workload: a given (application, cpus) trace identity always routes
to the same worker, so its memmapped trace, probe bundles and row-level
convolve memo are hot in exactly one process instead of being re-warmed
N times.  The shard key is the store's own content digest
(:func:`repro.tracing.store.trace_key`) — "which worker owns this trace"
and "which file holds it" are literally the same string.

:class:`ShardRing` is a textbook consistent-hash ring: every worker
contributes :data:`DEFAULT_VNODES` virtual nodes (points on a 64-bit hash
circle), and a key belongs to the first virtual node clockwise from the
key's own hash.  Two properties carry the fleet semantics:

* **balance** — with 64 vnodes per worker, each worker owns the same
  share of hash space within a few tens of percent (the shard tests pin
  ±25%), so no worker's cache is systematically overloaded;
* **minimal movement** — removing a worker reassigns *only* the keys that
  worker owned (they fall through to the next vnode clockwise); every
  other key keeps its owner, so a worker death never cold-starts the
  survivors' caches.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["ShardRing", "DEFAULT_VNODES"]

#: Virtual nodes per worker: enough for ±25% balance, cheap to rebuild.
DEFAULT_VNODES = 64


def _point(token: str) -> int:
    """A token's position on the 64-bit hash circle."""
    return int.from_bytes(
        hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest(), "big"
    )


class ShardRing:
    """Consistent-hash ring mapping shard keys to worker names.

    Parameters
    ----------
    nodes:
        Initial worker names.
    vnodes:
        Virtual nodes per worker (see :data:`DEFAULT_VNODES`).
    """

    def __init__(self, nodes: tuple = (), *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes!r}")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[str, ...]:
        """Current members, sorted for stable display."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Join ``node``; keys it now owns move *to* it, nothing else."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _point(f"{node}#{i}")
            at = bisect.bisect_left(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove(self, node: str) -> None:
        """Leave ``node``; only the keys it owned change hands."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    def node_for(self, key: str) -> str:
        """The worker owning ``key`` (first vnode clockwise of its hash)."""
        if not self._points:
            raise LookupError("shard ring is empty: no live workers")
        at = bisect.bisect_right(self._points, _point(key))
        if at == len(self._points):
            at = 0  # wrap past twelve o'clock
        return self._owners[at]

    # ------------------------------------------------------------------
    def shares(self) -> dict[str, float]:
        """Fraction of the hash circle each worker owns (``/healthz``)."""
        if not self._points:
            return {}
        total = 1 << 64
        owned: dict[str, int] = {node: 0 for node in self._nodes}
        prev = self._points[-1] - total  # arc wrapping twelve o'clock
        for point, owner in zip(self._points, self._owners):
            owned[owner] += point - prev
            prev = point
        return {node: arc / total for node, arc in sorted(owned.items())}
