"""Stdlib HTTP front end for :class:`~repro.serve.service.PredictionService`.

A deliberately small JSON-over-HTTP surface on
:class:`http.server.ThreadingHTTPServer` — no framework, no new
dependencies, one thread per connection feeding the service's own
admission queue:

``GET /predict?application=..&cpus=..&machine=..[&metric=9][&deadline_ms=..]``
    One prediction.  Always JSON; the resilient error mapping is the
    whole point:

    * invalid ids → **400** with the known set and nearest matches,
      never a traceback;
    * shed by admission → **429** with a ``Retry-After`` header;
    * every ladder rung failed → **503** with ``Retry-After`` when a
      breaker cooldown suggests one;
    * degraded answers are **200** with ``degraded: true`` and the
      ``served_metric`` that actually answered.

``GET /healthz``
    Liveness + diagnostics (always 200 while the process can answer at
    all): breaker states, admission depth, store invalidation counter,
    request counters.

``GET /readyz``
    Readiness: 200 when no breaker is open and the queue has room,
    503 otherwise — load balancers drain the instance while it heals.

``GET /events/stats``
    Live projection views over the service's event log (leaderboards,
    failure history, event counts); ``{"enabled": false}`` when the
    service runs without one.

``GET /catalog``
    The loaded scenario catalog: application labels, machine names,
    metric numbers, the base system, and the mounted universe (if any)
    — so clients can discover valid ids instead of guessing them.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro.core.errors import (
    OverloadedError,
    ReproError,
    ServiceUnavailableError,
    UnknownIdError,
)
from repro.serve.service import PredictionService, catalog_doc

__all__ = ["PredictionHTTPServer", "make_server"]


class PredictionHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`PredictionService`."""

    daemon_threads = True
    #: Quick restarts during tests/chaos runs beat lingering TIME_WAITs.
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: PredictionService):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    """Request handler: parse, dispatch, map errors to statuses."""

    server: PredictionHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        url = urlsplit(self.path)
        query = dict(parse_qsl(url.query))
        try:
            if url.path == "/predict":
                self._predict(query)
            elif url.path == "/healthz":
                self._json(200, self.server.service.health())
            elif url.path == "/readyz":
                ok, body = self.server.service.ready()
                self._json(200 if ok else 503, body)
            elif url.path == "/events/stats":
                self._json(200, self.server.service.events_stats())
            elif url.path == "/catalog":
                self._json(200, catalog_doc())
            else:
                self._json(
                    404,
                    {
                        "error": "NotFound",
                        "message": f"no route {url.path!r}",
                        "routes": [
                            "/predict",
                            "/healthz",
                            "/readyz",
                            "/events/stats",
                            "/catalog",
                        ],
                    },
                )
        except Exception as exc:  # last-resort guard: still JSON, never a traceback page
            self._json(
                500, {"error": type(exc).__name__, "message": str(exc)}
            )

    # ------------------------------------------------------------------
    def _predict(self, query: dict[str, str]) -> None:
        missing = [k for k in ("application", "cpus", "machine") if k not in query]
        if missing:
            self._json(
                400,
                {
                    "error": "MissingParameter",
                    "message": f"missing query parameter(s): {', '.join(missing)}",
                    "required": ["application", "cpus", "machine"],
                    "optional": ["metric", "deadline_ms"],
                },
            )
            return
        try:
            cpus = int(query["cpus"])
        except ValueError:
            self._json(
                400,
                {
                    "error": "BadParameter",
                    "message": f"cpus must be an integer, got {query['cpus']!r}",
                },
            )
            return
        deadline_seconds = None
        if "deadline_ms" in query:
            try:
                deadline_seconds = float(query["deadline_ms"]) / 1000.0
            except ValueError:
                self._json(
                    400,
                    {
                        "error": "BadParameter",
                        "message": (
                            f"deadline_ms must be a number, got "
                            f"{query['deadline_ms']!r}"
                        ),
                    },
                )
                return
        try:
            served = self.server.service.predict(
                query["application"],
                cpus,
                query["machine"],
                query.get("metric", 9),
                deadline_seconds=deadline_seconds,
            )
        except UnknownIdError as exc:
            self._json(
                400,
                {
                    "error": "UnknownId",
                    "message": str(exc),
                    "kind": exc.kind,
                    "value": str(exc.value),
                    "known": list(exc.known),
                    "nearest": list(exc.nearest),
                },
            )
        except ValueError as exc:
            self._json(400, {"error": "BadParameter", "message": str(exc)})
        except OverloadedError as exc:
            self._json(
                429,
                {
                    "error": "Overloaded",
                    "message": str(exc),
                    "retry_after_seconds": exc.retry_after,
                },
                retry_after=exc.retry_after,
            )
        except ServiceUnavailableError as exc:
            self._json(
                503,
                {
                    "error": "ServiceUnavailable",
                    "message": str(exc),
                    "retry_after_seconds": exc.retry_after,
                },
                retry_after=exc.retry_after,
            )
        except ReproError as exc:
            # A taxonomy error that escaped the ladder (should be rare):
            # surface it as a structured 500, never a stack trace.
            self._json(500, {"error": type(exc).__name__, "message": str(exc)})
        else:
            self._json(200, served.to_dict())

    # ------------------------------------------------------------------
    def _json(
        self, status: int, body: dict, *, retry_after: float | None = None
    ) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if retry_after is not None:
            # RFC 9110 allows only integral seconds; round up so clients
            # never retry before the hint.
            self.send_header("Retry-After", str(max(1, round(retry_after + 0.5))))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default stderr access log (the CLI owns output)."""


def make_server(
    host: str, port: int, service: PredictionService
) -> PredictionHTTPServer:
    """Bind a :class:`PredictionHTTPServer`; ``port=0`` picks a free port."""
    return PredictionHTTPServer((host, port), service)
