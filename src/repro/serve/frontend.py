"""Asyncio HTTP front end over the sharded engine worker fleet.

One event loop accepts every connection (no thread-per-connection, no
framework, zero new dependencies — plain ``asyncio.start_server`` and
hand-rolled HTTP/1.1 framing) and does only cheap work: parse, validate,
route, coalesce, merge.  Everything CPU-bound happens in the
:class:`~repro.serve.fleet.Fleet` workers.

Routes:

``GET /predict?application=..&cpus=..&machine=..[&metric=9][&deadline_ms=..]``
    One prediction.  The cell's trace identity is hashed onto the shard
    ring, so the owning worker answers from a warm cache; identical
    concurrent requests are collapsed by
    :class:`~repro.serve.coalesce.SingleFlight` into one worker call,
    followers stamped ``coalesced: true``.  Status mapping is identical
    to the single-process server: 400 structured validation errors,
    429 + ``Retry-After`` on shed (including a worker dying mid-request),
    503 when every ladder rung failed — never a traceback page.

``POST /predict/batch``
    A tensorized sub-matrix in one request.  The body names explicit
    ``cells`` ``[application, cpus, system, metric]`` or axes
    (``applications`` / ``systems`` / ``metrics`` / optional ``rows``);
    an empty body means the paper's full study matrix.  The front end
    compiles the cells into per-shard row lists, fans one
    :meth:`~repro.serve.service.PredictionService.predict_cells` call to
    each owning worker (the engine's ``run_matrix`` path — one rate
    table per row shared across every machine and metric), retries
    re-routed rows once if a worker dies mid-batch, then merges shards
    back into the engine's canonical emission order.  Identical axes
    therefore reproduce offline study records byte-for-byte, regardless
    of worker count — ``run_matrix``'s partition invariance, served.

``GET /healthz``
    Fleet-wide aggregation: per-worker breaker boards, admission depths
    and trace-LRU counters (gathered concurrently), ring membership and
    hash-space shares, coalescing counters, death/respawn totals.

``GET /readyz``
    200 only when every worker is alive and itself ready; 503 while the
    fleet is degraded (a worker dead or draining) so load balancers
    steer around the instance during recovery.

``GET /events/stats``
    Projection views rebuilt from the fleet's shared event-log
    directory — every worker's writer stream plus the supervisor's own
    (worker deaths/respawns) folded into one audit surface;
    ``{"enabled": false}`` when the fleet runs without an event log.

``GET /catalog``
    The loaded scenario catalog (application labels, machine names,
    metric numbers, base system, mounted universe) — answered by the
    front end itself, which mounts the same universe as its workers.
"""

from __future__ import annotations

import asyncio
import json
import threading
from urllib.parse import parse_qsl, urlsplit

from repro.core.errors import OverloadedError, UnknownIdError
from repro.core.registry import REGISTRY
from repro.events.log import EventLog
from repro.events.projections import ProjectionEngine
from repro.scenarios import CATALOG, TARGET_SYSTEMS, get_application
from repro.scenarios.builtin import builtin_applications
from repro.serve.coalesce import SingleFlight
from repro.serve.fleet import Fleet, error_payload
from repro.serve.service import DEFAULT_DEADLINE_SECONDS, validate_query
from repro.util.validation import nearest_ids

__all__ = ["FleetFrontend", "FleetServer"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Margin added to a request's own deadline before the front end gives up
#: on a worker frame (the worker enforces the real deadline; this only
#: guards against a hung process).
_FRAME_TIMEOUT_MARGIN = 10.0

#: Worker-frame timeout for batches that set no deadline.
_BATCH_FRAME_TIMEOUT = 300.0


def _study_metrics() -> tuple[int, ...]:
    return tuple(spec.number for spec in REGISTRY.table3())


class FleetFrontend:
    """Route, coalesce and merge requests over one :class:`Fleet`."""

    def __init__(self, fleet: Fleet, *, default_deadline: float = DEFAULT_DEADLINE_SECONDS):
        self.fleet = fleet
        self.default_deadline = default_deadline
        self.coalescer = SingleFlight()
        self.requests_total = 0
        self.batch_requests_total = 0
        self.batch_cells_total = 0
        self.batch_reroutes_total = 0
        self._server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Spawn the fleet and bind the HTTP listener; returns the address."""
        await self.fleet.start()
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.fleet.stop()

    # ------------------------------------------------------------------
    # HTTP/1.1 framing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                status, payload, retry_after = await self._dispatch(
                    method, target, body
                )
                close = headers.get("connection", "").lower() == "close"
                self._write_response(
                    writer, status, payload, retry_after=retry_after, close=close
                )
                await writer.drain()
                if close:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            OSError,
        ):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
            except OSError:
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        body: dict,
        *,
        retry_after: float | None = None,
        close: bool = False,
    ) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
        ]
        if retry_after is not None:
            # RFC 9110: integral seconds only; round up so clients never
            # retry before the hint (same rule as the single-process server).
            head.append(f"Retry-After: {max(1, round(retry_after + 0.5))}")
        head.append("Connection: close" if close else "Connection: keep-alive")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, target: str, body: bytes):
        """Route one request; returns ``(status, body_dict, retry_after)``."""
        url = urlsplit(target)
        try:
            if method == "GET" and url.path == "/predict":
                return await self._predict(dict(parse_qsl(url.query)))
            if method == "POST" and url.path == "/predict/batch":
                return await self._predict_batch(body)
            if method == "GET" and url.path == "/healthz":
                return 200, await self._healthz(), None
            if method == "GET" and url.path == "/readyz":
                return await self._readyz()
            if method == "GET" and url.path == "/events/stats":
                return 200, await self._events_stats(), None
            if method == "GET" and url.path == "/catalog":
                from repro.serve.service import catalog_doc

                return 200, catalog_doc(), None
            return (
                404,
                {
                    "error": "NotFound",
                    "message": f"no route {method} {url.path!r}",
                    "routes": [
                        "GET /predict",
                        "POST /predict/batch",
                        "GET /healthz",
                        "GET /readyz",
                        "GET /events/stats",
                        "GET /catalog",
                    ],
                },
                None,
            )
        except Exception as exc:  # last-resort guard: JSON, never a traceback
            mapped = error_payload(exc)
            return mapped["status"], mapped["body"], mapped.get("retry_after")

    # ------------------------------------------------------------------
    # GET /predict
    # ------------------------------------------------------------------
    async def _predict(self, query: dict[str, str]):
        missing = [k for k in ("application", "cpus", "machine") if k not in query]
        if missing:
            return (
                400,
                {
                    "error": "MissingParameter",
                    "message": f"missing query parameter(s): {', '.join(missing)}",
                    "required": ["application", "cpus", "machine"],
                    "optional": ["metric", "deadline_ms"],
                },
                None,
            )
        try:
            cpus = int(query["cpus"])
        except ValueError:
            return (
                400,
                {
                    "error": "BadParameter",
                    "message": f"cpus must be an integer, got {query['cpus']!r}",
                },
                None,
            )
        deadline_ms = None
        if "deadline_ms" in query:
            try:
                deadline_ms = float(query["deadline_ms"])
            except ValueError:
                return (
                    400,
                    {
                        "error": "BadParameter",
                        "message": (
                            f"deadline_ms must be a number, got "
                            f"{query['deadline_ms']!r}"
                        ),
                    },
                    None,
                )
        try:
            # Reject malformed traffic here, before any worker round-trip,
            # with exactly the in-process service's errors.
            app, _target, cpus, metric_num = validate_query(
                query["application"], cpus, query["machine"], query.get("metric", 9)
            )
        except (UnknownIdError, ValueError, TypeError) as exc:
            mapped = error_payload(exc)
            return mapped["status"], mapped["body"], mapped.get("retry_after")

        self.requests_total += 1
        machine = query["machine"]
        budget = (
            self.default_deadline if deadline_ms is None else deadline_ms / 1000.0
        )
        key = (app.label, cpus, machine, metric_num)

        async def leader_call():
            worker = self.fleet.owner_of(app.label, cpus)
            response = await worker.call(
                "predict",
                {
                    "application": app.label,
                    "cpus": cpus,
                    "machine": machine,
                    "metric": metric_num,
                    "deadline_ms": deadline_ms,
                },
                timeout=budget + _FRAME_TIMEOUT_MARGIN,
            )
            return response

        try:
            response, coalesced = await self.coalescer.run(key, leader_call)
        except (OverloadedError,) as exc:
            mapped = error_payload(exc)
            return mapped["status"], mapped["body"], mapped.get("retry_after")
        if not response.get("ok", False):
            return (
                response.get("status", 500),
                response.get("body", {"error": "WorkerError"}),
                response.get("retry_after"),
            )
        result = dict(response["result"])
        result["coalesced"] = coalesced
        return 200, result, None

    # ------------------------------------------------------------------
    # POST /predict/batch
    # ------------------------------------------------------------------
    def _compile_batch(self, body: bytes):
        """Parse + validate the batch body into (rows, systems, metrics,
        wanted, deadline_ms); raises UnknownIdError/ValueError on bad input."""
        if body.strip():
            try:
                spec = json.loads(body)
            except ValueError:
                raise ValueError("request body must be a JSON object") from None
        else:
            spec = {}
        if not isinstance(spec, dict):
            raise ValueError(f"request body must be a JSON object, got {type(spec).__name__}")

        deadline_ms = spec.get("deadline_ms")
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)

        wanted = None  # explicit-cells form filters the merged records
        if "cells" in spec:
            rows: list[tuple[str, int]] = []
            systems: list[str] = []
            metrics: list = []
            wanted = set()
            for cell in spec["cells"]:
                if not isinstance(cell, (list, tuple)) or len(cell) != 4:
                    raise ValueError(
                        "each cell must be [application, cpus, system, metric], "
                        f"got {cell!r}"
                    )
                label, cpus, system, metric = cell
                label, system = str(label), str(system)
                cpus = int(cpus)
                metric_num = REGISTRY.spec(metric).number
                if (label, cpus) not in rows:
                    rows.append((label, cpus))
                if system not in systems:
                    systems.append(system)
                if metric_num not in metrics:
                    metrics.append(metric_num)
                wanted.add((label, cpus, system, metric_num))
        else:
            applications = spec.get("applications")
            if applications is None:
                # Default axes stay the paper's own matrix even when a
                # universe is mounted; generated ids must be named.
                applications = list(builtin_applications())
            systems = list(spec.get("systems", spec.get("machines", TARGET_SYSTEMS)))
            metrics = [
                REGISTRY.spec(key).number
                for key in spec.get("metrics", _study_metrics())
            ]
            if "rows" in spec:
                rows = [(str(label), int(cpus)) for label, cpus in spec["rows"]]
            else:
                rows = []
                for label in applications:
                    app = get_application(str(label))
                    rows.extend((app.label, cpus) for cpus in app.cpu_counts)
        # Axis validation (cheap, front-end side; workers re-validate too).
        for label, cpus in rows:
            if not CATALOG.has_application(label):
                known = CATALOG.application_ids()
                raise UnknownIdError(
                    "application", label, known, nearest_ids(label, known)
                )
            if cpus <= 0:
                raise ValueError(f"cpus must be > 0, got {cpus!r}")
        for system in systems:
            if not CATALOG.has_machine(system):
                known = CATALOG.machine_ids()
                raise UnknownIdError(
                    "machine", system, known, nearest_ids(system, known)
                )
        return rows, systems, metrics, wanted, deadline_ms

    async def _predict_batch(self, body: bytes):
        try:
            rows, systems, metrics, wanted, deadline_ms = self._compile_batch(body)
        except (UnknownIdError, ValueError, TypeError) as exc:
            mapped = error_payload(exc)
            return mapped["status"], mapped["body"], mapped.get("retry_after")
        self.batch_requests_total += 1
        if not rows or not systems or not metrics:
            return 200, {"count": 0, "records": [], "workers": {}}, None

        timeout = (
            _BATCH_FRAME_TIMEOUT
            if deadline_ms is None
            else deadline_ms / 1000.0 + _FRAME_TIMEOUT_MARGIN
        )

        async def run_shard(shard_rows: list[tuple[str, int]]):
            """One worker's sub-batch; re-routes and retries once on death."""
            worker = self.fleet.owner_of(*shard_rows[0])
            params = {
                "rows": [list(row) for row in shard_rows],
                "systems": list(systems),
                "metrics": list(metrics),
                "deadline_ms": deadline_ms,
            }
            try:
                return worker.name, await worker.call("batch", params, timeout=timeout)
            except OverloadedError:
                # The owner died or backlogged mid-batch: the ring has
                # (or will have) re-routed its range — retry once against
                # the new owner rather than failing the whole batch.
                self.batch_reroutes_total += 1
                await asyncio.sleep(self.fleet.respawn_delay)
                worker = self.fleet.owner_of(*shard_rows[0])
                return worker.name, await worker.call(
                    "batch", params, timeout=timeout
                )

        # Compile the cell list into per-shard row sets: every row routes
        # to the worker whose caches own its trace identity.
        shards: dict[str, list[tuple[str, int]]] = {}
        for row in rows:
            shards.setdefault(self.fleet.owner_of(*row).name, []).append(row)

        try:
            shard_results = await asyncio.gather(
                *(run_shard(shard_rows) for shard_rows in shards.values())
            )
        except OverloadedError as exc:
            mapped = error_payload(exc)
            return mapped["status"], mapped["body"], mapped.get("retry_after")
        worker_counts: dict[str, int] = {}
        merged: list[list] = []
        for worker_name, response in shard_results:
            if not response.get("ok", False):
                return (
                    response.get("status", 500),
                    response.get("body", {"error": "WorkerError"}),
                    response.get("retry_after"),
                )
            records = response["result"]["records"]
            worker_counts[worker_name] = (
                worker_counts.get(worker_name, 0) + len(records)
            )
            merged.extend(records)

        # Merge back into the engine's canonical emission order —
        # (label, system, row, metric), each axis in request order — so
        # any sharding reproduces the serial full-matrix byte stream.
        label_order: dict[str, int] = {}
        for label, _cpus in rows:
            label_order.setdefault(label, len(label_order))
        row_order = {row: i for i, row in enumerate(rows)}
        system_order = {system: i for i, system in enumerate(systems)}
        metric_order = {number: i for i, number in enumerate(metrics)}
        if wanted is not None:
            merged = [
                record
                for record in merged
                if (record[0], record[1], record[2], record[3]) in wanted
            ]
        merged.sort(
            key=lambda record: (
                label_order[record[0]],
                system_order[record[2]],
                row_order[(record[0], record[1])],
                metric_order[record[3]],
            )
        )
        self.batch_cells_total += len(merged)
        return (
            200,
            {
                "count": len(merged),
                "records": merged,
                "workers": dict(sorted(worker_counts.items())),
            },
            None,
        )

    # ------------------------------------------------------------------
    # health surfaces
    # ------------------------------------------------------------------
    async def _healthz(self) -> dict:
        workers = await self.fleet.worker_health()
        alive = self.fleet.alive_count()
        degraded = alive < self.fleet.n_workers or any(
            row.get("health", {}).get("status") == "degraded"
            for row in workers.values()
        )
        return {
            "status": "degraded" if degraded else "ok",
            "fleet": {
                "workers": self.fleet.n_workers,
                "alive": alive,
                "deaths_total": self.fleet.deaths_total,
                "respawns_total": self.fleet.respawns_total,
            },
            "ring": {
                "nodes": list(self.fleet.ring.nodes),
                "vnodes": self.fleet.ring.vnodes,
                "shares": {
                    node: round(share, 6)
                    for node, share in self.fleet.ring.shares().items()
                },
            },
            "coalescing": self.coalescer.counters(),
            "frontend": {
                "requests_total": self.requests_total,
                "batch_requests_total": self.batch_requests_total,
                "batch_cells_total": self.batch_cells_total,
                "batch_reroutes_total": self.batch_reroutes_total,
            },
            "workers": workers,
        }

    async def _readyz(self):
        alive = self.fleet.alive_count()
        if alive < self.fleet.n_workers:
            return (
                503,
                {
                    "ready": False,
                    "reason": f"{self.fleet.n_workers - alive} worker(s) down",
                    "alive": alive,
                    "workers": self.fleet.n_workers,
                },
                None,
            )
        not_ready: list[str] = []
        for name, handle in self.fleet.workers.items():
            try:
                response = await handle.call("ready", {}, timeout=2.0)
                if not response.get("result", {}).get("ready_ok", False):
                    not_ready.append(name)
            except Exception:
                not_ready.append(name)
        ok = not not_ready
        body = {
            "ready": ok,
            "alive": alive,
            "workers": self.fleet.n_workers,
            "not_ready": sorted(not_ready),
        }
        return (200 if ok else 503), body, None

    async def _events_stats(self) -> dict:
        """Fold every writer stream in the shared log dir into one view.

        Rebuilt from the raw segments on each request (the streams live
        in N other processes; there is nothing to subscribe to here) in
        an executor thread so segment reads never stall the event loop.
        """
        events_dir = self.fleet.config.get("events_dir")
        if not events_dir:
            return {"enabled": False}
        loop = asyncio.get_running_loop()
        views = await loop.run_in_executor(
            None, lambda: ProjectionEngine.rebuild(events_dir).views()
        )
        return {
            "enabled": True,
            "events_dir": str(events_dir),
            "fleet": {
                "deaths_total": self.fleet.deaths_total,
                "respawns_total": self.fleet.respawns_total,
            },
            "views": views,
        }


class FleetServer:
    """Background-thread harness around :class:`FleetFrontend`.

    Synchronous ``start()``/``stop()`` so tests, the benchmark, the
    chaos script and the CLI can boot a whole fleet without owning an
    event loop themselves.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        service_config: dict | None = None,
        default_deadline: float = DEFAULT_DEADLINE_SECONDS,
        **fleet_kwargs,
    ):
        self._host = host
        self._port = port
        self.events = None
        if (service_config or {}).get("events_dir") and "events" not in fleet_kwargs:
            # The supervisor gets its own writer stream in the shared
            # directory; workers each open theirs inside _build_service.
            self.events = EventLog(
                service_config["events_dir"], writer="frontend", fsync="commit"
            )
            fleet_kwargs["events"] = self.events
        self.fleet = Fleet(workers, service_config=service_config, **fleet_kwargs)
        self.frontend = FleetFrontend(self.fleet, default_deadline=default_deadline)
        self.address: tuple[str, int] | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._boot_error: BaseException | None = None

    # ------------------------------------------------------------------
    def start(self, timeout: float = 30.0) -> tuple[str, int]:
        """Boot fleet + listener in a daemon thread; returns (host, port)."""
        self._thread = threading.Thread(
            target=self._run, name="fleet-frontend", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("fleet front end did not start in time")
        if self._boot_error is not None:
            raise self._boot_error
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            self.address = await self.frontend.start(self._host, self._port)
        except BaseException as exc:  # surface spawn/bind failures to start()
            self._boot_error = exc
            self._started.set()
            return
        self._started.set()
        await self._shutdown.wait()
        await self.frontend.stop()
        if self.events is not None:
            try:
                self.events.commit()
                self.events.close()
            except OSError:
                pass  # best-effort: audit flush must not block shutdown

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "FleetServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
