"""Bounded admission queue with load-shedding for the prediction service.

Backpressure is the service's first line of defence: an unbounded request
backlog turns one slow backend into unbounded latency for *everyone*.
The :class:`AdmissionQueue` admits up to ``max_concurrent`` predictions,
parks up to ``max_queue`` more, and sheds the rest immediately with
:class:`~repro.core.errors.OverloadedError` carrying a ``retry_after``
estimate (429 semantics at the HTTP layer) — a shed request costs the
client one cheap round-trip instead of a deadline's worth of queueing.

The retry-after estimate is an EWMA of recent service times scaled by the
backlog ahead of the newcomer, so clients back off proportionally to the
actual congestion rather than by a fixed constant.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.core.errors import OverloadedError
from repro.util.clock import Clock, as_clock

__all__ = ["AdmissionQueue", "ServiceTimeEwma"]

#: Smoothing factor of the service-time EWMA (higher = more reactive).
_EWMA_ALPHA = 0.2


class ServiceTimeEwma:
    """EWMA of observed service times with a backlog-scaled retry hint.

    The estimator is its own small object so both admission layers share
    one definition: the in-process :class:`AdmissionQueue` (thread
    contention) and the fleet front end's per-worker gate (asyncio
    pending-queue backpressure).  Not thread-safe by itself — callers
    hold their own lock (the queue) or run on one event loop (the fleet).
    """

    def __init__(self, initial_seconds: float = 0.05, alpha: float = _EWMA_ALPHA):
        self.seconds = initial_seconds  # optimistic prior; converges fast
        self.alpha = alpha

    def observe(self, service_seconds: float) -> None:
        """Fold one observed service time into the estimate."""
        if service_seconds >= 0:
            self.seconds += self.alpha * (service_seconds - self.seconds)

    def retry_after(self, backlog: int, concurrency: int) -> float:
        """Suggested client back-off: backlog ahead × EWMA service time."""
        return max(0.01, self.seconds * backlog / max(1, concurrency))


class AdmissionQueue:
    """Counting admission gate: bounded concurrency, bounded waiting.

    Parameters
    ----------
    max_concurrent:
        Predictions allowed in flight at once.
    max_queue:
        Requests allowed to wait for a slot; arrivals beyond this are
        shed immediately.
    clock:
        Monotonic time source for the service-time EWMA (injectable; the
        *blocking* wait itself uses the condition variable's real clock,
        as fake-clock tests drive admission without contention).

    Use as a context manager per request::

        with admission.admit(timeout=deadline.remaining()):
            ... serve ...
    """

    def __init__(
        self,
        max_concurrent: int = 4,
        max_queue: int = 16,
        *,
        clock: "Clock | Callable[[], float] | None" = None,
    ):
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent!r}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue!r}")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self._clock = as_clock(clock).monotonic
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._active = 0
        self._waiting = 0
        self._ewma = ServiceTimeEwma()
        self.admitted_total = 0
        self.shed_total = 0

    @property
    def _ewma_seconds(self) -> float:
        """Back-compat view of the shared estimator's current value."""
        return self._ewma.seconds

    # ------------------------------------------------------------------
    def retry_after_estimate(self) -> float:
        """Suggested client back-off: backlog ahead x EWMA service time."""
        with self._lock:
            return self._ewma.retry_after(self._waiting + 1, self.max_concurrent)

    def depth(self) -> dict[str, int]:
        """Queue observability for ``/healthz``."""
        with self._lock:
            return {
                "active": self._active,
                "waiting": self._waiting,
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
            }

    # ------------------------------------------------------------------
    def acquire(self, timeout: float | None = None) -> None:
        """Take a slot, waiting up to ``timeout`` seconds in the queue.

        Raises :class:`OverloadedError` when the queue is already full
        (instant shed) or the wait times out (the request would have
        missed its deadline anyway — shedding it is strictly better).
        """
        with self._slot_free:
            if self._active < self.max_concurrent and self._waiting == 0:
                self._active += 1
                self.admitted_total += 1
                return
            if self._waiting >= self.max_queue:
                self.shed_total += 1
                raise OverloadedError(
                    f"admission queue full "
                    f"({self._active} active, {self._waiting} waiting)",
                    retry_after=self._retry_after_locked(),
                )
            self._waiting += 1
            try:
                granted = self._slot_free.wait_for(
                    lambda: self._active < self.max_concurrent, timeout=timeout
                )
            finally:
                self._waiting -= 1
            if not granted:
                self.shed_total += 1
                raise OverloadedError(
                    f"timed out after {timeout:.3f}s waiting for an "
                    f"admission slot",
                    retry_after=self._retry_after_locked(),
                )
            self._active += 1
            self.admitted_total += 1

    def release(self, service_seconds: float | None = None) -> None:
        """Free a slot; fold the observed service time into the EWMA."""
        with self._slot_free:
            if service_seconds is not None:
                self._ewma.observe(service_seconds)
            self._active = max(0, self._active - 1)
            self._slot_free.notify()

    def _retry_after_locked(self) -> float:
        return self._ewma.retry_after(self._waiting + 1, self.max_concurrent)

    # ------------------------------------------------------------------
    def admit(self, timeout: float | None = None) -> "_Ticket":
        """Context-manager admission: acquire on enter, release on exit.

        The ticket measures the request's service time on the injected
        clock and feeds it back into the retry-after EWMA.
        """
        return _Ticket(self, timeout)


class _Ticket:
    """One admitted request's slot; returned by :meth:`AdmissionQueue.admit`."""

    def __init__(self, queue: AdmissionQueue, timeout: float | None):
        self._queue = queue
        self._timeout = timeout
        self._start = 0.0

    def __enter__(self) -> "_Ticket":
        self._queue.acquire(self._timeout)
        self._start = self._queue._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._queue.release(self._queue._clock() - self._start)
