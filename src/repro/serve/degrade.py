"""The graceful-degradation ladder, derived from the metric registry.

Table 3's metrics are ordered by cost *and* fidelity: metric 9
(HPL+MAPS+NET+DEP) needs a trace and the full convolver, metric 1 (an HPL
ratio) needs two numbers already sitting in the probe cache.  That
hierarchy is a ready-made degradation ladder for online serving: when the
expensive convolver path is slow or its breaker is open, a
correct-but-coarser answer from a cheaper rung is far better than an
error — the same "variability matters, prefer an answer with known
semantics" argument Cornebize & Legrand make for simulation-based MPI
prediction.

Since the declarative-registry refactor the chain is no longer hardcoded:
:meth:`~repro.core.registry.MetricRegistry.ladder` derives it from each
spec's ingredient costs under a halving rule (every fallback must at
least halve the evaluation cost), which for the built-in registry yields
exactly the old 9 → 7 → 5 → 3 → 1 — each rung drops one whole ingredient
class (dependent-access curves, MAPS cache curves, STREAM term, the
convolver itself) rather than a half-step, so successive fallbacks have
visibly distinct semantics.  Registering a user metric with its own cost
slots it into the chain automatically.

Degraded responses are *marked*, never silent: the service stamps
``served_metric`` and ``degraded=True`` so a caller can distinguish "the
best estimate" from "the best estimate available right now" and re-query
later.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core.metrics import get_metric
from repro.core.registry import REGISTRY

__all__ = ["LADDER", "ladder_for", "stages_for", "RungAttempt"]

#: The built-in chain in descending fidelity/cost order (Table 3
#: numbers).  A snapshot of :meth:`MetricRegistry.ladder` at import for
#: compatibility; :func:`ladder_for` consults the live registry, so
#: later user registrations are reflected there.
LADDER: tuple[int, ...] = REGISTRY.ladder()


def stages_for(metric: "int | str") -> tuple[str, ...]:
    """Backend stages metric ``metric`` must traverse.

    Read off the metric's registry spec (``needs``): probe-only metrics —
    the simple ratios #1-#3 and the balanced rating — need only cached
    probe rates, predictive metrics add trace + convolve.  The split is
    what makes the ladder useful: an open *convolve* breaker takes out
    metrics 4-9 but leaves the probe-only rungs servable.
    """
    return tuple(get_metric(metric).needs)


def ladder_for(requested: "int | str") -> tuple[int, ...]:
    """Rungs to try for a request, best first.

    The requested metric leads; below it come the registry-derived
    chain's strictly-cheaper rungs in order.  Requests for an off-chain
    metric simply join the ladder at the next rung down (e.g.
    8 → 7 → 5 → 3 → 1).  Raises
    :class:`~repro.core.errors.UnknownIdError` (a :class:`KeyError`) for
    a metric the registry does not know.
    """
    return REGISTRY.ladder_for(requested)


class RungAttempt(NamedTuple):
    """Why one ladder rung was not served (response observability).

    Attributes
    ----------
    metric:
        The rung that was tried (or skipped).
    stage:
        Stage the failure is attributed to, when known.
    error:
        Failure class name (``"CircuitOpenError"``,
        ``"DeadlineExceededError"``, ...).
    message:
        Human-readable detail.
    """

    metric: int
    stage: str | None
    error: str
    message: str
