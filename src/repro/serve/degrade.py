"""The graceful-degradation ladder over the paper's metric hierarchy.

Table 3's metrics are ordered by cost *and* fidelity: metric 9
(HPL+MAPS+NET+DEP) needs a trace and the full convolver, metric 1 (an HPL
ratio) needs two numbers already sitting in the probe cache.  That
hierarchy is a ready-made degradation ladder for online serving: when the
expensive convolver path is slow or its breaker is open, a
correct-but-coarser answer from a cheaper rung is far better than an
error — the same "variability matters, prefer an answer with known
semantics" argument Cornebize & Legrand make for simulation-based MPI
prediction.

Degraded responses are *marked*, never silent: the service stamps
``served_metric`` and ``degraded=True`` so a caller can distinguish "the
best estimate" from "the best estimate available right now" and re-query
later.  :data:`LADDER` descends 9 → 7 → 5 → 3 → 1, skipping the
even-numbered metrics — each rung drops one whole ingredient class
(dependent-access curves, MAPS cache curves, STREAM term, the convolver
itself) rather than a half-step, so successive fallbacks have visibly
distinct semantics.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core.metrics import ALL_METRICS, PredictiveMetric

__all__ = ["LADDER", "ladder_for", "stages_for", "RungAttempt"]

#: Fallback rungs in descending fidelity/cost order (Table 3 numbers).
LADDER: tuple[int, ...] = (9, 7, 5, 3, 1)

#: Stage dependencies per metric kind: simple ratios (#1-#3) need only
#: cached probe rates; predictive metrics (#4-#9) add trace + convolve.
_SIMPLE_STAGES = ("probe",)
_PREDICTIVE_STAGES = ("probe", "trace", "convolve")


def stages_for(metric: int) -> tuple[str, ...]:
    """Backend stages metric ``metric`` must traverse.

    The split is what makes the ladder useful: an open *convolve* breaker
    takes out metrics 4-9 but leaves 1-3 servable from the probe cache.
    """
    if isinstance(ALL_METRICS[metric], PredictiveMetric):
        return _PREDICTIVE_STAGES
    return _SIMPLE_STAGES


def ladder_for(requested: int) -> tuple[int, ...]:
    """Rungs to try for a request, best first.

    The requested metric leads; below it come the strictly-cheaper
    :data:`LADDER` rungs in order.  Requests for an even metric simply
    join the ladder at the next rung down (e.g. 8 → 7 → 5 → 3 → 1).
    """
    if requested not in ALL_METRICS:
        raise KeyError(f"metric number must be 1-9, got {requested!r}")
    return (requested,) + tuple(r for r in LADDER if r < requested)


class RungAttempt(NamedTuple):
    """Why one ladder rung was not served (response observability).

    Attributes
    ----------
    metric:
        The rung that was tried (or skipped).
    stage:
        Stage the failure is attributed to, when known.
    error:
        Failure class name (``"CircuitOpenError"``,
        ``"DeadlineExceededError"``, ...).
    message:
        Human-readable detail.
    """

    metric: int
    stage: str | None
    error: str
    message: str
