"""The resilient online prediction service.

:class:`PredictionService` answers one question — "how long will
application Y at N processors take on machine X, by metric K?" — through
the same probe/trace/convolve pipeline the offline study uses, but
engineered to keep answering when parts of that pipeline misbehave:

* every request runs under a per-request :class:`~repro.util.deadline.Deadline`
  threaded through the probe and trace layers, whose mid-stage checkpoints
  abandon work the moment the budget is spent;
* each backend stage is wrapped in a
  :class:`~repro.serve.breaker.CircuitBreaker`; a failing stage trips open
  and is *not called at all* until its cooldown elapses;
* on an open breaker, a stage failure or deadline pressure, the request
  falls down the Table 3 degradation ladder (9 → 7 → 5 → 3 → 1,
  :mod:`repro.serve.degrade`) and the response is stamped
  ``served_metric``/``degraded=True`` — a marked coarser answer instead of
  an error;
* a bounded :class:`~repro.serve.admission.AdmissionQueue` sheds load
  beyond its queue with a retry-after hint instead of queueing unboundedly.

Chaos is first-class: the constructor takes the same
:class:`~repro.util.faults.FaultPlan` the study engine uses, keyed per
(stage, call number), plus injectable ``clock``/``sleep`` — so the chaos
suite drives stalls and crashes deterministically on a fake clock and
asserts exact degradation and recovery timing.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.apps.execution import GroundTruthExecutor
from repro.apps.suite import APPLICATIONS, get_application
from repro.core.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    ServiceUnavailableError,
    UnknownIdError,
    WorkerCrashError,
)
from repro.core.metrics import ALL_METRICS, PredictiveMetric, get_metric
from repro.machines.registry import BASE_SYSTEM, MACHINES, get_machine
from repro.probes.suite import probe_machine
from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import BreakerBoard
from repro.serve.degrade import RungAttempt, ladder_for, stages_for
from repro.tracing.metasim import CACHE_MODELS, DEFAULT_SAMPLE_SIZE, trace_application
from repro.tracing.store import TraceStore
from repro.util.deadline import Deadline
from repro.util.validation import check_in, nearest_ids

__all__ = ["PredictionService", "ServedPrediction", "STAGES"]

#: Backend stages in pipeline order; each gets its own circuit breaker.
STAGES = ("probe", "trace", "convolve")

#: Default per-request budget, seconds.
DEFAULT_DEADLINE_SECONDS = 1.0

#: Share of the *remaining* request budget a single stage may consume.
#: Reserving the rest is what lets a request that lost a stage to a stall
#: still serve a cheaper rung inside its deadline.
DEFAULT_STAGE_FRACTION = 0.5


@dataclass(frozen=True)
class ServedPrediction:
    """One answered prediction query.

    ``degraded`` is never silent: it is True exactly when
    ``served_metric != requested_metric``, so callers can cache coarse
    answers differently or re-query once ``/readyz`` reports recovery.
    """

    application: str
    cpus: int
    machine: str
    requested_metric: int
    served_metric: int
    metric_label: str
    predicted_seconds: float
    degraded: bool
    latency_seconds: float
    attempts: tuple[RungAttempt, ...] = ()

    def to_dict(self) -> dict:
        """JSON-shaped view (the HTTP layer's response body)."""
        return {
            "application": self.application,
            "cpus": self.cpus,
            "machine": self.machine,
            "requested_metric": self.requested_metric,
            "served_metric": self.served_metric,
            "metric_label": self.metric_label,
            "predicted_seconds": self.predicted_seconds,
            "degraded": self.degraded,
            "latency_ms": round(self.latency_seconds * 1000.0, 3),
            "attempts": [
                {
                    "metric": a.metric,
                    "stage": a.stage,
                    "error": a.error,
                    "message": a.message,
                }
                for a in self.attempts
            ],
        }


class PredictionService:
    """Thread-safe online prediction front end over the study pipeline.

    Parameters
    ----------
    base_system:
        System traces and Equation-1 ratios anchor to (the study's X0).
    mode, sample_size, cache_model, noise:
        Pipeline knobs, identical in meaning to
        :class:`~repro.study.runner.StudyConfig`.
    store:
        Optional persistent :class:`~repro.tracing.store.TraceStore` (or
        directory path) shared by all request threads; its invalidation
        counter is surfaced on ``/healthz``.
    default_deadline:
        Per-request budget (seconds) when the request does not name one.
    stage_fraction:
        Share of the remaining request budget one stage may spend
        (see :data:`DEFAULT_STAGE_FRACTION`).
    stage_timeouts:
        Optional absolute per-stage caps, e.g. ``{"convolve": 0.1}`` —
        the effective stage budget is the smaller of cap and fraction.
    breakers, admission:
        Injectable resilience components (built with defaults on the
        service's clock when omitted).
    faults:
        Optional :class:`~repro.util.faults.FaultPlan`; stalls/crashes are
        injected per (stage, call-number) with the plan's seeded draws.
    fault_stages:
        Stages the plan applies to (chaos tests target one stage).
    clock, sleep:
        Monotonic clock and sleeper — injectable together so chaos tests
        advance a fake clock instead of wall-waiting.
    """

    def __init__(
        self,
        *,
        base_system: str = BASE_SYSTEM,
        mode: str = "relative",
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        cache_model: str = "analytic",
        noise: bool = True,
        store: "TraceStore | str | os.PathLike | None" = None,
        default_deadline: float = DEFAULT_DEADLINE_SECONDS,
        stage_fraction: float = DEFAULT_STAGE_FRACTION,
        stage_timeouts: dict[str, float] | None = None,
        breakers: BreakerBoard | None = None,
        admission: AdmissionQueue | None = None,
        faults=None,
        fault_stages: tuple[str, ...] = STAGES,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        check_in("mode", mode, ("relative", "absolute"))
        check_in("cache_model", cache_model, CACHE_MODELS)
        if base_system not in MACHINES:
            raise UnknownIdError(
                "system", base_system, tuple(MACHINES), nearest_ids(base_system, MACHINES)
            )
        if default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be > 0 seconds, got {default_deadline!r}"
            )
        if not 0.0 < stage_fraction <= 1.0:
            raise ValueError(
                f"stage_fraction must be in (0, 1], got {stage_fraction!r}"
            )
        unknown = set(stage_timeouts or ()) - set(STAGES)
        if unknown:
            raise ValueError(
                f"unknown stage_timeouts keys {sorted(unknown)}; stages: {STAGES}"
            )
        self.base_system = base_system
        self.mode = mode
        self.sample_size = sample_size
        self.cache_model = cache_model
        self.noise = noise
        self.default_deadline = default_deadline
        self.stage_fraction = stage_fraction
        self.stage_timeouts = dict(stage_timeouts or {})
        self._clock = clock
        self._sleep = sleep
        if isinstance(store, TraceStore) or store is None:
            self.store = store
        else:
            self.store = TraceStore(store)
        self.breakers = breakers if breakers is not None else BreakerBoard(STAGES, clock=clock)
        self.admission = admission if admission is not None else AdmissionQueue(clock=clock)
        self.faults = faults
        self.fault_stages = tuple(fault_stages)

        self._base_machine = get_machine(base_system)
        self._base_executor = GroundTruthExecutor(self._base_machine, noise=noise)
        self._base_times: dict[tuple[str, int], float] = {}
        self._state_lock = threading.Lock()
        self._stage_calls: dict[str, int] = {stage: 0 for stage in STAGES}
        self.requests_total = 0
        self.degraded_total = 0
        self.unserved_total = 0
        self._started_at = clock()

    # ------------------------------------------------------------------
    # validation (the service boundary: structured errors, never tracebacks)
    # ------------------------------------------------------------------
    def validate_request(
        self, application: str, cpus: int, machine: str, metric: int
    ) -> tuple[object, object, int, int]:
        """Resolve and validate one query's identifiers.

        Unknown ids raise :class:`~repro.core.errors.UnknownIdError`
        carrying the known set and the nearest matches (the HTTP 400
        body); structural problems (bad cpus, oversized run) raise
        :class:`ValueError`.  Mirrors ``StudyConfig``'s name-the-bad-key
        convention.
        """
        label = str(application)
        if label.partition("@")[0] not in APPLICATIONS:
            raise UnknownIdError(
                "application", label, tuple(APPLICATIONS), nearest_ids(label, APPLICATIONS)
            )
        try:
            app = get_application(label)
        except KeyError as exc:  # bad @replica suffix on a known base label
            raise ValueError(exc.args[0] if exc.args else str(exc)) from None
        if machine not in MACHINES:
            raise UnknownIdError(
                "machine", machine, tuple(MACHINES), nearest_ids(machine, MACHINES)
            )
        target = get_machine(machine)
        try:
            metric_num = int(metric)
        except (TypeError, ValueError):
            raise UnknownIdError(
                "metric", metric, tuple(str(m) for m in ALL_METRICS),
                nearest_ids(str(metric), (str(m) for m in ALL_METRICS)),
            ) from None
        if metric_num not in ALL_METRICS:
            raise UnknownIdError(
                "metric", metric_num, tuple(str(m) for m in ALL_METRICS),
                nearest_ids(metric_num, ALL_METRICS),
            )
        cpus_num = int(cpus)
        if cpus_num <= 0:
            raise ValueError(f"cpus must be > 0, got {cpus!r}")
        if cpus_num > target.cpus:
            raise ValueError(
                f"cpus={cpus_num} exceeds the {target.cpus} processors of "
                f"system {machine!r} (the paper leaves such cells blank)"
            )
        return app, target, cpus_num, metric_num

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def predict(
        self,
        application: str,
        cpus: int,
        machine: str,
        metric: int = 9,
        *,
        deadline_seconds: float | None = None,
    ) -> ServedPrediction:
        """Answer one query inside its deadline, degrading as needed.

        Raises
        ------
        UnknownIdError, ValueError
            Invalid request (HTTP 400) — checked before admission, so
            malformed traffic never occupies a slot.
        OverloadedError
            Shed by the admission queue (HTTP 429).
        ServiceUnavailableError
            Every ladder rung failed (HTTP 503) — only possible when even
            the probe-cache rungs are failing.
        """
        app, target, cpus_num, metric_num = self.validate_request(
            application, cpus, machine, metric
        )
        budget = self.default_deadline if deadline_seconds is None else deadline_seconds
        if budget <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {budget!r}")
        deadline = Deadline(budget, clock=self._clock, stage="request")
        start = self._clock()
        with self._state_lock:
            self.requests_total += 1
        timeout = deadline.remaining()
        with self.admission.admit(None if math.isinf(timeout) else timeout):
            return self._predict_admitted(
                app, target, cpus_num, metric_num, deadline, start
            )

    def _predict_admitted(
        self, app, target, cpus: int, requested: int, deadline: Deadline, start: float
    ) -> ServedPrediction:
        attempts: list[RungAttempt] = []
        retry_hints: list[float] = []
        for rung in ladder_for(requested):
            stages = stages_for(rung)
            open_stage = next(
                (s for s in stages if self.breakers[s].state == "open"), None
            )
            if open_stage is not None:
                # Skip without touching any backend: an open breaker means
                # no calls, including the rung's earlier healthy stages.
                hint = self.breakers[open_stage].retry_after()
                retry_hints.append(hint)
                attempts.append(
                    RungAttempt(
                        rung,
                        open_stage,
                        "CircuitOpenError",
                        f"breaker {open_stage!r} open (retry in {hint:.3f}s)",
                    )
                )
                continue
            try:
                predicted = self._predict_rung(rung, app, cpus, target, deadline)
            except CircuitOpenError as exc:
                if exc.retry_after is not None:
                    retry_hints.append(exc.retry_after)
                attempts.append(
                    RungAttempt(rung, exc.stage, type(exc).__name__, str(exc))
                )
            except DeadlineExceededError as exc:
                attempts.append(
                    RungAttempt(rung, exc.stage, type(exc).__name__, str(exc))
                )
            except Exception as exc:  # backend failure: recorded, laddered past
                attempts.append(
                    RungAttempt(rung, None, type(exc).__name__, str(exc))
                )
            else:
                degraded = rung != requested
                if degraded:
                    with self._state_lock:
                        self.degraded_total += 1
                return ServedPrediction(
                    application=app.label,
                    cpus=cpus,
                    machine=target.name,
                    requested_metric=requested,
                    served_metric=rung,
                    metric_label=get_metric(rung).label,
                    predicted_seconds=float(predicted),
                    degraded=degraded,
                    latency_seconds=self._clock() - start,
                    attempts=tuple(attempts),
                )
        with self._state_lock:
            self.unserved_total += 1
        detail = "; ".join(f"#{a.metric}: {a.error}" for a in attempts)
        raise ServiceUnavailableError(
            f"no ladder rung could serve the request ({detail})",
            retry_after=min(retry_hints) if retry_hints else None,
        )

    # ------------------------------------------------------------------
    # one rung
    # ------------------------------------------------------------------
    def _predict_rung(
        self, rung: int, app, cpus: int, target, deadline: Deadline
    ) -> float:
        metric_obj = get_metric(rung)
        target_probes, base_probes, base_time = self._stage(
            "probe",
            deadline,
            lambda d: self._probe_bundle(app, cpus, target, d),
        )
        if not isinstance(metric_obj, PredictiveMetric):
            r_target = target_probes.simple_rate(metric_obj.rate_name)
            r_base = base_probes.simple_rate(metric_obj.rate_name)
            return (r_base / r_target) * base_time
        trace = self._stage(
            "trace",
            deadline,
            lambda d: trace_application(
                app,
                cpus,
                self._base_machine,
                self.sample_size,
                cache_model=self.cache_model,
                store=self.store,
                deadline=d,
            ),
        )
        return self._stage(
            "convolve",
            deadline,
            lambda d: self._convolve(
                metric_obj, trace, target_probes, base_probes, base_time, d
            ),
        )

    def _stage(self, stage: str, deadline: Deadline, fn: Callable):
        """Run one backend stage: breaker-gated, budgeted, chaos-injected.

        The stage gets a child deadline capped at ``stage_fraction`` of
        the remaining request budget (and any absolute per-stage cap);
        the post-call checkpoint converts a stage that outran its slice —
        an injected stall, a slow backend — into a breaker failure while
        the *request* still has budget to serve a cheaper rung.
        """
        # A request whose budget is already gone skips the stage before
        # touching the breaker: the backend is not at fault for a late
        # request, so it must not absorb a failure for one.
        deadline.checkpoint(stage)
        breaker = self.breakers[stage]
        breaker.allow()
        budget = deadline.remaining() * self.stage_fraction
        cap = self.stage_timeouts.get(stage)
        if cap is not None:
            budget = min(budget, cap)
        sub = deadline.sub(budget, stage=stage)
        try:
            self._inject_faults(stage)
            out = fn(sub)
            sub.checkpoint(stage)
        except Exception:
            breaker.record_failure()
            raise
        breaker.record_success()
        return out

    def _inject_faults(self, stage: str) -> None:
        """Apply the chaos plan's scheduled stall/crash for this stage call.

        Keyed per (stage, call number) so a seeded plan misbehaves in
        exactly the same places on every run; the stall goes through the
        injectable sleeper, so fake-clock tests advance time instead of
        waiting.
        """
        plan = self.faults
        if plan is None or stage not in self.fault_stages:
            return
        with self._state_lock:
            self._stage_calls[stage] += 1
            call = self._stage_calls[stage]
        label = f"serve:{stage}"
        if plan.should_stall(label, call):
            self._sleep(plan.stall_seconds)
        if plan.should_crash(label, call):
            raise WorkerCrashError(
                f"injected crash in service stage {stage!r} (call {call})"
            )

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------
    def _probe_bundle(self, app, cpus: int, target, d: Deadline):
        target_probes = probe_machine(target, store=self.store, deadline=d)
        base_probes = probe_machine(self._base_machine, store=self.store, deadline=d)
        key = (app.label, cpus)
        base_time = self._base_times.get(key)
        if base_time is None:
            d.checkpoint("probe")
            base_time = self._base_executor.run(app, cpus).total_seconds
            self._base_times[key] = base_time
        return target_probes, base_probes, base_time

    def _convolve(
        self, metric_obj, trace, target_probes, base_probes, base_time, d: Deadline
    ) -> float:
        d.checkpoint("convolve")
        return metric_obj.predict_many(
            trace, [target_probes], base_probes, base_time, self.mode
        )[0]

    # ------------------------------------------------------------------
    # health surfaces
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness + diagnostics: the ``/healthz`` body (always served)."""
        with self._state_lock:
            requests = {
                "total": self.requests_total,
                "degraded": self.degraded_total,
                "unserved": self.unserved_total,
            }
        return {
            "status": "degraded" if self.breakers.any_open() else "ok",
            "uptime_seconds": round(self._clock() - self._started_at, 6),
            "breakers": self.breakers.snapshot(),
            "admission": self.admission.depth(),
            "store": {
                "enabled": self.store is not None,
                "invalidated": self.store.invalidated if self.store is not None else 0,
            },
            "requests": requests,
        }

    def ready(self) -> tuple[bool, dict]:
        """Readiness: False while any breaker is open or the queue is full.

        Load balancers drain a not-ready instance; the body explains why.
        """
        depth = self.admission.depth()
        open_stages = [
            stage for stage, b in self.breakers.breakers.items() if b.state == "open"
        ]
        shedding = depth["waiting"] >= depth["max_queue"]
        ok = not open_stages and not shedding
        return ok, {
            "ready": ok,
            "open_breakers": open_stages,
            "shedding": shedding,
            "admission": depth,
        }
