"""The resilient online prediction service.

:class:`PredictionService` answers one question — "how long will
application Y at N processors take on machine X, by metric K?" — through
the same staged engine the offline study uses
(:class:`~repro.engine.Engine`), but engineered to keep answering when
parts of that pipeline misbehave.  The service itself owns only the
*serving* concerns — validation, admission, the degradation ladder loop,
health surfaces; each rung executes as an engine
:class:`~repro.engine.PointPlan` under a middleware chain that implements
the per-stage policy exactly once:

* :class:`~repro.engine.DeadlineGate` — every request runs under a
  per-request :class:`~repro.util.deadline.Deadline`; a stage is skipped
  before touching any backend once the budget is spent;
* :class:`~repro.engine.BreakerMiddleware` — each backend stage is gated
  by a :class:`~repro.serve.breaker.CircuitBreaker`; a failing stage
  trips open and is *not called at all* until its cooldown elapses;
* :class:`~repro.engine.BudgetMiddleware` — a stage gets a bounded slice
  of the remaining budget, so one stall cannot eat the whole request;
* :class:`~repro.engine.FaultMiddleware` — chaos is first-class: the
  constructor takes the same :class:`~repro.util.faults.FaultPlan` the
  study engine uses, keyed per (stage, call number), plus injectable
  ``clock``/``sleep`` for fake-clock chaos tests.

On an open breaker, a stage failure or deadline pressure, the request
falls down the registry-derived degradation ladder
(:mod:`repro.serve.degrade`) and the response is stamped
``served_metric``/``degraded=True`` — a marked coarser answer instead of
an error.  A bounded :class:`~repro.serve.admission.AdmissionQueue` sheds
load beyond its queue with a retry-after hint instead of queueing
unboundedly.  Metrics resolve through the registry, so requests may name
them (``metric=balanced``) as well as number them.
"""

from __future__ import annotations

import logging
import math
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.apps.execution import GroundTruthExecutor
from repro.core.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ServiceUnavailableError,
    UnknownIdError,
)
from repro.core.metrics import get_metric
from repro.core.options import CacheModel, Mode
from repro.core.registry import REGISTRY
from repro.engine import (
    BreakerMiddleware,
    BudgetMiddleware,
    DeadlineGate,
    Engine,
    FaultMiddleware,
    MatrixPlan,
    PointPlan,
)
from repro.events.log import EventLog
from repro.events.projections import ProjectionEngine
from repro.events.types import BreakerTripped, PredictionEmitted
from repro.scenarios import BASE_SYSTEM, CATALOG, get_application, get_machine
from repro.probes.suite import probe_machine
from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import BreakerBoard
from repro.serve.degrade import RungAttempt, ladder_for, stages_for
from repro.tracing.metasim import DEFAULT_SAMPLE_SIZE, trace_application
from repro.tracing.store import TraceStore
from repro.util.clock import Clock, as_clock
from repro.util.deadline import Deadline
from repro.util.validation import nearest_ids

__all__ = [
    "PredictionService",
    "ServedPrediction",
    "STAGES",
    "catalog_doc",
    "validate_query",
]

#: Backend stages in pipeline order; each gets its own circuit breaker.
STAGES = ("probe", "trace", "convolve")

#: Default per-request budget, seconds.
DEFAULT_DEADLINE_SECONDS = 1.0

#: Share of the *remaining* request budget a single stage may consume.
#: Reserving the rest is what lets a request that lost a stage to a stall
#: still serve a cheaper rung inside its deadline.
DEFAULT_STAGE_FRACTION = 0.5


def catalog_doc() -> dict:
    """The ``GET /catalog`` body (shared by both HTTP front ends).

    Everything a client may name in a request: application labels,
    machine names and metric numbers, plus the mounted universe (if any)
    so callers can discover generated ids without guessing.
    """
    from repro.core.registry import REGISTRY

    universe = CATALOG.universe
    return {
        "applications": list(CATALOG.application_ids()),
        "machines": list(CATALOG.machine_ids()),
        "metrics": list(REGISTRY.numbers()),
        "base_system": BASE_SYSTEM,
        "universe": None
        if universe is None
        else {
            "ref": universe.ref,
            "digest": universe.digest(),
            "machines": len(universe.machines),
            "applications": len(universe.applications),
        },
    }


def validate_query(
    application: str, cpus: int, machine: str, metric: "int | str"
) -> tuple[object, object, int, int]:
    """Resolve and validate one query's identifiers.

    Module-level so the fleet front end can reject malformed traffic
    *before* a worker round-trip with exactly the errors the in-process
    service raises: unknown ids raise
    :class:`~repro.core.errors.UnknownIdError` carrying the known set and
    nearest matches (the HTTP 400 body); structural problems (bad cpus,
    oversized run) raise :class:`ValueError`.  Mirrors ``StudyConfig``'s
    name-the-bad-key convention.  ``metric`` may be a registry number
    (``9``), a numeric string (``"9"``) or a registry name
    (``"balanced"``, ``"conv+maps"``) — the registry's nearest-match
    suggestions cover misspelled names too.
    """
    label = str(application)
    try:
        app = get_application(label)
    except UnknownIdError:  # unknown base label: catalog carries known + nearest
        raise
    except KeyError as exc:  # bad @replica suffix on a known base label
        raise ValueError(exc.args[0] if exc.args else str(exc)) from None
    target = get_machine(machine)
    metric_num = REGISTRY.spec(metric).number
    cpus_num = int(cpus)
    if cpus_num <= 0:
        raise ValueError(f"cpus must be > 0, got {cpus!r}")
    if cpus_num > target.cpus:
        raise ValueError(
            f"cpus={cpus_num} exceeds the {target.cpus} processors of "
            f"system {machine!r} (the paper leaves such cells blank)"
        )
    return app, target, cpus_num, metric_num


@dataclass(frozen=True)
class ServedPrediction:
    """One answered prediction query.

    ``degraded`` is never silent: it is True exactly when
    ``served_metric != requested_metric``, so callers can cache coarse
    answers differently or re-query once ``/readyz`` reports recovery.
    """

    application: str
    cpus: int
    machine: str
    requested_metric: int
    served_metric: int
    metric_label: str
    predicted_seconds: float
    degraded: bool
    latency_seconds: float
    attempts: tuple[RungAttempt, ...] = ()

    def to_dict(self) -> dict:
        """JSON-shaped view (the HTTP layer's response body)."""
        return {
            "application": self.application,
            "cpus": self.cpus,
            "machine": self.machine,
            "requested_metric": self.requested_metric,
            "served_metric": self.served_metric,
            "metric_label": self.metric_label,
            "predicted_seconds": self.predicted_seconds,
            "degraded": self.degraded,
            "latency_ms": round(self.latency_seconds * 1000.0, 3),
            "attempts": [
                {
                    "metric": a.metric,
                    "stage": a.stage,
                    "error": a.error,
                    "message": a.message,
                }
                for a in self.attempts
            ],
        }


class _TraceLRU:
    """Bounded, thread-safe LRU of traces keyed by (application, cpus).

    Holds the store's memmap-backed :class:`~repro.tracing.binfmt.MappedTrace`
    objects so repeat queries skip the disk entirely.  Counters feed the
    ``/healthz`` body; all state shares one lock (the service's request
    threads hit this concurrently).
    """

    def __init__(self, size: int):
        self.size = size
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.size:
                self._data.popitem(last=False)
                self.evictions += 1

    def counters(self) -> dict:
        with self._lock:
            return {
                "size": len(self._data),
                "max_size": self.size,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class PredictionService:
    """Thread-safe online prediction front end over the staged engine.

    Parameters
    ----------
    base_system:
        System traces and Equation-1 ratios anchor to (the study's X0).
    mode, sample_size, cache_model, noise:
        Pipeline knobs, identical in meaning to
        :class:`~repro.study.runner.StudyConfig`; ``mode`` and
        ``cache_model`` are validated through the shared enums.
    store:
        Optional persistent :class:`~repro.tracing.store.TraceStore` (or
        directory path) shared by all request threads; its invalidation
        counter is surfaced on ``/healthz``.
    default_deadline:
        Per-request budget (seconds) when the request does not name one.
    stage_fraction:
        Share of the remaining request budget one stage may spend
        (see :data:`DEFAULT_STAGE_FRACTION`).
    stage_timeouts:
        Optional absolute per-stage caps, e.g. ``{"convolve": 0.1}`` —
        the effective stage budget is the smaller of cap and fraction.
    breakers, admission:
        Injectable resilience components (built with defaults on the
        service's clock when omitted).
    events:
        Optional :class:`~repro.events.log.EventLog` (or a log-directory
        path) the service appends its serving events to —
        ``prediction-emitted`` per answered query, ``breaker-tripped``
        per breaker opening — and feeds the live projection views behind
        ``GET /events/stats``.  A path builds a log with writer id
        ``"serve"``.  When a store is built here (from a path) it shares
        this log; an injected ``TraceStore`` keeps its own ``events``
        wiring.
    faults:
        Optional :class:`~repro.util.faults.FaultPlan`; stalls/crashes are
        injected per (stage, call-number) with the plan's seeded draws.
    fault_stages:
        Stages the plan applies to (chaos tests target one stage).
    clock, sleep:
        Time source — a :class:`~repro.util.clock.Clock` (or legacy bare
        monotonic callable) driving deadlines, breakers, admission and
        fault stalls; ``sleep`` defaults to the clock's own sleeper, so
        a single :class:`~repro.util.clock.VirtualClock` puts the whole
        service on simulated time.
    """

    def __init__(
        self,
        *,
        base_system: str = BASE_SYSTEM,
        mode: str = "relative",
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        cache_model: str = "analytic",
        noise: bool = True,
        store: "TraceStore | str | os.PathLike | None" = None,
        trace_cache_size: int = 32,
        default_deadline: float = DEFAULT_DEADLINE_SECONDS,
        stage_fraction: float = DEFAULT_STAGE_FRACTION,
        stage_timeouts: dict[str, float] | None = None,
        breakers: BreakerBoard | None = None,
        admission: AdmissionQueue | None = None,
        events: "EventLog | str | os.PathLike | None" = None,
        faults=None,
        fault_stages: tuple[str, ...] = STAGES,
        clock: "Clock | Callable[[], float] | None" = None,
        sleep: "Callable[[float], None] | None" = None,
    ):
        mode = str(Mode.coerce(mode))
        cache_model = str(CacheModel.coerce(cache_model))
        if not CATALOG.has_machine(base_system):
            known = CATALOG.machine_ids()
            raise UnknownIdError(
                "system", base_system, known, nearest_ids(base_system, known)
            )
        if default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be > 0 seconds, got {default_deadline!r}"
            )
        if not 0.0 < stage_fraction <= 1.0:
            raise ValueError(
                f"stage_fraction must be in (0, 1], got {stage_fraction!r}"
            )
        unknown = set(stage_timeouts or ()) - set(STAGES)
        if unknown:
            raise ValueError(
                f"unknown stage_timeouts keys {sorted(unknown)}; stages: {STAGES}"
            )
        self.base_system = base_system
        self.mode = mode
        self.sample_size = sample_size
        self.cache_model = cache_model
        self.noise = noise
        self.default_deadline = default_deadline
        self.stage_fraction = stage_fraction
        self.stage_timeouts = dict(stage_timeouts or {})
        clock = as_clock(clock)
        self._clock = clock.monotonic
        self._sleep = sleep if sleep is not None else clock.sleep
        if isinstance(events, EventLog) or events is None:
            self.events = events
        else:
            self.events = EventLog(events, writer="serve", fsync="commit")
        if isinstance(store, TraceStore) or store is None:
            self.store = store
        else:
            self.store = TraceStore(store, events=self.events)
        if trace_cache_size < 1:
            raise ValueError(
                f"trace_cache_size must be >= 1, got {trace_cache_size!r}"
            )
        # Bounded LRU of memmap-backed traces: a repeat /predict query for a
        # cached (application, cpus) never touches the disk — the store is
        # only read on an LRU miss.  Only wired when a store exists (without
        # one, the tracer's own in-memory cache is already disk-free).
        self._trace_cache = _TraceLRU(trace_cache_size)
        self.breakers = breakers if breakers is not None else BreakerBoard(STAGES, clock=clock)
        # Live projections over this service's own event stream; also the
        # sink for breaker trips (the board's single trip choke point).
        self._projections: ProjectionEngine | None = None
        if self.events is not None:
            self._projections = ProjectionEngine().attach(self.events)
            self.breakers.set_listener(self._on_breaker_trip)
        self.admission = admission if admission is not None else AdmissionQueue(clock=clock)
        self.faults = faults
        self.fault_stages = tuple(fault_stages)

        # The rung executor: the engine owns the probe → trace → convolve
        # dataflow; this middleware tuple is the service's entire
        # per-stage policy (ordering is contractual — see
        # repro.engine.middleware for the two invariants it encodes).
        self._engine = Engine(
            base_system,
            mode=mode,
            sample_size=sample_size,
            noise=noise,
            cache_model=cache_model,
            store=self.store,
            middleware=(
                DeadlineGate(),
                BreakerMiddleware(self.breakers),
                BudgetMiddleware(self.stage_fraction, self.stage_timeouts),
                FaultMiddleware(
                    lambda: self.faults,
                    self.fault_stages,
                    sleep=lambda seconds: self._sleep(seconds),
                ),
            ),
        )
        self._base_machine = self._engine.base_machine
        self._base_executor = GroundTruthExecutor(self._base_machine, noise=noise)
        self._base_times: dict[tuple[str, int], float] = {}
        self._state_lock = threading.Lock()
        self.requests_total = 0
        self.degraded_total = 0
        self.unserved_total = 0
        self._started_at = self._clock()

    # ------------------------------------------------------------------
    # validation (the service boundary: structured errors, never tracebacks)
    # ------------------------------------------------------------------
    def validate_request(
        self, application: str, cpus: int, machine: str, metric: "int | str"
    ) -> tuple[object, object, int, int]:
        """Resolve and validate one query's identifiers (see
        :func:`validate_query`)."""
        return validate_query(application, cpus, machine, metric)

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def predict(
        self,
        application: str,
        cpus: int,
        machine: str,
        metric: "int | str" = 9,
        *,
        deadline_seconds: float | None = None,
    ) -> ServedPrediction:
        """Answer one query inside its deadline, degrading as needed.

        Raises
        ------
        UnknownIdError, ValueError
            Invalid request (HTTP 400) — checked before admission, so
            malformed traffic never occupies a slot.
        OverloadedError
            Shed by the admission queue (HTTP 429).
        ServiceUnavailableError
            Every ladder rung failed (HTTP 503) — only possible when even
            the probe-cache rungs are failing.
        """
        app, target, cpus_num, metric_num = self.validate_request(
            application, cpus, machine, metric
        )
        budget = self.default_deadline if deadline_seconds is None else deadline_seconds
        if budget <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {budget!r}")
        deadline = Deadline(budget, clock=self._clock, stage="request")
        start = self._clock()
        with self._state_lock:
            self.requests_total += 1
        timeout = deadline.remaining()
        with self.admission.admit(None if math.isinf(timeout) else timeout):
            return self._predict_admitted(
                app, target, cpus_num, metric_num, deadline, start
            )

    def _predict_admitted(
        self, app, target, cpus: int, requested: int, deadline: Deadline, start: float
    ) -> ServedPrediction:
        attempts: list[RungAttempt] = []
        retry_hints: list[float] = []
        for rung in ladder_for(requested):
            stages = stages_for(rung)
            open_stage = next(
                (s for s in stages if self.breakers[s].state == "open"), None
            )
            if open_stage is not None:
                # Skip without touching any backend: an open breaker means
                # no calls, including the rung's earlier healthy stages.
                hint = self.breakers[open_stage].retry_after()
                retry_hints.append(hint)
                attempts.append(
                    RungAttempt(
                        rung,
                        open_stage,
                        "CircuitOpenError",
                        f"breaker {open_stage!r} open (retry in {hint:.3f}s)",
                    )
                )
                continue
            plan = PointPlan(
                app=app,
                cpus=cpus,
                target=target,
                metric=get_metric(rung),
                # Late-bound through the service so the request-scoped
                # base-time cache (and test instrumentation) stays here.
                probe=lambda d: self._probe_bundle(app, cpus, target, d),
                # With a store, traces route through the service's bounded
                # LRU of memmap-backed entries; without one the engine's
                # default (the tracer's in-memory cache) is already
                # disk-free.
                trace=(
                    (lambda d: self._trace_cached(app, cpus, d))
                    if self.store is not None
                    else None
                ),
            )
            try:
                predicted = self._engine.run_point(plan, deadline)
            except CircuitOpenError as exc:
                if exc.retry_after is not None:
                    retry_hints.append(exc.retry_after)
                attempts.append(
                    RungAttempt(rung, exc.stage, type(exc).__name__, str(exc))
                )
            except DeadlineExceededError as exc:
                attempts.append(
                    RungAttempt(rung, exc.stage, type(exc).__name__, str(exc))
                )
            except Exception as exc:  # backend failure: recorded, laddered past
                attempts.append(
                    RungAttempt(rung, None, type(exc).__name__, str(exc))
                )
            else:
                degraded = rung != requested
                if degraded:
                    with self._state_lock:
                        self.degraded_total += 1
                self._emit_event(
                    PredictionEmitted(
                        application=app.label,
                        cpus=cpus,
                        machine=target.name,
                        metric=get_metric(rung).label,
                        predicted_seconds=float(predicted),
                        degraded=degraded,
                    )
                )
                return ServedPrediction(
                    application=app.label,
                    cpus=cpus,
                    machine=target.name,
                    requested_metric=requested,
                    served_metric=rung,
                    metric_label=get_metric(rung).label,
                    predicted_seconds=float(predicted),
                    degraded=degraded,
                    latency_seconds=self._clock() - start,
                    attempts=tuple(attempts),
                )
        with self._state_lock:
            self.unserved_total += 1
        detail = "; ".join(f"#{a.metric}: {a.error}" for a in attempts)
        raise ServiceUnavailableError(
            f"no ladder rung could serve the request ({detail})",
            retry_after=min(retry_hints) if retry_hints else None,
        )

    # ------------------------------------------------------------------
    # the batch path: whole sub-matrices through the tensorized engine
    # ------------------------------------------------------------------
    def predict_cells(
        self,
        rows,
        systems,
        metrics,
        *,
        deadline_seconds: float | None = None,
    ) -> list:
        """Price explicit ``(application, cpus)`` rows against ``systems``
        for ``metrics`` — one engine matrix run, not N point lookups.

        This is the worker half of ``POST /predict/batch``: the front end
        compiles a heterogeneous cell list into per-shard row sets and
        each worker rides :meth:`~repro.engine.Engine.run_matrix` — the
        same tensorized path the offline study uses, sharing one rate
        table per row across every metric and machine — under the
        service's own middleware chain (deadline gate, breakers, budget,
        faults) and admission queue.  Returns
        :class:`~repro.engine.PredictionRecord` rows in the canonical
        (application, system, cpus, metric) order; identical rows and
        axes therefore reproduce study records bit-for-bit.
        """
        seen_rows = []
        labels: list[str] = []
        for label, cpus in rows:
            label = str(label)
            try:
                app = get_application(label)
            except UnknownIdError:  # unknown base label
                raise
            except KeyError as exc:  # bad @replica suffix on a known base
                raise ValueError(exc.args[0] if exc.args else str(exc)) from None
            cpus_num = int(cpus)
            if cpus_num <= 0:
                raise ValueError(f"cpus must be > 0, got {cpus!r}")
            # cells whose cpus exceed a given system are skipped per
            # system inside the engine (the paper's blank cells), so no
            # machine-size check belongs here.
            if (app.label, cpus_num) not in seen_rows:
                seen_rows.append((app.label, cpus_num))
            if app.label not in labels:
                labels.append(app.label)
        for system in systems:
            if not CATALOG.has_machine(system):
                known = CATALOG.machine_ids()
                raise UnknownIdError(
                    "machine", system, known, nearest_ids(system, known)
                )
        metric_numbers = tuple(REGISTRY.spec(key).number for key in metrics)
        if not seen_rows or not systems or not metric_numbers:
            return []
        plan = MatrixPlan(
            labels=tuple(labels),
            systems=tuple(systems),
            metrics=metric_numbers,
            rows=tuple(seen_rows),
        )
        deadline = None
        if deadline_seconds is not None:
            if deadline_seconds <= 0:
                raise ValueError(
                    f"deadline must be > 0 seconds, got {deadline_seconds!r}"
                )
            deadline = Deadline(deadline_seconds, clock=self._clock, stage="batch")
        with self._state_lock:
            self.requests_total += 1
        timeout = None if deadline is None else deadline.remaining()
        with self.admission.admit(timeout):
            records, _observed = self._engine.run_matrix(plan, deadline=deadline)
        return records

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------
    def _trace_cached(self, app, cpus: int, d: Deadline):
        """Trace backend: bounded LRU over the store's memmap entries.

        A hit costs one dict lookup; a miss reads (or creates) the store
        entry — ``use_cache=False`` bypasses the tracer's unbounded global
        cache, so the mapped trace object enters *this* LRU and the disk
        is only touched again after an eviction.
        """
        key = (app.label, cpus)
        trace = self._trace_cache.get(key)
        if trace is None:
            trace = trace_application(
                app,
                cpus,
                self._base_machine,
                self.sample_size,
                cache_model=self.cache_model,
                use_cache=False,
                store=self.store,
                deadline=d,
            )
            self._trace_cache.put(key, trace)
        return trace

    def _probe_bundle(self, app, cpus: int, target, d: Deadline):
        target_probes = probe_machine(target, store=self.store, deadline=d)
        base_probes = probe_machine(self._base_machine, store=self.store, deadline=d)
        key = (app.label, cpus)
        base_time = self._base_times.get(key)
        if base_time is None:
            d.checkpoint("probe")
            base_time = self._base_executor.run(app, cpus).total_seconds
            self._base_times[key] = base_time
        return target_probes, base_probes, base_time

    # ------------------------------------------------------------------
    # serving events
    # ------------------------------------------------------------------
    def _emit_event(self, event) -> None:
        """Append one serving event; audit trouble never fails a request."""
        if self.events is None:
            return
        try:
            self.events.append(event)
        except (OSError, ValueError) as exc:
            logging.getLogger(__name__).warning(
                "could not append %s event: %s", type(event).kind, exc
            )

    def _on_breaker_trip(self, stage: str, failures: int, cooldown: float) -> None:
        self._emit_event(
            BreakerTripped(stage=stage, failures=failures, cooldown_seconds=cooldown)
        )

    def events_stats(self) -> dict:
        """The ``GET /events/stats`` body: live projection views.

        Views are materialized incrementally from the service's event
        stream (never by re-reading the log on request), so this surface
        stays cheap under load; ``repro-study events rebuild`` produces
        the identical views from the raw log alone.
        """
        if self.events is None or self._projections is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "writer": self.events.writer,
            "last_seq": self.events.last_seq,
            "views": self._projections.views(),
        }

    def drain(self) -> None:
        """Flush everything durable: the store's backlog, then the log.

        The SIGTERM graceful-drain path: called after the HTTP server has
        stopped accepting and finished in-flight requests.
        """
        if self.store is not None:
            self.store.close()
        if self.events is not None:
            self.events.commit()

    # ------------------------------------------------------------------
    # health surfaces
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness + diagnostics: the ``/healthz`` body (always served)."""
        with self._state_lock:
            requests = {
                "total": self.requests_total,
                "degraded": self.degraded_total,
                "unserved": self.unserved_total,
            }
        return {
            "status": "degraded" if self.breakers.any_open() else "ok",
            "uptime_seconds": round(self._clock() - self._started_at, 6),
            "breakers": self.breakers.snapshot(),
            "admission": self.admission.depth(),
            "store": {
                "enabled": self.store is not None,
                "invalidated": self.store.invalidated if self.store is not None else 0,
            },
            "trace_cache": self._trace_cache.counters(),
            "events": {
                "enabled": self.events is not None,
                "last_seq": self.events.last_seq if self.events is not None else 0,
            },
            "requests": requests,
        }

    def ready(self) -> tuple[bool, dict]:
        """Readiness: False while any breaker is open or the queue is full.

        Load balancers drain a not-ready instance; the body explains why.
        """
        depth = self.admission.depth()
        open_stages = [
            stage for stage, b in self.breakers.breakers.items() if b.state == "open"
        ]
        shedding = depth["waiting"] >= depth["max_queue"]
        ok = not open_stages and not shedding
        return ok, {
            "ready": ok,
            "open_breakers": open_stages,
            "shedding": shedding,
            "admission": depth,
        }
