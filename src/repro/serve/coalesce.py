"""Single-flight request coalescing for the fleet front end.

Procurement traffic is massively duplicated: a sweep UI, a dashboard
refresh and a retrying client all ask for the same
``(application, cpus, machine, metric)`` cell within milliseconds of each
other (Cornebize & Legrand's variability study makes the same point about
repeated identical simulation cells).  Computing each copy is pure waste —
the answer is deterministic for a given engine configuration.

:class:`SingleFlight` collapses the duplicates: the first request for a
key becomes the **leader** and actually calls the engine; every request
for the same key that arrives while the leader is in flight becomes a
**follower** and awaits the leader's future.  Exactly one engine call is
made per flight; followers are stamped ``coalesced=true`` so callers can
see they received a shared answer.  A leader failure propagates the same
exception to every follower of that flight, then the key clears — the
*next* request starts a fresh flight rather than inheriting a poisoned
future.

Single event loop only (the fleet front end is one asyncio loop); no
locks needed because flight bookkeeping never crosses an ``await``.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

__all__ = ["SingleFlight"]


class SingleFlight:
    """Coalesce concurrent calls with one key into one in-flight call."""

    def __init__(self):
        self._flights: dict = {}
        self.leaders_total = 0
        self.followers_total = 0
        self.failed_flights_total = 0

    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        """Number of distinct keys currently being computed."""
        return len(self._flights)

    def counters(self) -> dict:
        """Coalescing observability for ``/healthz``."""
        return {
            "in_flight": self.in_flight(),
            "leaders_total": self.leaders_total,
            "followers_total": self.followers_total,
            "failed_flights_total": self.failed_flights_total,
        }

    # ------------------------------------------------------------------
    async def run(self, key, factory: Callable[[], Awaitable]) -> tuple:
        """Return ``(result, coalesced)`` for ``key``.

        The first caller for a key runs ``factory()`` and returns
        ``coalesced=False``; concurrent callers for the same key await
        the leader's outcome and return ``coalesced=True``.  The leader's
        exception (including cancellation) propagates to every follower,
        and the key is cleared *before* any follower wakes, so a retry
        immediately becomes a new leader.
        """
        flight = self._flights.get(key)
        if flight is not None:
            self.followers_total += 1
            # shield: cancelling one follower must not cancel the shared
            # flight the leader and other followers still depend on.
            return await asyncio.shield(flight), True
        future = asyncio.get_running_loop().create_future()
        self._flights[key] = future
        self.leaders_total += 1
        try:
            result = await factory()
        except BaseException as exc:
            del self._flights[key]
            self.failed_flights_total += 1
            if not future.cancelled():
                future.set_exception(exc)
                # A flight with zero followers would log "exception was
                # never retrieved" at GC time; consuming it here is safe —
                # followers still receive the exception when they await.
                future.exception()
            raise
        else:
            del self._flights[key]
            if not future.cancelled():
                future.set_result(result)
            return result, False
