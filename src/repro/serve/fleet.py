"""The multi-process engine worker fleet behind the asyncio front end.

One process cannot be the "millions of users" serving tier: the engine is
CPU-bound Python, so a single ``ThreadingHTTPServer`` serializes on the
GIL no matter how many threads it spawns.  The fleet runs **N worker
processes**, each owning a full :class:`~repro.serve.service.PredictionService`
— its own :class:`~repro.engine.Engine`, mapped-trace LRU, probe caches,
circuit breakers, degradation ladder and admission queue — so the
resilience semantics of PR 4 hold *per worker* while predictions scale
across cores.

Transport is deliberately primitive: each worker talks to the front end
over one pre-opened ``socketpair`` carrying length-prefixed JSON frames
(4-byte little-endian length + UTF-8 body).  Requests carry an ``id``;
workers answer out of order (a small thread pool serves frames
concurrently so a slow batch does not starve point queries), and the
front end matches responses to futures by id.

Supervision is kernel-grade, not protocol-grade: the front end watches
each worker's ``Process.sentinel`` through ``loop.add_reader``, so a
``SIGKILL``-ed worker is detected the moment the process dies even if
its socket lingers in some forked sibling.  Death removes the worker
from the shard ring (its key range re-routes to the survivors — and
*only* its range moves, the ring's minimal-movement property), fails the
worker's in-flight requests with retry-able
:class:`~repro.core.errors.OverloadedError` (HTTP 429, never a 500), and
schedules a respawn; the replacement re-joins the ring under the same
name and reclaims exactly its old key range.
"""

from __future__ import annotations

import asyncio
import functools
import json
import logging
import multiprocessing
import os
import signal
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.errors import (
    OverloadedError,
    ReproError,
    ServiceUnavailableError,
    UnknownIdError,
)
from repro.events.types import Event, WorkerDied, WorkerRespawned
from repro.scenarios import BASE_SYSTEM
from repro.serve.admission import AdmissionQueue, ServiceTimeEwma
from repro.serve.shard import DEFAULT_VNODES, ShardRing
from repro.tracing.metasim import DEFAULT_SAMPLE_SIZE
from repro.tracing.store import trace_key

__all__ = ["Fleet", "WorkerHandle", "error_payload"]

log = logging.getLogger(__name__)

#: Per-worker request threads: enough that point queries overtake an
#: in-flight batch, small enough that the GIL stays the real limit.
DEFAULT_WORKER_THREADS = 4

#: Per-worker pending-frame bound at the front end; beyond it the worker
#: is considered backlogged and new arrivals shed with 429.
DEFAULT_MAX_PENDING = 64


# ---------------------------------------------------------------------------
# framing (both sides)
# ---------------------------------------------------------------------------
def _send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(len(payload).to_bytes(4, "little") + payload)


def _recv_exact(rfile, n: int) -> bytes | None:
    data = rfile.read(n)
    if data is None or len(data) < n:
        return None  # EOF: the peer is gone
    return data


# ---------------------------------------------------------------------------
# error mapping (shared by worker replies and the front end's own rejects)
# ---------------------------------------------------------------------------
def error_payload(exc: BaseException) -> dict:
    """One exception → the HTTP-shaped ``{status, body, retry_after}``.

    The same taxonomy mapping the single-process HTTP layer applies,
    expressed as data so it can cross the worker/front-end boundary in a
    frame: invalid ids 400, shed 429, every-rung-failed 503, any other
    taxonomy error a structured 500 — never a traceback page.
    """
    if isinstance(exc, UnknownIdError):
        return {
            "status": 400,
            "body": {
                "error": "UnknownId",
                "message": str(exc),
                "kind": exc.kind,
                "value": str(exc.value),
                "known": list(exc.known),
                "nearest": list(exc.nearest),
            },
        }
    if isinstance(exc, (ValueError, TypeError)):
        return {"status": 400, "body": {"error": "BadParameter", "message": str(exc)}}
    if isinstance(exc, OverloadedError):
        return {
            "status": 429,
            "body": {
                "error": "Overloaded",
                "message": str(exc),
                "retry_after_seconds": exc.retry_after,
            },
            "retry_after": exc.retry_after,
        }
    if isinstance(exc, ServiceUnavailableError):
        return {
            "status": 503,
            "body": {
                "error": "ServiceUnavailable",
                "message": str(exc),
                "retry_after_seconds": exc.retry_after,
            },
            "retry_after": exc.retry_after,
        }
    if isinstance(exc, ReproError):
        return {
            "status": 500,
            "body": {"error": type(exc).__name__, "message": str(exc)},
        }
    return {"status": 500, "body": {"error": type(exc).__name__, "message": str(exc)}}


# ---------------------------------------------------------------------------
# the worker process
# ---------------------------------------------------------------------------
def _build_service(config: dict, worker_id: str | None = None):
    """Construct the worker's PredictionService from the plain-dict config.

    Plain dict (not a dataclass) because it crosses the process boundary
    under both fork and spawn start methods.  When the config names an
    ``events_dir``, each worker appends to its *own* writer stream in
    that directory (stream id = worker name) — per-writer streams are
    what lets N processes share one log directory without sharing files.
    """
    from repro.events.log import EventLog
    from repro.serve.breaker import BreakerBoard
    from repro.serve.service import STAGES, PredictionService
    from repro.util.faults import FaultPlan

    if config.get("universe"):
        # Mount the front end's scenario universe before any id resolves:
        # the ref (generator spec or TOML path) rebuilds the same catalog
        # in this process under fork and spawn alike.
        from repro.scenarios import mount_universe

        mount_universe(config["universe"])
    faults = config.get("faults")
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    breakers = None
    if config.get("breaker") is not None:
        breakers = BreakerBoard(STAGES, **config["breaker"])
    admission = AdmissionQueue(
        max_concurrent=config.get("max_concurrent", 4),
        max_queue=config.get("max_queue", 16),
    )
    events = None
    if config.get("events_dir"):
        events = EventLog(
            config["events_dir"], writer=worker_id or "serve", fsync="commit"
        )
    return PredictionService(
        events=events,
        base_system=config.get("base_system", BASE_SYSTEM),
        mode=config.get("mode", "relative"),
        sample_size=config.get("sample_size", DEFAULT_SAMPLE_SIZE),
        cache_model=config.get("cache_model", "analytic"),
        noise=config.get("noise", True),
        store=config.get("store"),
        trace_cache_size=config.get("trace_cache_size", 32),
        default_deadline=config.get("default_deadline", 1.0),
        stage_fraction=config.get("stage_fraction", 0.5),
        stage_timeouts=config.get("stage_timeouts"),
        breakers=breakers,
        admission=admission,
        faults=faults,
        fault_stages=tuple(config.get("fault_stages", STAGES)),
    )


def _handle_frame(service, worker_id: str, msg: dict, reply) -> None:
    """Serve one request frame inside a worker pool thread."""
    rid = msg.get("id")
    op = msg.get("op")
    try:
        if op == "predict":
            deadline_ms = msg.get("deadline_ms")
            served = service.predict(
                msg["application"],
                int(msg["cpus"]),
                msg["machine"],
                msg.get("metric", 9),
                deadline_seconds=(
                    None if deadline_ms is None else float(deadline_ms) / 1000.0
                ),
            )
            body = served.to_dict()
            body["worker"] = worker_id
            reply({"id": rid, "ok": True, "result": body})
        elif op == "batch":
            deadline_ms = msg.get("deadline_ms")
            records = service.predict_cells(
                [(label, cpus) for label, cpus in msg["rows"]],
                msg["systems"],
                msg["metrics"],
                deadline_seconds=(
                    None if deadline_ms is None else float(deadline_ms) / 1000.0
                ),
            )
            reply(
                {
                    "id": rid,
                    "ok": True,
                    "result": {
                        "worker": worker_id,
                        "records": [list(record) for record in records],
                    },
                }
            )
        elif op == "health":
            body = service.health()
            body["worker"] = worker_id
            body["pid"] = os.getpid()
            reply({"id": rid, "ok": True, "result": body})
        elif op == "ready":
            ok, body = service.ready()
            reply({"id": rid, "ok": True, "result": {"ready_ok": ok, **body}})
        elif op == "events":
            body = service.events_stats()
            body["worker"] = worker_id
            reply({"id": rid, "ok": True, "result": body})
        elif op == "ping":
            reply({"id": rid, "ok": True, "result": {"worker": worker_id}})
        else:
            reply(
                {
                    "id": rid,
                    "ok": False,
                    "status": 400,
                    "body": {"error": "BadParameter", "message": f"unknown op {op!r}"},
                }
            )
    except BaseException as exc:  # noqa: BLE001 — every error becomes a frame
        reply({"id": rid, "ok": False, **error_payload(exc)})


def _worker_main(sock: socket.socket, worker_id: str, config: dict) -> None:
    """Entry point of one engine worker process."""
    # The front end owns Ctrl-C; a worker must only exit on socket EOF
    # (orderly shutdown), a graceful SIGTERM, or a kill (chaos /
    # supervisor restart).
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    def _sigterm(signum, frame):  # noqa: ARG001 - signal handler signature
        # Interrupts the blocking frame read below; the finally block
        # then drains in-flight work and flushes durable state, so a
        # TERM'd worker loses nothing it already accepted.
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _sigterm)
    service = _build_service(config, worker_id)
    pool = ThreadPoolExecutor(
        max_workers=config.get("threads", DEFAULT_WORKER_THREADS),
        thread_name_prefix=f"fleet-{worker_id}",
    )
    write_lock = threading.Lock()

    def reply(payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        with write_lock:
            try:
                _send_frame(sock, data)
            except OSError:  # front end went away mid-reply; exit quietly
                pass

    rfile = sock.makefile("rb")
    try:
        while True:
            header = _recv_exact(rfile, 4)
            if header is None:
                break  # front end closed our pipe: orderly shutdown
            length = int.from_bytes(header, "little")
            payload = _recv_exact(rfile, length)
            if payload is None:
                break
            try:
                msg = json.loads(payload)
            except ValueError:
                continue  # torn frame; the front end will time out the id
            pool.submit(_handle_frame, service, worker_id, msg, reply)
    finally:
        # Graceful drain: stop accepting (the read loop is done), finish
        # every admitted frame, then flush the store's write-behind queue
        # and fsync the event log before the socket closes.
        pool.shutdown(wait=True)
        try:
            service.drain()
        except Exception:  # pragma: no cover - drain must never mask exit
            log.exception("fleet worker %s drain failed", worker_id)
        try:
            sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# the front-end side
# ---------------------------------------------------------------------------
class WorkerHandle:
    """Front-end view of one worker: socket, pending futures, EWMA gate."""

    def __init__(
        self,
        name: str,
        proc,
        sock: socket.socket,
        *,
        max_pending: int = DEFAULT_MAX_PENDING,
    ):
        self.name = name
        self.proc = proc
        self.alive = False
        self.max_pending = max_pending
        self.pending: dict[int, asyncio.Future] = {}
        self.ewma = ServiceTimeEwma()
        self.calls_total = 0
        self.shed_total = 0
        self._sock = sock
        self._seq = 0
        self._writer = None
        self._reader_task = None

    # ------------------------------------------------------------------
    async def connect(self) -> None:
        reader, writer = await asyncio.open_connection(sock=self._sock)
        self._writer = writer
        self.alive = True
        self._reader_task = asyncio.create_task(
            self._read_loop(reader), name=f"fleet-read-{self.name}"
        )

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                header = await reader.readexactly(4)
                length = int.from_bytes(header, "little")
                payload = await reader.readexactly(length)
                msg = json.loads(payload)
                future = self.pending.get(msg.get("id"))
                if future is not None and not future.done():
                    future.set_result(msg)
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            pass  # death is handled authoritatively by the sentinel watch
        except asyncio.CancelledError:
            raise

    # ------------------------------------------------------------------
    def retry_after(self) -> float:
        return self.ewma.retry_after(len(self.pending) + 1, 1)

    async def call(self, op: str, params: dict, *, timeout: float | None = None) -> dict:
        """One framed request/response; sheds beyond the pending bound."""
        if not self.alive:
            raise OverloadedError(
                f"worker {self.name} is restarting", retry_after=self.retry_after()
            )
        if len(self.pending) >= self.max_pending:
            self.shed_total += 1
            raise OverloadedError(
                f"worker {self.name} backlog full "
                f"({len(self.pending)} frames pending)",
                retry_after=self.retry_after(),
            )
        loop = asyncio.get_running_loop()
        self._seq += 1
        rid = self._seq
        future = loop.create_future()
        self.pending[rid] = future
        self.calls_total += 1
        frame = json.dumps({"id": rid, "op": op, **params}).encode("utf-8")
        start = loop.time()
        try:
            self._writer.write(len(frame).to_bytes(4, "little") + frame)
            await self._writer.drain()
            if timeout is None:
                response = await future
            else:
                response = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            raise ServiceUnavailableError(
                f"worker {self.name} did not answer within {timeout:.3f}s"
            ) from None
        except (ConnectionResetError, BrokenPipeError, OSError):
            raise OverloadedError(
                f"worker {self.name} connection lost", retry_after=self.retry_after()
            ) from None
        finally:
            self.pending.pop(rid, None)
        self.ewma.observe(loop.time() - start)
        return response

    # ------------------------------------------------------------------
    def fail_pending(self, exc: BaseException) -> None:
        """Resolve every in-flight future with ``exc`` (worker died)."""
        for future in list(self.pending.values()):
            if not future.done():
                future.set_exception(exc)
        self.pending.clear()

    def close(self) -> None:
        self.alive = False
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None:
            try:
                self._writer.close()
            except (OSError, RuntimeError):
                pass


class Fleet:
    """Spawn, route to, supervise and respawn the engine workers.

    Parameters
    ----------
    workers:
        Number of engine worker processes.
    service_config:
        Plain-dict :class:`~repro.serve.service.PredictionService`
        configuration shipped to every worker (see ``_build_service``).
    vnodes:
        Virtual nodes per worker on the shard ring.
    worker_threads, max_pending:
        Per-worker request threads and front-end pending bound.
    respawn, respawn_delay:
        Whether (and how soon) a dead worker is replaced.  The chaos
        harness disables respawn to hold the degraded topology still.
    events:
        Optional :class:`~repro.events.log.EventLog` (the supervisor's
        own writer stream) that records worker deaths and respawns.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        service_config: dict | None = None,
        vnodes: int = DEFAULT_VNODES,
        worker_threads: int = DEFAULT_WORKER_THREADS,
        max_pending: int = DEFAULT_MAX_PENDING,
        respawn: bool = True,
        respawn_delay: float = 0.2,
        events=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.n_workers = workers
        self.events = events
        self.config = dict(service_config or {})
        self.config.setdefault("threads", worker_threads)
        self.ring = ShardRing(vnodes=vnodes)
        self.workers: dict[str, WorkerHandle] = {}
        self.max_pending = max_pending
        self.respawn = respawn
        self.respawn_delay = respawn_delay
        self.deaths_total = 0
        self.respawns_total = 0
        self._closing = False
        self._tasks: set[asyncio.Task] = set()
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        for i in range(self.n_workers):
            await self._launch(f"w{i}")

    async def _launch(self, name: str) -> None:
        parent_sock, child_sock = socket.socketpair()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_sock, name, self.config),
            name=f"repro-fleet-{name}",
            daemon=True,
        )
        proc.start()
        child_sock.close()  # the parent's copy; the child holds its own
        handle = WorkerHandle(name, proc, parent_sock, max_pending=self.max_pending)
        await handle.connect()
        self.workers[name] = handle
        self.ring.add(name)
        loop = asyncio.get_running_loop()
        # Kernel-grade liveness: the sentinel fd becomes readable the
        # moment the process dies, socket state notwithstanding.
        loop.add_reader(
            proc.sentinel, functools.partial(self._on_sentinel, name, proc)
        )

    def _on_sentinel(self, name: str, proc) -> None:
        loop = asyncio.get_running_loop()
        try:
            loop.remove_reader(proc.sentinel)
        except (OSError, ValueError):
            pass
        handle = self.workers.get(name)
        if handle is None or handle.proc is not proc:
            return  # stale callback for an already-replaced incarnation
        self._on_death(name, handle)

    def _on_death(self, name: str, handle: WorkerHandle) -> None:
        if not handle.alive:
            return
        self.deaths_total += 1
        log.warning("fleet worker %s (pid %s) died", name, handle.proc.pid)
        self._emit(WorkerDied(worker=name, pid=handle.proc.pid or 0))
        self.ring.remove(name)
        handle.close()
        # In-flight work on the dead worker is shed, not erred: clients
        # get 429 + Retry-After and re-route to the survivors on retry.
        handle.fail_pending(
            OverloadedError(
                f"worker {name} died mid-request",
                retry_after=max(0.05, self.respawn_delay),
            )
        )
        if self.respawn and not self._closing:
            task = asyncio.get_running_loop().create_task(self._respawn(name))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _respawn(self, name: str) -> None:
        await asyncio.sleep(self.respawn_delay)
        if self._closing:
            return
        try:
            await self._launch(name)
            self.respawns_total += 1
            log.info("fleet worker %s respawned", name)
            self._emit(
                WorkerRespawned(worker=name, pid=self.workers[name].proc.pid or 0)
            )
        except Exception:  # pragma: no cover - spawn failure is environmental
            log.exception("fleet worker %s respawn failed", name)

    def _emit(self, event: Event) -> None:
        """Best-effort append to the supervisor's event stream."""
        if self.events is None:
            return
        try:
            self.events.append(event)
        except (OSError, ValueError):  # pragma: no cover - audit is best-effort
            log.warning("fleet event append failed", exc_info=True)

    async def stop(self) -> None:
        self._closing = True
        for task in list(self._tasks):
            task.cancel()
        loop = asyncio.get_running_loop()
        for handle in self.workers.values():
            try:
                loop.remove_reader(handle.proc.sentinel)
            except (OSError, ValueError):
                pass
            handle.close()  # EOF on the socket is the shutdown signal
        for handle in self.workers.values():
            handle.proc.join(timeout=2.0)
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(timeout=2.0)
        self.workers.clear()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_key(self, application: str, cpus: int) -> str:
        """The store's content digest for this trace identity."""
        return trace_key(
            application,
            cpus,
            self.config.get("base_system", BASE_SYSTEM),
            self.config.get("sample_size", DEFAULT_SAMPLE_SIZE),
            False,
            self.config.get("cache_model", "analytic"),
        )

    def owner_of(self, application: str, cpus: int) -> WorkerHandle:
        """The live worker owning this (application, cpus) shard."""
        try:
            name = self.ring.node_for(self.shard_key(application, cpus))
        except LookupError:
            raise OverloadedError(
                "no live fleet workers",
                retry_after=max(0.05, self.respawn_delay),
            ) from None
        return self.workers[name]

    def alive_count(self) -> int:
        return sum(1 for handle in self.workers.values() if handle.alive)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    async def worker_health(self, timeout: float = 2.0) -> dict:
        """Per-worker health frames, gathered concurrently."""

        async def one(handle: WorkerHandle) -> tuple[str, dict]:
            base = {
                "alive": handle.alive,
                "pid": handle.proc.pid,
                "pending": len(handle.pending),
                "calls_total": handle.calls_total,
                "shed_total": handle.shed_total,
                "ewma_seconds": round(handle.ewma.seconds, 6),
            }
            if not handle.alive:
                return handle.name, base
            try:
                response = await handle.call("health", {}, timeout=timeout)
                base["health"] = response.get("result", {})
            except Exception as exc:
                base["health_error"] = type(exc).__name__
            return handle.name, base

        rows = await asyncio.gather(
            *(one(handle) for handle in list(self.workers.values()))
        )
        return dict(rows)
