"""Per-stage circuit breakers for the prediction service.

Esposito et al. (PAPERS.md) show that rate measurements themselves are
unstable inputs; a serving system must therefore treat each backend stage
— probe, trace, convolve — as something that *will* misbehave.  A
:class:`CircuitBreaker` wraps one stage with the classic three-state
machine:

* **closed** — calls flow through; failures inside a sliding
  monotonic-clock window are counted, and crossing ``failure_threshold``
  trips the breaker open;
* **open** — every call is refused up front with
  :class:`~repro.core.errors.CircuitOpenError` (the caller falls down the
  degradation ladder instead of waiting on a sick backend); once the
  cooldown elapses the breaker moves to half-open;
* **half-open** — exactly ``half_open_quota`` probe calls are admitted.
  One success closes the breaker (the stage recovered); one failure
  re-opens it with a *longer* cooldown, grown on the shared
  :func:`repro.util.retry.backoff_seconds` schedule with deterministic
  seeded jitter.

Everything is driven by an injectable monotonic clock, so the chaos suite
advances time explicitly and asserts state transitions exactly — no
sleeps, no flakiness.  All methods are thread-safe: one breaker instance
is shared by every request thread of the service.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from typing import Callable

from repro.core.errors import CircuitOpenError
from repro.util.clock import Clock, as_clock
from repro.util.retry import backoff_seconds

log = logging.getLogger(__name__)

__all__ = ["CircuitBreaker", "BreakerBoard", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Three-state circuit breaker around one backend stage.

    Parameters
    ----------
    stage:
        Stage name (``"probe"``, ``"trace"``, ``"convolve"``); labels
        errors, health reports and the cooldown jitter's RNG key.
    failure_threshold:
        Failures inside ``window_seconds`` that trip the breaker open.
    window_seconds:
        Sliding window over which failures are counted (monotonic clock).
    cooldown_seconds:
        Open duration before the first half-open probe window.  Re-opens
        from half-open grow this on the capped-exponential backoff
        schedule (seeded jitter, so recovery timing is reproducible).
    half_open_quota:
        Probe calls admitted while half-open — exactly this many, total,
        per half-open window, across all threads.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        stage: str,
        *,
        failure_threshold: int = 5,
        window_seconds: float = 30.0,
        cooldown_seconds: float = 5.0,
        half_open_quota: int = 1,
        clock: "Clock | Callable[[], float] | None" = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {window_seconds!r}")
        if cooldown_seconds <= 0:
            raise ValueError(
                f"cooldown_seconds must be > 0, got {cooldown_seconds!r}"
            )
        if half_open_quota < 1:
            raise ValueError(f"half_open_quota must be >= 1, got {half_open_quota!r}")
        self.stage = stage
        self.failure_threshold = failure_threshold
        self.window_seconds = window_seconds
        self.cooldown_seconds = cooldown_seconds
        self.half_open_quota = half_open_quota
        self._clock = as_clock(clock).monotonic
        self._lock = threading.RLock()
        self._state = CLOSED
        self._failure_times: deque[float] = deque()
        self._opened_at = 0.0
        self._cooldown = cooldown_seconds
        self._reopens = 0  # consecutive half-open failures (backoff round)
        self._half_open_used = 0
        self._opened_total = 0
        #: Optional ``fn(stage, failures, cooldown_seconds)`` called on
        #: every closed/half-open -> open transition — the single choke
        #: point all trips pass through, so an event-log audit trail sees
        #: each one exactly once.  Called under the breaker lock; must not
        #: call back into the breaker.
        self.on_trip: "Callable[[str, int, float], None] | None" = None

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def _advance(self, now: float) -> None:
        """Time-driven transition: open -> half-open once cooldown elapses."""
        if self._state == OPEN and now - self._opened_at >= self._cooldown:
            self._state = HALF_OPEN
            self._half_open_used = 0

    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half_open``)."""
        with self._lock:
            self._advance(self._clock())
            return self._state

    def retry_after(self) -> float:
        """Seconds until the next call could be admitted (0 when admitting)."""
        with self._lock:
            now = self._clock()
            self._advance(now)
            if self._state == OPEN:
                return max(0.0, self._opened_at + self._cooldown - now)
            return 0.0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def allow(self) -> None:
        """Admit one call or raise :class:`CircuitOpenError`.

        Open: always refused (this is the "no backend calls while open"
        invariant).  Half-open: admits until the probe quota is spent —
        the admission itself consumes quota, so concurrent threads can
        never over-probe a convalescing backend.
        """
        with self._lock:
            now = self._clock()
            self._advance(now)
            if self._state == CLOSED:
                return
            if self._state == HALF_OPEN:
                if self._half_open_used < self.half_open_quota:
                    self._half_open_used += 1
                    return
                raise CircuitOpenError(
                    f"breaker {self.stage!r} half-open probe quota "
                    f"({self.half_open_quota}) in use",
                    stage=self.stage,
                    retry_after=self._cooldown,
                )
            raise CircuitOpenError(
                f"breaker {self.stage!r} is open "
                f"(retry in {self._opened_at + self._cooldown - now:.3f}s)",
                stage=self.stage,
                retry_after=max(0.0, self._opened_at + self._cooldown - now),
            )

    # ------------------------------------------------------------------
    # outcomes
    # ------------------------------------------------------------------
    def _trip(self, now: float) -> None:
        failures = len(self._failure_times) if self._failure_times else self._reopens
        self._state = OPEN
        self._opened_at = now
        self._opened_total += 1
        self._failure_times.clear()
        if self.on_trip is not None:
            try:
                self.on_trip(self.stage, failures, self._cooldown)
            except Exception:  # pragma: no cover - audit must not break serving
                log.exception("breaker on_trip listener failed")

    def record_success(self) -> None:
        """Note a successful stage call.

        A half-open success closes the breaker and resets the cooldown
        schedule; a closed success is free (failure counts age out by
        window, not by successes, matching a rate-based trip condition).
        """
        with self._lock:
            self._advance(self._clock())
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._failure_times.clear()
                self._reopens = 0
                self._cooldown = self.cooldown_seconds

    def record_failure(self) -> None:
        """Note a failed stage call.

        Closed: count it in the sliding window; at ``failure_threshold``
        the breaker trips open.  Half-open: the probe failed — re-open
        with a backoff-grown cooldown.  Open: no-op (there should be no
        calls to fail; a late failure from a pre-open call changes
        nothing).
        """
        with self._lock:
            now = self._clock()
            self._advance(now)
            if self._state == OPEN:
                return
            if self._state == HALF_OPEN:
                self._reopens += 1
                # Shared backoff schedule: base grows 2**n, deterministic
                # seeded jitter keyed by the stage name.
                self._cooldown = backoff_seconds(
                    self._reopens,
                    "breaker",
                    self.stage,
                    base=self.cooldown_seconds,
                    cap=self.cooldown_seconds * 32.0,
                )
                self._trip(now)
                return
            self._failure_times.append(now)
            horizon = now - self.window_seconds
            while self._failure_times and self._failure_times[0] < horizon:
                self._failure_times.popleft()
            if len(self._failure_times) >= self.failure_threshold:
                self._cooldown = self.cooldown_seconds
                self._trip(now)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` through the breaker: admit, record outcome, propagate."""
        self.allow()
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def snapshot(self) -> dict:
        """Health-report view: state, window count, cooldown, totals."""
        with self._lock:
            now = self._clock()
            self._advance(now)
            horizon = now - self.window_seconds
            recent = sum(1 for t in self._failure_times if t >= horizon)
            return {
                "stage": self.stage,
                "state": self._state,
                "recent_failures": recent,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": round(self._cooldown, 6),
                "retry_after_seconds": round(
                    max(0.0, self._opened_at + self._cooldown - now)
                    if self._state == OPEN
                    else 0.0,
                    6,
                ),
                "times_opened": self._opened_total,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CircuitBreaker {self.stage!r} {self.state}>"


class BreakerBoard:
    """The service's set of per-stage breakers, one health surface.

    Parameters
    ----------
    stages:
        Stage names to build breakers for.
    clock:
        Shared monotonic clock for every breaker.
    **defaults:
        Keyword arguments forwarded to every :class:`CircuitBreaker`
        (``failure_threshold``, ``cooldown_seconds``, ...).  Per-stage
        overrides can be installed by assigning into :attr:`breakers`.
    """

    def __init__(
        self,
        stages: tuple[str, ...] = ("probe", "trace", "convolve"),
        *,
        clock: "Clock | Callable[[], float] | None" = None,
        **defaults,
    ):
        self._clock = as_clock(clock)
        self._defaults = dict(defaults)
        self._on_trip: "Callable[[str, int, float], None] | None" = None
        self.breakers = {
            stage: CircuitBreaker(stage, clock=clock, **defaults)
            for stage in stages
        }

    def set_listener(self, fn: "Callable[[str, int, float], None] | None") -> None:
        """Install ``fn`` as the trip listener on every breaker, present and
        lazily-created (see :attr:`CircuitBreaker.on_trip`)."""
        self._on_trip = fn
        for breaker in self.breakers.values():
            breaker.on_trip = fn

    def __getitem__(self, stage: str) -> CircuitBreaker:
        breaker = self.breakers.get(stage)
        if breaker is None:
            # Stages appear lazily: the batch path runs an "execute"
            # stage the point path never does.  setdefault keeps a racing
            # pair of threads on one shared breaker.
            fresh = CircuitBreaker(stage, clock=self._clock, **self._defaults)
            fresh.on_trip = self._on_trip
            breaker = self.breakers.setdefault(stage, fresh)
        return breaker

    def any_open(self) -> bool:
        """Whether any stage is currently refusing calls outright."""
        return any(b.state == OPEN for b in self.breakers.values())

    def snapshot(self) -> dict[str, dict]:
        """Per-stage health map for ``/healthz``."""
        return {stage: b.snapshot() for stage, b in self.breakers.items()}
