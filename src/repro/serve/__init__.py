"""Resilient online serving of metric predictions.

The :mod:`repro.serve` package turns the offline study pipeline into a
prediction *service* that keeps answering under partial failure:
per-stage circuit breakers (:mod:`~repro.serve.breaker`), a graceful
degradation ladder over the Table 3 metric hierarchy
(:mod:`~repro.serve.degrade`), per-request deadlines threaded through the
backend stages, bounded admission with load-shedding
(:mod:`~repro.serve.admission`), and a dependency-free HTTP front end
(:mod:`~repro.serve.httpd`).  :class:`~repro.serve.service.PredictionService`
ties them together.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.degrade import LADDER, ladder_for, stages_for
from repro.serve.service import PredictionService, ServedPrediction

__all__ = [
    "AdmissionQueue",
    "BreakerBoard",
    "CircuitBreaker",
    "LADDER",
    "PredictionService",
    "ServedPrediction",
    "ladder_for",
    "stages_for",
]
