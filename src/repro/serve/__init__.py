"""Resilient online serving of metric predictions.

The :mod:`repro.serve` package turns the offline study pipeline into a
prediction *service* that keeps answering under partial failure:
per-stage circuit breakers (:mod:`~repro.serve.breaker`), a graceful
degradation ladder over the Table 3 metric hierarchy
(:mod:`~repro.serve.degrade`), per-request deadlines threaded through the
backend stages, bounded admission with load-shedding
(:mod:`~repro.serve.admission`), and a dependency-free HTTP front end
(:mod:`~repro.serve.httpd`).  :class:`~repro.serve.service.PredictionService`
ties them together.

For multi-core serving, :mod:`~repro.serve.fleet` runs N worker
processes (each owning a full service) behind the asyncio front end in
:mod:`~repro.serve.frontend`, with trace identities consistent-hashed
across workers (:mod:`~repro.serve.shard`) and duplicate in-flight
requests collapsed to one engine call (:mod:`~repro.serve.coalesce`).
The fleet modules are imported lazily — ``import repro.serve`` must stay
cheap for the single-process path.
"""

from repro.serve.admission import AdmissionQueue, ServiceTimeEwma
from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.coalesce import SingleFlight
from repro.serve.degrade import LADDER, ladder_for, stages_for
from repro.serve.service import PredictionService, ServedPrediction
from repro.serve.shard import ShardRing

__all__ = [
    "AdmissionQueue",
    "BreakerBoard",
    "CircuitBreaker",
    "LADDER",
    "PredictionService",
    "ServedPrediction",
    "ServiceTimeEwma",
    "ShardRing",
    "SingleFlight",
    "ladder_for",
    "stages_for",
]
