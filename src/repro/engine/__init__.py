"""The staged prediction engine (see DESIGN.md §5f).

One owner for the probe → execute → trace → cache-model → convolve →
metric-evaluate dataflow that the predictor facade, the offline study
runner and the online serve layer all share:

* :mod:`repro.engine.plan` — typed plans (:class:`MatrixPlan`,
  :class:`PointPlan`) and artifacts (:class:`ProbeBundle`,
  :class:`PredictionRecord`).
* :mod:`repro.engine.middleware` — cross-cutting concerns (timing,
  deadline gating, budget slicing, circuit breaking, fault injection,
  retries) as composable stage middleware.
* :mod:`repro.engine.core` — :class:`Engine`, which runs plans through
  the stages under a caller-chosen middleware tuple.

Layering: the engine sits above ``core``/``probes``/``tracing``/``apps``
and below ``study``/``serve``/``cli``; it must never import
``serve.httpd`` or ``cli`` (enforced by ``scripts/check_layering.py``).
"""

from repro.engine.core import Engine
from repro.engine.middleware import (
    BreakerMiddleware,
    BudgetMiddleware,
    DeadlineGate,
    FaultMiddleware,
    RetryMiddleware,
    StageRunner,
    TimingMiddleware,
)
from repro.engine.plan import MatrixPlan, PointPlan, PredictionRecord, ProbeBundle

__all__ = [
    "Engine",
    "MatrixPlan",
    "PointPlan",
    "PredictionRecord",
    "ProbeBundle",
    "StageRunner",
    "TimingMiddleware",
    "DeadlineGate",
    "BreakerMiddleware",
    "BudgetMiddleware",
    "FaultMiddleware",
    "RetryMiddleware",
]
