"""Typed plans and artifacts of the staged prediction engine.

A *plan* declares what to compute — which applications, systems and
metrics — and the :class:`~repro.engine.core.Engine` decides how: which
stages run, in what order, under which middleware.  Two plan shapes cover
every caller in the codebase:

* :class:`MatrixPlan` — the offline study's (applications × systems)
  block; the engine traces each (application, cpus) row once and prices
  it against every eligible system for all metrics at once.
* :class:`PointPlan` — one online (application, cpus, machine, metric)
  query; the engine runs only the stages the metric's registry spec
  declares (``needs``), so probe-only metrics never touch the tracer.

The artifacts are deliberately small, stable types: they cross process
boundaries (study chunks return them from pool workers) and checkpoint
journals (:class:`PredictionRecord` rows round-trip through JSON), so
their field order is part of the on-disk format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, NamedTuple

__all__ = ["MatrixPlan", "PointPlan", "ProbeBundle", "PredictionRecord"]


class PredictionRecord(NamedTuple):
    """One (run, metric) outcome.

    A ``NamedTuple`` rather than a frozen dataclass: a full study emits
    1350 of these and tuple construction skips per-field
    ``object.__setattr__`` calls.

    Attributes
    ----------
    application, cpus, system, metric:
        Cell identity.
    actual_seconds, predicted_seconds:
        Ground truth and the metric's estimate.
    error_percent:
        Signed Equation 2 error.
    """

    application: str
    cpus: int
    system: str
    metric: int
    actual_seconds: float
    predicted_seconds: float
    error_percent: float

    @property
    def abs_error_percent(self) -> float:
        """Magnitude of the signed error."""
        return abs(self.error_percent)


class ProbeBundle(NamedTuple):
    """Probe-stage output for one point query.

    A plain tuple subclass so caller-supplied probe backends returning
    bare ``(target_probes, base_probes, base_time)`` tuples interoperate.
    """

    target_probes: object
    base_probes: object
    base_time: float


@dataclass(frozen=True)
class MatrixPlan:
    """A study block: every metric over (labels × systems).

    Attributes
    ----------
    labels:
        Application labels (``"AVUS-standard"`` or replicas
        ``"AVUS-standard@2"``), each expanded over its cpu counts.
    systems:
        Target system names; cells whose cpu count exceeds a system's
        size are skipped, as the paper's blank appendix cells are.
    metrics:
        Registry metric keys (numbers or names), in output order.
    rows:
        Optional explicit ``(label, cpus)`` rows.  ``None`` (the study
        default) expands every label over its application's full
        ``cpu_counts``; a tuple restricts the block to exactly those
        rows, in the given per-label order — this is how the serve
        layer's batch endpoint compiles a heterogeneous cell list into
        per-shard sub-matrices without pricing rows nobody asked for.
        Per-system, per-row results are independent, so any ``rows``
        partition of a matrix produces cell-for-cell identical records.
    """

    labels: tuple[str, ...]
    systems: tuple[str, ...]
    metrics: tuple
    rows: "tuple[tuple[str, int], ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "labels", tuple(self.labels))
        object.__setattr__(self, "systems", tuple(self.systems))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        if self.rows is not None:
            rows = tuple((str(label), int(cpus)) for label, cpus in self.rows)
            row_labels = {label for label, _ in rows}
            missing = row_labels - set(self.labels)
            if missing:
                raise ValueError(
                    f"rows name labels absent from plan.labels: {sorted(missing)}"
                )
            object.__setattr__(self, "rows", rows)

    def cpus_for(self, label: str, default: tuple[int, ...]) -> tuple[int, ...]:
        """The cpu rows of ``label``: explicit ``rows`` or the default."""
        if self.rows is None:
            return tuple(default)
        return tuple(cpus for row_label, cpus in self.rows if row_label == label)


@dataclass(frozen=True)
class PointPlan:
    """One online query: predict ``app`` at ``cpus`` on ``target``.

    Attributes
    ----------
    app:
        Resolved :class:`~repro.apps.model.ApplicationModel`.
    cpus:
        Processor count of the hypothetical run.
    target:
        Resolved target :class:`~repro.machines.spec.MachineSpec`.
    metric:
        The runtime :class:`~repro.core.metrics.Metric` to apply; its
        ``needs`` tuple is the engine's stage list for this plan.
    probe, trace:
        Optional stage-backend overrides, called with the stage's
        (sub-)deadline.  ``probe`` must return a
        :class:`ProbeBundle`-shaped tuple; ``trace`` an
        :class:`~repro.tracing.trace.ApplicationTrace`.  When omitted the
        engine uses its own cached backends.  The serve layer injects its
        probe bundle here so request-scoped caching stays in the service.
    """

    app: object
    cpus: int
    target: object
    metric: object
    probe: Callable | None = None
    trace: Callable | None = None
